//! Semantic (checked) types, as opposed to the syntactic [`crate::ast::TySyn`].

use crate::ast::Quals;
use std::fmt;

/// Width of an integer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IntWidth {
    /// `char` family (1 byte).
    Char,
    /// `short` (2 bytes).
    Short,
    /// `int` (4 bytes).
    Int,
    /// `long` (8 bytes, LP64).
    Long,
    /// `long long` (8 bytes).
    LongLong,
}

impl IntWidth {
    /// Size in bytes on the modelled LP64 target.
    pub fn size(self) -> u64 {
        match self {
            IntWidth::Char => 1,
            IntWidth::Short => 2,
            IntWidth::Int => 4,
            IntWidth::Long | IntWidth::LongLong => 8,
        }
    }

    /// Conversion rank (C11 6.3.1.1).
    pub fn rank(self) -> u8 {
        match self {
            IntWidth::Char => 1,
            IntWidth::Short => 2,
            IntWidth::Int => 3,
            IntWidth::Long => 4,
            IntWidth::LongLong => 5,
        }
    }
}

/// Width of a floating type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FloatWidth {
    /// `float`
    F32,
    /// `double`
    F64,
    /// `long double`
    F80,
}

impl FloatWidth {
    /// Size in bytes (long double modelled as 16 for alignment simplicity).
    pub fn size(self) -> u64 {
        match self {
            FloatWidth::F32 => 4,
            FloatWidth::F64 => 8,
            FloatWidth::F80 => 16,
        }
    }
}

/// A checked C type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void`
    Void,
    /// `_Bool`
    Bool,
    /// Integer types (including the `char` family).
    Int {
        /// Width class.
        width: IntWidth,
        /// Signedness.
        signed: bool,
    },
    /// Floating types.
    Float(FloatWidth),
    /// `_Complex` floating types.
    Complex(FloatWidth),
    /// Pointer to a (qualified) type.
    Pointer(Box<QType>),
    /// Array of element type with optional constant length.
    Array(Box<QType>, Option<u64>),
    /// Function type.
    Function {
        /// Return type.
        ret: Box<QType>,
        /// Parameter types after decay.
        params: Vec<QType>,
        /// `...`
        variadic: bool,
        /// Declared without a prototype (`int f()` / K&R).
        unprototyped: bool,
    },
    /// Struct or union named by resolved tag.
    Record {
        /// Resolved tag (anonymous records get synthesized tags).
        tag: String,
        /// `true` for unions.
        is_union: bool,
    },
    /// Enum named by resolved tag; represented as `int`.
    Enum {
        /// Resolved tag.
        tag: String,
    },
}

impl Type {
    /// The `int` type.
    pub fn int() -> Type {
        Type::Int {
            width: IntWidth::Int,
            signed: true,
        }
    }

    /// The `unsigned int` type.
    pub fn uint() -> Type {
        Type::Int {
            width: IntWidth::Int,
            signed: false,
        }
    }

    /// The `char` type (signed on the modelled target).
    pub fn char_() -> Type {
        Type::Int {
            width: IntWidth::Char,
            signed: true,
        }
    }

    /// The `double` type.
    pub fn double() -> Type {
        Type::Float(FloatWidth::F64)
    }

    /// Whether this is any integer type (incl. `_Bool` and enums).
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Int { .. } | Type::Bool | Type::Enum { .. })
    }

    /// Whether this is a real floating type.
    pub fn is_floating(&self) -> bool {
        matches!(self, Type::Float(_))
    }

    /// Whether this is a complex floating type.
    pub fn is_complex(&self) -> bool {
        matches!(self, Type::Complex(_))
    }

    /// Integer, floating or complex.
    pub fn is_arithmetic(&self) -> bool {
        self.is_integer() || self.is_floating() || self.is_complex()
    }

    /// Arithmetic or pointer.
    pub fn is_scalar(&self) -> bool {
        self.is_arithmetic() || matches!(self, Type::Pointer(_))
    }

    /// Whether this is a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Pointer(_))
    }

    /// Whether this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array(..))
    }

    /// Whether this is a function type.
    pub fn is_function(&self) -> bool {
        matches!(self, Type::Function { .. })
    }

    /// Whether this is a struct/union type.
    pub fn is_record(&self) -> bool {
        matches!(self, Type::Record { .. })
    }

    /// Whether this is `void`.
    pub fn is_void(&self) -> bool {
        matches!(self, Type::Void)
    }

    /// The pointee type for pointers, the element type for arrays.
    pub fn pointee(&self) -> Option<&QType> {
        match self {
            Type::Pointer(p) => Some(p),
            Type::Array(e, _) => Some(e),
            _ => None,
        }
    }

    /// Size in bytes on the modelled LP64 target. Records report a
    /// placeholder size unless measured through a
    /// [`crate::sema::SemaResult`]'s record table.
    pub fn size(&self) -> u64 {
        match self {
            Type::Void => 1,
            Type::Bool => 1,
            Type::Int { width, .. } => width.size(),
            Type::Float(w) => w.size(),
            Type::Complex(w) => w.size() * 2,
            Type::Pointer(_) => 8,
            Type::Array(e, n) => e.ty.size() * n.unwrap_or(0),
            Type::Function { .. } => 8,
            Type::Record { .. } => 8,
            Type::Enum { .. } => 4,
        }
    }

    /// After l-value conversion: arrays decay to element pointers, functions
    /// to function pointers.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(e, _) => Type::Pointer(e.clone()),
            Type::Function { .. } => Type::Pointer(Box::new(QType::new(self.clone()))),
            other => other.clone(),
        }
    }

    /// Integer promotion (C11 6.3.1.1p2): small integers become `int`.
    pub fn promoted(&self) -> Type {
        match self {
            Type::Bool | Type::Enum { .. } => Type::int(),
            Type::Int { width, signed } if width.rank() < IntWidth::Int.rank() => {
                // char/short always fit in int.
                let _ = signed;
                Type::int()
            }
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Bool => f.write_str("_Bool"),
            Type::Int { width, signed } => {
                if !signed {
                    f.write_str("unsigned ")?;
                }
                match width {
                    IntWidth::Char => f.write_str("char"),
                    IntWidth::Short => f.write_str("short"),
                    IntWidth::Int => f.write_str("int"),
                    IntWidth::Long => f.write_str("long"),
                    IntWidth::LongLong => f.write_str("long long"),
                }
            }
            Type::Float(FloatWidth::F32) => f.write_str("float"),
            Type::Float(FloatWidth::F64) => f.write_str("double"),
            Type::Float(FloatWidth::F80) => f.write_str("long double"),
            Type::Complex(FloatWidth::F32) => f.write_str("float _Complex"),
            Type::Complex(_) => f.write_str("double _Complex"),
            Type::Pointer(p) => write!(f, "{} *", p),
            Type::Array(e, Some(n)) => write!(f, "{}[{}]", e, n),
            Type::Array(e, None) => write!(f, "{}[]", e),
            Type::Function { ret, params, .. } => {
                write!(f, "{}(", ret)?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Type::Record { tag, is_union } => {
                write!(f, "{} {}", if *is_union { "union" } else { "struct" }, tag)
            }
            Type::Enum { tag } => write!(f, "enum {tag}"),
        }
    }
}

/// A qualified type: a [`Type`] plus `const`/`volatile` flags.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QType {
    /// The unqualified type.
    pub ty: Type,
    /// Its qualifiers.
    pub quals: Quals,
}

impl QType {
    /// An unqualified type.
    pub fn new(ty: Type) -> Self {
        QType {
            ty,
            quals: Quals::NONE,
        }
    }

    /// A `const`-qualified type.
    pub fn const_(ty: Type) -> Self {
        QType {
            ty,
            quals: Quals {
                is_const: true,
                is_volatile: false,
                is_restrict: false,
            },
        }
    }

    /// `void`
    pub fn void() -> Self {
        QType::new(Type::Void)
    }

    /// `int`
    pub fn int() -> Self {
        QType::new(Type::int())
    }

    /// `double`
    pub fn double() -> Self {
        QType::new(Type::double())
    }

    /// `char *`
    pub fn char_ptr() -> Self {
        QType::new(Type::Pointer(Box::new(QType::new(Type::char_()))))
    }

    /// A pointer to `self`.
    pub fn pointer_to(self) -> QType {
        QType::new(Type::Pointer(Box::new(self)))
    }

    /// The same type without qualifiers.
    pub fn unqualified(&self) -> QType {
        QType::new(self.ty.clone())
    }

    /// After l-value conversion (decay + qualifier stripping).
    pub fn decayed(&self) -> QType {
        QType::new(self.ty.decayed())
    }
}

impl fmt::Display for QType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.quals.is_empty() {
            write!(f, "{} ", self.quals)?;
        }
        write!(f, "{}", self.ty)
    }
}

impl From<Type> for QType {
    fn from(ty: Type) -> Self {
        QType::new(ty)
    }
}

/// Result of the usual arithmetic conversions on two arithmetic types.
pub fn usual_arithmetic(a: &Type, b: &Type) -> Type {
    use Type::*;
    // Complex dominates, then long double > double > float.
    match (a, b) {
        (Complex(x), Complex(y)) => Complex(*x.max(y)),
        (Complex(x), _) | (_, Complex(x)) => Complex(*x),
        (Float(x), Float(y)) => Float(*x.max(y)),
        (Float(x), _) | (_, Float(x)) => Float(*x),
        _ => {
            let pa = a.promoted();
            let pb = b.promoted();
            match (&pa, &pb) {
                (
                    Int {
                        width: wa,
                        signed: sa,
                    },
                    Int {
                        width: wb,
                        signed: sb,
                    },
                ) => {
                    let width = if wa.rank() >= wb.rank() { *wa } else { *wb };
                    let signed = if wa == wb {
                        *sa && *sb
                    } else if wa.rank() > wb.rank() {
                        *sa
                    } else {
                        *sb
                    };
                    Int { width, signed }
                }
                _ => Type::int(),
            }
        }
    }
}

/// A loose structural compatibility check used for assignment-like contexts.
///
/// Returns the verdict of assigning a value of type `src` to an object of
/// type `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compat {
    /// Fine without remark.
    Ok,
    /// Allowed by C compilers with a warning (e.g. int ↔ pointer).
    Warn,
    /// A constraint violation: does not compile.
    Error,
}

/// Checks assignment compatibility `dst = src` after decay of `src`.
pub fn assign_compat(dst: &Type, src: &Type) -> Compat {
    use Type::*;
    let src = src.decayed();
    match (dst, &src) {
        (a, b) if a == b => Compat::Ok,
        (a, b) if a.is_arithmetic() && b.is_arithmetic() => Compat::Ok,
        (Pointer(_), Pointer(_)) => {
            // Different pointee: accepted with a warning, like C compilers.
            Compat::Warn
        }
        (Pointer(_), b) if b.is_integer() => Compat::Warn,
        (a, Pointer(_)) if a.is_integer() => Compat::Warn,
        (Record { tag: ta, .. }, Record { tag: tb, .. }) => {
            if ta == tb {
                Compat::Ok
            } else {
                Compat::Error
            }
        }
        (Void, _) | (_, Void) => Compat::Error,
        (Pointer(_), b) if b.is_floating() || b.is_complex() => Compat::Error,
        (a, Pointer(_)) if a.is_floating() || a.is_complex() => Compat::Error,
        _ => Compat::Error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Type::int().is_integer());
        assert!(Type::int().is_scalar());
        assert!(Type::double().is_floating());
        assert!(!Type::double().is_integer());
        let p = Type::Pointer(Box::new(QType::int()));
        assert!(p.is_pointer() && p.is_scalar() && !p.is_arithmetic());
        assert!(Type::Void.is_void());
    }

    #[test]
    fn sizes() {
        assert_eq!(Type::int().size(), 4);
        assert_eq!(Type::char_().size(), 1);
        assert_eq!(Type::Pointer(Box::new(QType::void())).size(), 8);
        let arr = Type::Array(Box::new(QType::int()), Some(6));
        assert_eq!(arr.size(), 24);
        assert_eq!(Type::Complex(FloatWidth::F64).size(), 16);
    }

    #[test]
    fn decay() {
        let arr = Type::Array(Box::new(QType::int()), Some(4));
        assert!(arr.decayed().is_pointer());
        let f = Type::Function {
            ret: Box::new(QType::int()),
            params: vec![],
            variadic: false,
            unprototyped: false,
        };
        assert!(f.decayed().is_pointer());
        assert_eq!(Type::int().decayed(), Type::int());
    }

    #[test]
    fn promotions() {
        assert_eq!(Type::char_().promoted(), Type::int());
        assert_eq!(Type::Bool.promoted(), Type::int());
        let l = Type::Int {
            width: IntWidth::Long,
            signed: true,
        };
        assert_eq!(l.promoted(), l);
    }

    #[test]
    fn arithmetic_conversions() {
        assert_eq!(
            usual_arithmetic(&Type::int(), &Type::double()),
            Type::double()
        );
        assert_eq!(
            usual_arithmetic(&Type::char_(), &Type::char_()),
            Type::int()
        );
        assert_eq!(usual_arithmetic(&Type::uint(), &Type::int()), Type::uint());
        assert_eq!(
            usual_arithmetic(&Type::Complex(FloatWidth::F64), &Type::int()),
            Type::Complex(FloatWidth::F64)
        );
    }

    #[test]
    fn assignment_compat() {
        assert_eq!(assign_compat(&Type::int(), &Type::double()), Compat::Ok);
        let ip = Type::Pointer(Box::new(QType::int()));
        let cp = Type::Pointer(Box::new(QType::new(Type::char_())));
        assert_eq!(assign_compat(&ip, &ip), Compat::Ok);
        assert_eq!(assign_compat(&ip, &cp), Compat::Warn);
        assert_eq!(assign_compat(&ip, &Type::int()), Compat::Warn);
        assert_eq!(assign_compat(&ip, &Type::double()), Compat::Error);
        let s1 = Type::Record {
            tag: "a".into(),
            is_union: false,
        };
        let s2 = Type::Record {
            tag: "b".into(),
            is_union: false,
        };
        assert_eq!(assign_compat(&s1, &s1), Compat::Ok);
        assert_eq!(assign_compat(&s1, &s2), Compat::Error);
        assert_eq!(assign_compat(&s1, &Type::int()), Compat::Error);
    }

    #[test]
    fn display() {
        assert_eq!(Type::int().to_string(), "int");
        assert_eq!(QType::char_ptr().to_string(), "char *");
        assert_eq!(
            Type::Record {
                tag: "s2".into(),
                is_union: false
            }
            .to_string(),
            "struct s2"
        );
    }
}
