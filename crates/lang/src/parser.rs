//! Recursive-descent parser for the C subset.
//!
//! The parser implements the classic "lexer hack": typedef names introduced
//! by earlier declarations are tracked so that `T *p;` parses as a
//! declaration when `T` is a typedef and as a multiplication otherwise.
//! It fails fast on the first syntax error — mutant validation (goal #6 of
//! the MetaMut refinement loop) only needs a compile/no-compile verdict plus
//! a message.

use crate::ast::*;
use crate::error::{Diagnostic, Diagnostics, Phase};
use crate::fxhash::FxHashSet;
use crate::lexer::lex;
use crate::source::{SourceFile, Span};
use crate::token::{Token, TokenKind};

/// Parses `src` into an [`Ast`].
///
/// # Errors
///
/// Returns the accumulated diagnostics if lexing or parsing fails.
///
/// # Examples
///
/// ```
/// let ast = metamut_lang::parser::parse("t.c", "int main(void) { return 0; }")?;
/// assert!(ast.find_function("main").is_some());
/// # Ok::<(), metamut_lang::error::Diagnostics>(())
/// ```
pub fn parse(name: &str, src: &str) -> Result<Ast, Diagnostics> {
    parse_with_typedefs(name, src, &FxHashSet::default())
}

/// Like [`parse`], but with `typedefs` pre-seeded into the parser's typedef
/// table.
///
/// This is the entry point for parsing a single declaration excised from a
/// larger translation unit: the lexer hack needs the typedef names the
/// earlier declarations introduced, and nothing else from them (this subset
/// only admits file-scope typedefs, so the seeded set fully reproduces the
/// parser state at any declaration boundary).
///
/// # Errors
///
/// Returns the accumulated diagnostics if lexing or parsing fails.
pub fn parse_with_typedefs(
    name: &str,
    src: &str,
    typedefs: &FxHashSet<String>,
) -> Result<Ast, Diagnostics> {
    let tokens = lex(src)?;
    let file = SourceFile::new(name, src);
    let mut p = Parser::new(&file, tokens);
    p.typedefs = typedefs.clone();
    match p.parse_translation_unit() {
        Ok(unit) => {
            let node_count = p.next_id;
            drop(p);
            Ok(Ast {
                file,
                unit,
                node_count,
            })
        }
        Err(()) => Err(p.diags),
    }
}

/// Internal abort marker; the real error lives in `Parser::diags`.
type PResult<T> = Result<T, ()>;

struct Parser<'f> {
    file: &'f SourceFile,
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
    typedefs: FxHashSet<String>,
    diags: Diagnostics,
}

/// Parsed declaration specifiers.
#[derive(Debug, Clone)]
struct DeclSpecs {
    storage: Storage,
    quals: Quals,
    spec: TypeSpecifier,
    is_typedef: bool,
    is_inline: bool,
    span: Span,
}

#[derive(Debug)]
enum DeclrCore {
    Name(String, Span),
    Anon,
    Paren(Box<Declarator>),
}

#[derive(Debug)]
enum Suffix {
    Array(Option<Expr>),
    Func(Vec<ParamDecl>, bool),
}

#[derive(Debug)]
struct Declarator {
    ptrs: Vec<Quals>,
    core: DeclrCore,
    suffixes: Vec<Suffix>,
}

impl Declarator {
    fn apply(self, base: TySyn) -> (TySyn, Option<(String, Span)>) {
        let mut ty = base;
        for q in self.ptrs {
            ty = TySyn::Pointer {
                pointee: Box::new(ty),
                quals: q,
            };
        }
        for s in self.suffixes.into_iter().rev() {
            ty = match s {
                Suffix::Array(size) => TySyn::Array {
                    elem: Box::new(ty),
                    size: size.map(Box::new),
                },
                Suffix::Func(params, variadic) => TySyn::Function {
                    ret: Box::new(ty),
                    params,
                    variadic,
                },
            };
        }
        match self.core {
            DeclrCore::Name(n, sp) => (ty, Some((n, sp))),
            DeclrCore::Anon => (ty, None),
            DeclrCore::Paren(inner) => inner.apply(ty),
        }
    }
}

impl<'f> Parser<'f> {
    fn new(file: &'f SourceFile, tokens: Vec<Token>) -> Self {
        Parser {
            file,
            tokens,
            pos: 0,
            next_id: 0,
            typedefs: FxHashSet::default(),
            diags: Diagnostics::new(),
        }
    }

    // ------------------------------------------------------------------
    // Token plumbing
    // ------------------------------------------------------------------

    fn id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn tok(&self) -> Token {
        self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn kind(&self) -> TokenKind {
        self.tok().kind
    }

    fn peek_kind(&self, n: usize) -> TokenKind {
        self.tokens
            .get(self.pos + n)
            .map(|t| t.kind)
            .unwrap_or(TokenKind::Eof)
    }

    fn text(&self) -> &str {
        self.file.snippet(self.tok().span)
    }

    fn text_at(&self, n: usize) -> &str {
        self.tokens
            .get(self.pos + n)
            .map(|t| self.file.snippet(t.span))
            .unwrap_or("")
    }

    fn bump(&mut self) -> Token {
        let t = self.tok();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.kind() == kind
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            self.error(format!("expected {}, found {}", kind, self.kind()))
        }
    }

    fn error<T>(&mut self, msg: impl Into<String>) -> PResult<T> {
        self.diags
            .push(Diagnostic::error(Phase::Parse, self.tok().span, msg));
        Err(())
    }

    fn prev_end(&self) -> u32 {
        if self.pos == 0 {
            0
        } else {
            self.tokens[self.pos - 1].span.hi
        }
    }

    fn is_typedef_name(&self, s: &str) -> bool {
        self.typedefs.contains(s)
    }

    /// Whether the current token starts declaration specifiers.
    fn starts_decl(&self) -> bool {
        let k = self.kind();
        if k.is_decl_specifier_keyword() {
            return true;
        }
        if k == TokenKind::Ident && self.is_typedef_name(self.text()) {
            // `T x`, `T *x`, `T x[..]` — but not `T(...)` which may be a call.
            return matches!(self.peek_kind(1), TokenKind::Ident | TokenKind::Star);
        }
        false
    }

    /// Whether the current token starts a type name (for casts / sizeof).
    fn starts_type_name(&self) -> bool {
        let k = self.kind();
        k.is_type_specifier_keyword()
            || matches!(
                k,
                TokenKind::KwConst | TokenKind::KwVolatile | TokenKind::KwRestrict
            )
            || (k == TokenKind::Ident && self.is_typedef_name(self.text()))
    }

    // ------------------------------------------------------------------
    // Translation unit and external declarations
    // ------------------------------------------------------------------

    fn parse_translation_unit(&mut self) -> PResult<TranslationUnit> {
        let lo = self.tok().span.lo;
        let mut decls = Vec::new();
        while !self.at(TokenKind::Eof) {
            if self.eat(TokenKind::Semi) {
                continue; // stray top-level semicolon
            }
            decls.push(self.parse_external_decl()?);
        }
        let hi = self.prev_end().max(lo);
        Ok(TranslationUnit {
            decls,
            span: Span::new(lo, hi),
        })
    }

    fn parse_external_decl(&mut self) -> PResult<ExternalDecl> {
        let lo = self.tok().span.lo;

        // Implicit-int function definition/declaration: `foo(...)`.
        let implicit_fn = self.kind() == TokenKind::Ident
            && !self.is_typedef_name(self.text())
            && self.peek_kind(1) == TokenKind::LParen;

        let specs = if implicit_fn {
            DeclSpecs {
                storage: Storage::None,
                quals: Quals::NONE,
                spec: TypeSpecifier::Int,
                is_typedef: false,
                is_inline: false,
                span: Span::new(lo, lo),
            }
        } else {
            self.parse_decl_specs(true)?
        };

        if specs.is_typedef {
            let d = self.parse_declarator(false)?;
            let (ty, name) = d.apply(TySyn::Base {
                spec: specs.spec.clone(),
                quals: specs.quals,
            });
            let Some((name, name_span)) = name else {
                return self.error("typedef requires a name");
            };
            self.typedefs.insert(name.clone());
            if self.at(TokenKind::Comma) {
                return self.error("multiple declarators in one typedef are not supported");
            }
            self.expect(TokenKind::Semi)?;
            let id = self.id();
            return Ok(ExternalDecl::Typedef(TypedefDecl {
                id,
                span: Span::new(lo, self.prev_end()),
                name,
                name_span,
                ty,
            }));
        }

        // Tag-only declarations: `struct S { ... };` / `enum E { ... };`
        if self.at(TokenKind::Semi) {
            self.bump();
            let span = Span::new(lo, self.prev_end());
            return match specs.spec {
                TypeSpecifier::RecordDef(mut r) => {
                    r.span = span;
                    Ok(ExternalDecl::Record(*r))
                }
                TypeSpecifier::EnumDef(mut e) => {
                    e.span = span;
                    Ok(ExternalDecl::Enum(*e))
                }
                TypeSpecifier::Struct(name) => Ok(ExternalDecl::Record(RecordDecl {
                    id: self.id(),
                    span,
                    name: Some(name),
                    is_union: false,
                    fields: None,
                })),
                TypeSpecifier::Union(name) => Ok(ExternalDecl::Record(RecordDecl {
                    id: self.id(),
                    span,
                    name: Some(name),
                    is_union: true,
                    fields: None,
                })),
                TypeSpecifier::Enum(name) => Ok(ExternalDecl::Enum(EnumDecl {
                    id: self.id(),
                    span,
                    name: Some(name),
                    enumerators: None,
                })),
                _ => self.error("declaration declares nothing"),
            };
        }

        let specs_end = self.prev_end().max(specs.span.hi);
        let specs_span = Span::new(specs.span.lo, specs_end);

        // First declarator decides function vs variables.
        let d = self.parse_declarator(false)?;
        let (ty, name) = d.apply(TySyn::Base {
            spec: specs.spec.clone(),
            quals: specs.quals,
        });
        let Some((name, name_span)) = name else {
            return self.error("expected a declared name");
        };

        if let TySyn::Function {
            ret,
            params,
            variadic,
        } = ty
        {
            if self.at(TokenKind::LBrace) {
                let body = self.parse_compound_stmt()?;
                let span = Span::new(lo, self.prev_end());
                return Ok(ExternalDecl::Function(FunctionDef {
                    id: self.id(),
                    span,
                    name,
                    name_span,
                    ret_ty: *ret,
                    ret_ty_span: specs_span,
                    params,
                    variadic,
                    body: Some(body),
                    storage: specs.storage,
                    is_inline: specs.is_inline,
                }));
            }
            if self.at(TokenKind::Semi) || self.at(TokenKind::Comma) {
                // Prototype (possibly in a comma group; we split prototypes
                // out as their own external decls for simplicity).
                let is_semi = self.eat(TokenKind::Semi);
                if !is_semi {
                    return self.error("multiple declarators mixing functions are not supported");
                }
                let span = Span::new(lo, self.prev_end());
                return Ok(ExternalDecl::Function(FunctionDef {
                    id: self.id(),
                    span,
                    name,
                    name_span,
                    ret_ty: *ret,
                    ret_ty_span: specs_span,
                    params,
                    variadic,
                    body: None,
                    storage: specs.storage,
                    is_inline: specs.is_inline,
                }));
            }
            return self.error("expected ';' or function body");
        }

        // Variable declaration group.
        let mut vars = Vec::new();
        let mut cur_ty = ty;
        let mut cur_name = name;
        let mut cur_name_span = name_span;
        let mut declr_lo = lo;
        loop {
            let init = if self.eat(TokenKind::Eq) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            let declr_span = Span::new(declr_lo.max(specs_span.lo), self.prev_end());
            vars.push(VarDecl {
                id: self.id(),
                span: declr_span,
                name: cur_name,
                name_span: cur_name_span,
                ty: cur_ty,
                specs_span,
                storage: specs.storage,
                init,
            });
            if !self.eat(TokenKind::Comma) {
                break;
            }
            declr_lo = self.tok().span.lo;
            let d = self.parse_declarator(false)?;
            let (t, n) = d.apply(TySyn::Base {
                spec: specs.spec.clone(),
                quals: specs.quals,
            });
            let Some((n, nsp)) = n else {
                return self.error("expected a declared name");
            };
            cur_ty = t;
            cur_name = n;
            cur_name_span = nsp;
        }
        self.expect(TokenKind::Semi)?;
        Ok(ExternalDecl::Vars(DeclGroup {
            id: self.id(),
            span: Span::new(lo, self.prev_end()),
            vars,
        }))
    }

    // ------------------------------------------------------------------
    // Declaration specifiers and declarators
    // ------------------------------------------------------------------

    fn parse_decl_specs(&mut self, allow_storage: bool) -> PResult<DeclSpecs> {
        use TokenKind::*;
        let lo = self.tok().span.lo;
        let mut storage = Storage::None;
        let mut quals = Quals::NONE;
        let mut is_typedef = false;
        let mut is_inline = false;
        // Accumulated base-type words.
        let mut signedness: Option<bool> = None; // Some(true) = signed
        let mut longs = 0u8;
        let mut short = false;
        let mut complex = false;
        let mut base: Option<TypeSpecifier> = None;
        let mut any = false;

        loop {
            match self.kind() {
                KwTypedef => {
                    is_typedef = true;
                    self.bump();
                }
                KwStatic | KwExtern | KwRegister | KwAuto => {
                    if !allow_storage {
                        return self.error("storage class not allowed here");
                    }
                    storage = match self.kind() {
                        KwStatic => Storage::Static,
                        KwExtern => Storage::Extern,
                        KwRegister => Storage::Register,
                        _ => Storage::Auto,
                    };
                    self.bump();
                }
                KwInline => {
                    is_inline = true;
                    self.bump();
                }
                KwConst => {
                    quals.is_const = true;
                    self.bump();
                }
                KwVolatile => {
                    quals.is_volatile = true;
                    self.bump();
                }
                KwRestrict => {
                    quals.is_restrict = true;
                    self.bump();
                }
                KwVoid => {
                    base = Some(TypeSpecifier::Void);
                    any = true;
                    self.bump();
                }
                KwChar => {
                    base = Some(TypeSpecifier::Char);
                    any = true;
                    self.bump();
                }
                KwShort => {
                    short = true;
                    any = true;
                    self.bump();
                }
                KwInt => {
                    if base.is_none() {
                        base = Some(TypeSpecifier::Int);
                    }
                    any = true;
                    self.bump();
                }
                KwLong => {
                    longs = longs.saturating_add(1);
                    any = true;
                    self.bump();
                }
                KwFloat => {
                    base = Some(TypeSpecifier::Float);
                    any = true;
                    self.bump();
                }
                KwDouble => {
                    base = Some(TypeSpecifier::Double);
                    any = true;
                    self.bump();
                }
                KwSigned => {
                    signedness = Some(true);
                    any = true;
                    self.bump();
                }
                KwUnsigned => {
                    signedness = Some(false);
                    any = true;
                    self.bump();
                }
                KwBool => {
                    base = Some(TypeSpecifier::Bool);
                    any = true;
                    self.bump();
                }
                KwComplex => {
                    complex = true;
                    any = true;
                    self.bump();
                }
                KwStruct | KwUnion => {
                    let r = self.parse_record_spec()?;
                    base = Some(r);
                    any = true;
                }
                KwEnum => {
                    let e = self.parse_enum_spec()?;
                    base = Some(e);
                    any = true;
                }
                Ident if !any && base.is_none() && self.is_typedef_name(self.text()) => {
                    let name = self.text().to_string();
                    base = Some(TypeSpecifier::Typedef(name));
                    any = true;
                    self.bump();
                }
                _ => break,
            }
        }

        let spec = resolve_spec(base, signedness, longs, short, complex);
        let Some(spec) = spec else {
            return self.error("expected a type specifier");
        };
        Ok(DeclSpecs {
            storage,
            quals,
            spec,
            is_typedef,
            is_inline,
            span: Span::new(lo, self.prev_end().max(lo)),
        })
    }

    fn parse_record_spec(&mut self) -> PResult<TypeSpecifier> {
        let lo = self.tok().span.lo;
        let is_union = self.kind() == TokenKind::KwUnion;
        self.bump();
        let name = if self.at(TokenKind::Ident) {
            let n = self.text().to_string();
            self.bump();
            Some(n)
        } else {
            None
        };
        if self.eat(TokenKind::LBrace) {
            let mut fields = Vec::new();
            while !self.at(TokenKind::RBrace) {
                self.parse_field_decl(&mut fields)?;
            }
            self.expect(TokenKind::RBrace)?;
            let span = Span::new(lo, self.prev_end());
            let id = self.id();
            Ok(TypeSpecifier::RecordDef(Box::new(RecordDecl {
                id,
                span,
                name,
                is_union,
                fields: Some(fields),
            })))
        } else {
            match name {
                Some(n) if is_union => Ok(TypeSpecifier::Union(n)),
                Some(n) => Ok(TypeSpecifier::Struct(n)),
                None => self.error("anonymous struct/union requires a body"),
            }
        }
    }

    fn parse_field_decl(&mut self, out: &mut Vec<FieldDecl>) -> PResult<()> {
        let specs = self.parse_decl_specs(false)?;
        loop {
            let lo = self.tok().span.lo;
            let d = self.parse_declarator(false)?;
            let (ty, name) = d.apply(TySyn::Base {
                spec: specs.spec.clone(),
                quals: specs.quals,
            });
            let Some((name, _)) = name else {
                return self.error("expected a field name");
            };
            let bit_width = if self.eat(TokenKind::Colon) {
                Some(self.parse_conditional_expr()?)
            } else {
                None
            };
            let id = self.id();
            out.push(FieldDecl {
                id,
                span: Span::new(lo.min(specs.span.lo), self.prev_end()),
                name,
                ty,
                bit_width,
            });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Semi)?;
        Ok(())
    }

    fn parse_enum_spec(&mut self) -> PResult<TypeSpecifier> {
        let lo = self.tok().span.lo;
        self.bump(); // enum
        let name = if self.at(TokenKind::Ident) {
            let n = self.text().to_string();
            self.bump();
            Some(n)
        } else {
            None
        };
        if self.eat(TokenKind::LBrace) {
            let mut enumerators = Vec::new();
            while !self.at(TokenKind::RBrace) {
                let e_lo = self.tok().span.lo;
                let tok = self.expect(TokenKind::Ident)?;
                let e_name = self.file.snippet(tok.span).to_string();
                let value = if self.eat(TokenKind::Eq) {
                    Some(self.parse_conditional_expr()?)
                } else {
                    None
                };
                let id = self.id();
                enumerators.push(Enumerator {
                    id,
                    span: Span::new(e_lo, self.prev_end()),
                    name: e_name,
                    value,
                });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBrace)?;
            let span = Span::new(lo, self.prev_end());
            let id = self.id();
            Ok(TypeSpecifier::EnumDef(Box::new(EnumDecl {
                id,
                span,
                name,
                enumerators: Some(enumerators),
            })))
        } else {
            match name {
                Some(n) => Ok(TypeSpecifier::Enum(n)),
                None => self.error("anonymous enum requires a body"),
            }
        }
    }

    /// Parses a (possibly abstract) declarator.
    fn parse_declarator(&mut self, abstract_ok: bool) -> PResult<Declarator> {
        let mut ptrs = Vec::new();
        while self.eat(TokenKind::Star) {
            let mut q = Quals::NONE;
            loop {
                match self.kind() {
                    TokenKind::KwConst => {
                        q.is_const = true;
                        self.bump();
                    }
                    TokenKind::KwVolatile => {
                        q.is_volatile = true;
                        self.bump();
                    }
                    TokenKind::KwRestrict => {
                        q.is_restrict = true;
                        self.bump();
                    }
                    _ => break,
                }
            }
            ptrs.push(q);
        }

        let core = if self.at(TokenKind::Ident) {
            let tok = self.bump();
            DeclrCore::Name(self.file.snippet(tok.span).to_string(), tok.span)
        } else if self.at(TokenKind::LParen) && self.is_paren_declarator() {
            self.bump();
            let inner = self.parse_declarator(abstract_ok)?;
            self.expect(TokenKind::RParen)?;
            DeclrCore::Paren(Box::new(inner))
        } else if abstract_ok {
            DeclrCore::Anon
        } else {
            return self.error(format!("expected a declarator, found {}", self.kind()));
        };

        let mut suffixes = Vec::new();
        loop {
            if self.eat(TokenKind::LBracket) {
                let size = if self.at(TokenKind::RBracket) {
                    None
                } else {
                    Some(self.parse_assignment_expr()?)
                };
                self.expect(TokenKind::RBracket)?;
                suffixes.push(Suffix::Array(size));
            } else if self.at(TokenKind::LParen) {
                self.bump();
                let (params, variadic) = self.parse_param_list()?;
                self.expect(TokenKind::RParen)?;
                suffixes.push(Suffix::Func(params, variadic));
            } else {
                break;
            }
        }

        Ok(Declarator {
            ptrs,
            core,
            suffixes,
        })
    }

    /// Distinguishes `(declarator)` from a parameter list at a declarator
    /// position: `(` followed by `*`, `(` or an identifier that is not a
    /// typedef name begins a parenthesized declarator.
    fn is_paren_declarator(&self) -> bool {
        match self.peek_kind(1) {
            TokenKind::Star | TokenKind::LParen | TokenKind::LBracket => true,
            TokenKind::Ident => !self.is_typedef_name(self.text_at(1)),
            _ => false,
        }
    }

    fn parse_param_list(&mut self) -> PResult<(Vec<ParamDecl>, bool)> {
        let mut params = Vec::new();
        let mut variadic = false;
        if self.at(TokenKind::RParen) {
            return Ok((params, variadic));
        }
        // `(void)`
        if self.at(TokenKind::KwVoid) && self.peek_kind(1) == TokenKind::RParen {
            self.bump();
            return Ok((params, variadic));
        }
        // K&R identifier list: `(a, b)` — treated as untyped ints.
        if self.at(TokenKind::Ident)
            && !self.is_typedef_name(self.text())
            && matches!(self.peek_kind(1), TokenKind::Comma | TokenKind::RParen)
        {
            loop {
                let tok = self.expect(TokenKind::Ident)?;
                let name = self.file.snippet(tok.span).to_string();
                let id = self.id();
                params.push(ParamDecl {
                    id,
                    span: tok.span,
                    name: Some(name),
                    name_span: tok.span,
                    ty: TySyn::int(),
                });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            return Ok((params, variadic));
        }
        loop {
            if self.eat(TokenKind::Ellipsis) {
                variadic = true;
                break;
            }
            let lo = self.tok().span.lo;
            let specs = self.parse_decl_specs(false)?;
            let d = self.parse_declarator(true)?;
            let (ty, name) = d.apply(TySyn::Base {
                spec: specs.spec.clone(),
                quals: specs.quals,
            });
            let id = self.id();
            let (name, name_span) = match name {
                Some((n, sp)) => (Some(n), sp),
                None => (None, Span::new(lo, lo)),
            };
            params.push(ParamDecl {
                id,
                span: Span::new(lo, self.prev_end()),
                name,
                name_span,
                ty,
            });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Ok((params, variadic))
    }

    fn parse_type_name(&mut self) -> PResult<TypeName> {
        let lo = self.tok().span.lo;
        let specs = self.parse_decl_specs(false)?;
        let d = self.parse_declarator(true)?;
        let (ty, name) = d.apply(TySyn::Base {
            spec: specs.spec,
            quals: specs.quals,
        });
        if name.is_some() {
            return self.error("type name must not declare an identifier");
        }
        let id = self.id();
        Ok(TypeName {
            id,
            span: Span::new(lo, self.prev_end()),
            ty,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn parse_compound_stmt(&mut self) -> PResult<Stmt> {
        let lo = self.tok().span.lo;
        self.expect(TokenKind::LBrace)?;
        let mut items = Vec::new();
        while !self.at(TokenKind::RBrace) {
            if self.at(TokenKind::Eof) {
                return self.error("unexpected end of input in block");
            }
            if self.starts_decl() {
                items.push(BlockItem::Decl(self.parse_local_decl()?));
            } else {
                items.push(BlockItem::Stmt(self.parse_stmt()?));
            }
        }
        self.expect(TokenKind::RBrace)?;
        let id = self.id();
        Ok(Stmt {
            id,
            span: Span::new(lo, self.prev_end()),
            kind: StmtKind::Compound(items),
        })
    }

    fn parse_local_decl(&mut self) -> PResult<DeclGroup> {
        let lo = self.tok().span.lo;
        let specs = self.parse_decl_specs(true)?;
        if specs.is_typedef {
            return self.error("local typedefs are not supported");
        }
        let specs_span = specs.span;
        // Tag-only local declaration.
        if self.at(TokenKind::Semi)
            && matches!(
                specs.spec,
                TypeSpecifier::RecordDef(_) | TypeSpecifier::EnumDef(_)
            )
        {
            self.bump();
            let id = self.id();
            return Ok(DeclGroup {
                id,
                span: Span::new(lo, self.prev_end()),
                vars: Vec::new(),
            });
        }
        let mut vars = Vec::new();
        loop {
            let declr_lo = self.tok().span.lo;
            let d = self.parse_declarator(false)?;
            let (ty, name) = d.apply(TySyn::Base {
                spec: specs.spec.clone(),
                quals: specs.quals,
            });
            let Some((name, name_span)) = name else {
                return self.error("expected a declared name");
            };
            let init = if self.eat(TokenKind::Eq) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            let id = self.id();
            vars.push(VarDecl {
                id,
                span: Span::new(declr_lo.min(specs_span.lo), self.prev_end()),
                name,
                name_span,
                ty,
                specs_span,
                storage: specs.storage,
                init,
            });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Semi)?;
        let id = self.id();
        Ok(DeclGroup {
            id,
            span: Span::new(lo, self.prev_end()),
            vars,
        })
    }

    fn parse_initializer(&mut self) -> PResult<Initializer> {
        if self.at(TokenKind::LBrace) {
            let lo = self.tok().span.lo;
            self.bump();
            let mut items = Vec::new();
            while !self.at(TokenKind::RBrace) {
                items.push(self.parse_initializer()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBrace)?;
            let id = self.id();
            Ok(Initializer::List {
                id,
                span: Span::new(lo, self.prev_end()),
                items,
            })
        } else {
            Ok(Initializer::Expr(self.parse_assignment_expr()?))
        }
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        use TokenKind::*;
        let lo = self.tok().span.lo;
        match self.kind() {
            LBrace => self.parse_compound_stmt(),
            Semi => {
                self.bump();
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Null,
                })
            }
            KwIf => {
                self.bump();
                self.expect(LParen)?;
                let cond = self.parse_expr()?;
                self.expect(RParen)?;
                let then_stmt = Box::new(self.parse_stmt()?);
                let else_stmt = if self.eat(KwElse) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::If {
                        cond,
                        then_stmt,
                        else_stmt,
                    },
                })
            }
            KwWhile => {
                self.bump();
                self.expect(LParen)?;
                let cond = self.parse_expr()?;
                self.expect(RParen)?;
                let body = Box::new(self.parse_stmt()?);
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::While { cond, body },
                })
            }
            KwDo => {
                self.bump();
                let body = Box::new(self.parse_stmt()?);
                self.expect(KwWhile)?;
                self.expect(LParen)?;
                let cond = self.parse_expr()?;
                self.expect(RParen)?;
                self.expect(Semi)?;
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::DoWhile { body, cond },
                })
            }
            KwFor => {
                self.bump();
                self.expect(LParen)?;
                let init = if self.eat(Semi) {
                    None
                } else if self.starts_decl() {
                    let g = self.parse_local_decl()?; // consumes ';'
                    Some(Box::new(ForInit::Decl(g)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(Semi)?;
                    Some(Box::new(ForInit::Expr(e)))
                };
                let cond = if self.at(Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Semi)?;
                let step = if self.at(RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(RParen)?;
                let body = Box::new(self.parse_stmt()?);
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                })
            }
            KwSwitch => {
                self.bump();
                self.expect(LParen)?;
                let cond = self.parse_expr()?;
                self.expect(RParen)?;
                let body = Box::new(self.parse_stmt()?);
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Switch { cond, body },
                })
            }
            KwCase => {
                self.bump();
                let expr = self.parse_conditional_expr()?;
                self.expect(Colon)?;
                let stmt = Box::new(self.parse_stmt()?);
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Case { expr, stmt },
                })
            }
            KwDefault => {
                self.bump();
                self.expect(Colon)?;
                let stmt = Box::new(self.parse_stmt()?);
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Default { stmt },
                })
            }
            KwBreak => {
                self.bump();
                self.expect(Semi)?;
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Break,
                })
            }
            KwContinue => {
                self.bump();
                self.expect(Semi)?;
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Continue,
                })
            }
            KwReturn => {
                self.bump();
                let value = if self.at(Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Semi)?;
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Return(value),
                })
            }
            KwGoto => {
                self.bump();
                let tok = self.expect(Ident)?;
                let name = self.file.snippet(tok.span).to_string();
                self.expect(Semi)?;
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Goto {
                        name,
                        name_span: tok.span,
                    },
                })
            }
            Ident if self.peek_kind(1) == Colon => {
                let tok = self.bump();
                let name = self.file.snippet(tok.span).to_string();
                self.bump(); // ':'
                let stmt = Box::new(self.parse_stmt()?);
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Label {
                        name,
                        name_span: tok.span,
                        stmt,
                    },
                })
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect(Semi)?;
                let id = self.id();
                Ok(Stmt {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: StmtKind::Expr(e),
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> PResult<Expr> {
        let lo = self.tok().span.lo;
        let mut e = self.parse_assignment_expr()?;
        while self.eat(TokenKind::Comma) {
            let rhs = self.parse_assignment_expr()?;
            let id = self.id();
            e = Expr {
                id,
                span: Span::new(lo, self.prev_end()),
                kind: ExprKind::Comma {
                    lhs: Box::new(e),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(e)
    }

    fn parse_assignment_expr(&mut self) -> PResult<Expr> {
        use TokenKind::*;
        let lo = self.tok().span.lo;
        let lhs = self.parse_conditional_expr()?;
        let op = match self.kind() {
            Eq => None,
            PlusEq => Some(BinaryOp::Add),
            MinusEq => Some(BinaryOp::Sub),
            StarEq => Some(BinaryOp::Mul),
            SlashEq => Some(BinaryOp::Div),
            PercentEq => Some(BinaryOp::Rem),
            AmpEq => Some(BinaryOp::BitAnd),
            PipeEq => Some(BinaryOp::BitOr),
            CaretEq => Some(BinaryOp::BitXor),
            ShlEq => Some(BinaryOp::Shl),
            ShrEq => Some(BinaryOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assignment_expr()?;
        let id = self.id();
        Ok(Expr {
            id,
            span: Span::new(lo, self.prev_end()),
            kind: ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        })
    }

    fn parse_conditional_expr(&mut self) -> PResult<Expr> {
        let lo = self.tok().span.lo;
        let cond = self.parse_binary_expr(1)?;
        if !self.eat(TokenKind::Question) {
            return Ok(cond);
        }
        let then_expr = self.parse_expr()?;
        self.expect(TokenKind::Colon)?;
        let else_expr = self.parse_assignment_expr()?;
        let id = self.id();
        Ok(Expr {
            id,
            span: Span::new(lo, self.prev_end()),
            kind: ExprKind::Cond {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            },
        })
    }

    fn binop_of(kind: TokenKind) -> Option<BinaryOp> {
        use TokenKind::*;
        Some(match kind {
            Star => BinaryOp::Mul,
            Slash => BinaryOp::Div,
            Percent => BinaryOp::Rem,
            Plus => BinaryOp::Add,
            Minus => BinaryOp::Sub,
            Shl => BinaryOp::Shl,
            Shr => BinaryOp::Shr,
            Lt => BinaryOp::Lt,
            Gt => BinaryOp::Gt,
            Le => BinaryOp::Le,
            Ge => BinaryOp::Ge,
            EqEq => BinaryOp::Eq,
            Ne => BinaryOp::Ne,
            Amp => BinaryOp::BitAnd,
            Caret => BinaryOp::BitXor,
            Pipe => BinaryOp::BitOr,
            AmpAmp => BinaryOp::LogAnd,
            PipePipe => BinaryOp::LogOr,
            _ => return None,
        })
    }

    fn parse_binary_expr(&mut self, min_prec: u8) -> PResult<Expr> {
        let lo = self.tok().span.lo;
        let mut lhs = self.parse_cast_expr()?;
        while let Some(op) = Self::binop_of(self.kind()) {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary_expr(prec + 1)?;
            let id = self.id();
            lhs = Expr {
                id,
                span: Span::new(lo, self.prev_end()),
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(lhs)
    }

    fn parse_cast_expr(&mut self) -> PResult<Expr> {
        let lo = self.tok().span.lo;
        if self.at(TokenKind::LParen) {
            // Look ahead: `(` type-start → cast or compound literal.
            let save = self.pos;
            self.bump();
            if self.starts_type_name() {
                let ty = self.parse_type_name()?;
                self.expect(TokenKind::RParen)?;
                if self.at(TokenKind::LBrace) {
                    let init = self.parse_initializer()?;
                    let id = self.id();
                    return Ok(Expr {
                        id,
                        span: Span::new(lo, self.prev_end()),
                        kind: ExprKind::CompoundLit {
                            ty,
                            init: Box::new(init),
                        },
                    });
                }
                let inner = self.parse_cast_expr()?;
                let id = self.id();
                return Ok(Expr {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: ExprKind::Cast {
                        ty,
                        expr: Box::new(inner),
                    },
                });
            }
            self.pos = save;
        }
        self.parse_unary_expr()
    }

    fn parse_unary_expr(&mut self) -> PResult<Expr> {
        use TokenKind::*;
        let lo = self.tok().span.lo;
        let op = match self.kind() {
            Plus => Some(UnaryOp::Plus),
            Minus => Some(UnaryOp::Minus),
            Bang => Some(UnaryOp::Not),
            Tilde => Some(UnaryOp::BitNot),
            Star => Some(UnaryOp::Deref),
            Amp => Some(UnaryOp::AddrOf),
            PlusPlus => Some(UnaryOp::PreInc),
            MinusMinus => Some(UnaryOp::PreDec),
            Ident => match self.text() {
                "__real__" | "__real" => Some(UnaryOp::Real),
                "__imag__" | "__imag" => Some(UnaryOp::Imag),
                _ => None,
            },
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = if op.is_inc_dec() {
                self.parse_unary_expr()?
            } else {
                self.parse_cast_expr()?
            };
            let id = self.id();
            return Ok(Expr {
                id,
                span: Span::new(lo, self.prev_end()),
                kind: ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
            });
        }
        if self.at(KwSizeof) {
            self.bump();
            if self.at(LParen) {
                let save = self.pos;
                self.bump();
                if self.starts_type_name() {
                    let ty = self.parse_type_name()?;
                    self.expect(RParen)?;
                    let id = self.id();
                    return Ok(Expr {
                        id,
                        span: Span::new(lo, self.prev_end()),
                        kind: ExprKind::SizeofType(ty),
                    });
                }
                self.pos = save;
            }
            let operand = self.parse_unary_expr()?;
            let id = self.id();
            return Ok(Expr {
                id,
                span: Span::new(lo, self.prev_end()),
                kind: ExprKind::SizeofExpr(Box::new(operand)),
            });
        }
        self.parse_postfix_expr()
    }

    fn parse_postfix_expr(&mut self) -> PResult<Expr> {
        use TokenKind::*;
        let lo = self.tok().span.lo;
        let mut e = self.parse_primary_expr()?;
        loop {
            match self.kind() {
                LBracket => {
                    self.bump();
                    let index = self.parse_expr()?;
                    self.expect(RBracket)?;
                    let id = self.id();
                    e = Expr {
                        id,
                        span: Span::new(lo, self.prev_end()),
                        kind: ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                    };
                }
                LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(RParen) {
                        loop {
                            args.push(self.parse_assignment_expr()?);
                            if !self.eat(Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(RParen)?;
                    let id = self.id();
                    e = Expr {
                        id,
                        span: Span::new(lo, self.prev_end()),
                        kind: ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                    };
                }
                Dot | Arrow => {
                    let arrow = self.kind() == Arrow;
                    self.bump();
                    let tok = self.expect(Ident)?;
                    let member = self.file.snippet(tok.span).to_string();
                    let id = self.id();
                    e = Expr {
                        id,
                        span: Span::new(lo, self.prev_end()),
                        kind: ExprKind::Member {
                            base: Box::new(e),
                            member,
                            member_span: tok.span,
                            arrow,
                        },
                    };
                }
                PlusPlus | MinusMinus => {
                    let op = if self.kind() == PlusPlus {
                        UnaryOp::PostInc
                    } else {
                        UnaryOp::PostDec
                    };
                    self.bump();
                    let id = self.id();
                    e = Expr {
                        id,
                        span: Span::new(lo, self.prev_end()),
                        kind: ExprKind::Unary {
                            op,
                            operand: Box::new(e),
                        },
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary_expr(&mut self) -> PResult<Expr> {
        use TokenKind::*;
        let tok = self.tok();
        match tok.kind {
            IntLit => {
                self.bump();
                let text = self.file.snippet(tok.span);
                let (value, unsigned, longs) = decode_int_literal(text);
                let id = self.id();
                Ok(Expr {
                    id,
                    span: tok.span,
                    kind: ExprKind::IntLit {
                        value,
                        unsigned,
                        longs,
                    },
                })
            }
            FloatLit => {
                self.bump();
                let text = self.file.snippet(tok.span);
                let trimmed = text.trim_end_matches(|c: char| "fFlL".contains(c));
                let value = trimmed.parse::<f64>().unwrap_or(0.0);
                let single = text.ends_with('f') || text.ends_with('F');
                let id = self.id();
                Ok(Expr {
                    id,
                    span: tok.span,
                    kind: ExprKind::FloatLit { value, single },
                })
            }
            CharLit => {
                self.bump();
                let text = self.file.snippet(tok.span);
                let value = decode_char_literal(text);
                let id = self.id();
                Ok(Expr {
                    id,
                    span: tok.span,
                    kind: ExprKind::CharLit { value },
                })
            }
            StrLit => {
                // Adjacent string literals concatenate.
                let mut value = String::new();
                let lo = tok.span.lo;
                while self.at(StrLit) {
                    let t = self.bump();
                    value.push_str(&decode_string_literal(self.file.snippet(t.span)));
                }
                let id = self.id();
                Ok(Expr {
                    id,
                    span: Span::new(lo, self.prev_end()),
                    kind: ExprKind::StrLit { value },
                })
            }
            Ident => {
                self.bump();
                let name = self.file.snippet(tok.span).to_string();
                let id = self.id();
                Ok(Expr {
                    id,
                    span: tok.span,
                    kind: ExprKind::Ident(name),
                })
            }
            LParen => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect(RParen)?;
                let id = self.id();
                Ok(Expr {
                    id,
                    span: Span::new(tok.span.lo, self.prev_end()),
                    kind: ExprKind::Paren(Box::new(inner)),
                })
            }
            _ => self.error(format!("expected an expression, found {}", tok.kind)),
        }
    }
}

fn resolve_spec(
    base: Option<TypeSpecifier>,
    signedness: Option<bool>,
    longs: u8,
    short: bool,
    complex: bool,
) -> Option<TypeSpecifier> {
    use TypeSpecifier::*;
    let unsigned = signedness == Some(false);
    if complex {
        return Some(match base {
            Some(Float) => ComplexFloat,
            _ => ComplexDouble,
        });
    }
    match base {
        Some(Char) => Some(match signedness {
            Some(true) => SChar,
            Some(false) => UChar,
            None => Char,
        }),
        Some(Double) => Some(if longs > 0 { LongDouble } else { Double }),
        Some(Float) => Some(Float),
        Some(Void) => Some(Void),
        Some(Bool) => Some(Bool),
        Some(Int) | None => {
            if short {
                Some(if unsigned { UShort } else { Short })
            } else if longs >= 2 {
                Some(if unsigned { ULongLong } else { LongLong })
            } else if longs == 1 {
                Some(if unsigned { ULong } else { Long })
            } else if base.is_none() && signedness.is_none() && !short && longs == 0 {
                None
            } else {
                Some(if unsigned { UInt } else { Int })
            }
        }
        other => other,
    }
}

/// Decodes a C integer literal (decimal, hex, octal, with suffixes).
pub fn decode_int_literal(text: &str) -> (i128, bool, u8) {
    let lower = text.to_ascii_lowercase();
    let mut digits_end = lower.len();
    while digits_end > 0 && matches!(&lower[digits_end - 1..digits_end], "u" | "l") {
        digits_end -= 1;
    }
    let suffix = &lower[digits_end..];
    let unsigned = suffix.contains('u');
    let longs = suffix.matches('l').count().min(2) as u8;
    let digits = &lower[..digits_end];
    let value = if let Some(hex) = digits.strip_prefix("0x") {
        i128::from_str_radix(hex, 16).unwrap_or(0)
    } else if digits.len() > 1 && digits.starts_with('0') {
        i128::from_str_radix(&digits[1..], 8).unwrap_or(0)
    } else {
        digits.parse::<i128>().unwrap_or(0)
    };
    (value, unsigned, longs)
}

/// Decodes a character literal including common escapes.
pub fn decode_char_literal(text: &str) -> i64 {
    let inner = text.trim_start_matches('\'').trim_end_matches('\'');
    let bytes: Vec<char> = inner.chars().collect();
    if bytes.is_empty() {
        return 0;
    }
    if bytes[0] != '\\' {
        return bytes[0] as i64;
    }
    match bytes.get(1) {
        Some('n') => 10,
        Some('t') => 9,
        Some('r') => 13,
        Some('0') => {
            // Octal escape.
            let oct: String = bytes[1..].iter().collect();
            i64::from_str_radix(&oct, 8).unwrap_or(0)
        }
        Some('x') => {
            let hex: String = bytes[2..].iter().collect();
            i64::from_str_radix(&hex, 16).unwrap_or(0)
        }
        Some('\\') => 92,
        Some('\'') => 39,
        Some('"') => 34,
        Some('a') => 7,
        Some('b') => 8,
        Some('f') => 12,
        Some('v') => 11,
        Some(c) => *c as i64,
        None => 0,
    }
}

/// Decodes a string literal's contents (strips quotes, resolves escapes).
pub fn decode_string_literal(text: &str) -> String {
    let inner = &text[1..text.len().saturating_sub(1)];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Ast {
        match parse("test.c", src) {
            Ok(a) => a,
            Err(e) => panic!("parse failed for {src:?}: {e}"),
        }
    }

    fn fails(src: &str) {
        assert!(parse("test.c", src).is_err(), "expected failure: {src:?}");
    }

    #[test]
    fn simple_function() {
        let ast = ok("int main(void) { return 0; }");
        let f = ast.find_function("main").unwrap();
        assert!(f.is_definition());
        assert!(f.params.is_empty());
        assert_eq!(ast.snippet(f.ret_ty_span), "int");
    }

    #[test]
    fn globals_and_groups() {
        let ast = ok("int a, b = 2, *c; static const double d = 1.5;");
        match &ast.unit.decls[0] {
            ExternalDecl::Vars(g) => {
                assert_eq!(g.vars.len(), 3);
                assert_eq!(g.vars[1].name, "b");
                assert!(g.vars[1].init.is_some());
                assert!(g.vars[2].ty.is_pointer());
            }
            other => panic!("expected vars, got {other:?}"),
        }
        match &ast.unit.decls[1] {
            ExternalDecl::Vars(g) => {
                assert_eq!(g.vars[0].storage, Storage::Static);
                assert!(matches!(
                    g.vars[0].ty,
                    TySyn::Base {
                        quals: Quals { is_const: true, .. },
                        ..
                    }
                ));
            }
            other => panic!("expected vars, got {other:?}"),
        }
    }

    #[test]
    fn declarator_shapes() {
        let ast = ok("int *a[3]; int (*b)[3]; int (*f)(int, char); int *g(void);");
        let decls = &ast.unit.decls;
        match &decls[0] {
            ExternalDecl::Vars(g) => {
                // array of pointer
                assert!(matches!(&g.vars[0].ty, TySyn::Array { elem, .. } if elem.is_pointer()));
            }
            _ => panic!(),
        }
        match &decls[1] {
            ExternalDecl::Vars(g) => {
                assert!(
                    matches!(&g.vars[0].ty, TySyn::Pointer { pointee, .. } if pointee.is_array())
                );
            }
            _ => panic!(),
        }
        match &decls[2] {
            ExternalDecl::Vars(g) => {
                assert!(
                    matches!(&g.vars[0].ty, TySyn::Pointer { pointee, .. } if pointee.is_function())
                );
            }
            _ => panic!(),
        }
        match &decls[3] {
            ExternalDecl::Function(f) => {
                assert!(f.body.is_none());
                assert!(f.ret_ty.is_pointer());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn typedef_lexer_hack() {
        let ast = ok("typedef unsigned long size_t; size_t n = 3; int f(size_t x) { return x; }");
        assert_eq!(ast.unit.decls.len(), 3);
        match &ast.unit.decls[1] {
            ExternalDecl::Vars(g) => {
                assert!(matches!(
                    &g.vars[0].ty,
                    TySyn::Base {
                        spec: TypeSpecifier::Typedef(n),
                        ..
                    } if n == "size_t"
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn struct_union_enum() {
        let ast = ok("struct P { int x, y; unsigned f : 3; }; union U { int i; float f; }; enum E { A, B = 5, C };");
        assert!(
            matches!(&ast.unit.decls[0], ExternalDecl::Record(r) if !r.is_union && r.fields.as_ref().unwrap().len() == 3)
        );
        assert!(matches!(&ast.unit.decls[1], ExternalDecl::Record(r) if r.is_union));
        match &ast.unit.decls[2] {
            ExternalDecl::Enum(e) => {
                let es = e.enumerators.as_ref().unwrap();
                assert_eq!(es.len(), 3);
                assert!(es[1].value.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn inline_struct_var() {
        let ast = ok("struct S { int a; } s1, s2;");
        match &ast.unit.decls[0] {
            ExternalDecl::Vars(g) => {
                assert_eq!(g.vars.len(), 2);
                assert!(matches!(
                    g.vars[0].ty,
                    TySyn::Base {
                        spec: TypeSpecifier::RecordDef(_),
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn statements_roundtrip() {
        let src = r#"
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i; }
    while (s > 100) s -= 10;
    do { s++; } while (s < 0);
    switch (n) {
        case 0: s = 1; break;
        case 1:
        case 2: s = 2; break;
        default: s = 3;
    }
    if (s) return s; else return -s;
}
"#;
        let ast = ok(src);
        let f = ast.find_function("f").unwrap();
        let StmtKind::Compound(items) = &f.body.as_ref().unwrap().kind else {
            panic!()
        };
        assert_eq!(items.len(), 6);
    }

    #[test]
    fn goto_and_labels() {
        let ast = ok("void f(void) { goto end; end: ; }");
        let f = ast.find_function("f").unwrap();
        let StmtKind::Compound(items) = &f.body.as_ref().unwrap().kind else {
            panic!()
        };
        assert!(matches!(
            &items[0],
            BlockItem::Stmt(Stmt {
                kind: StmtKind::Goto { name, .. },
                ..
            }) if name == "end"
        ));
    }

    #[test]
    fn expressions() {
        let ast =
            ok("int g(int a, int b) { return a * b + (a ? b : 3) - sizeof(int) + sizeof a; }");
        assert!(ast.find_function("g").is_some());
    }

    #[test]
    fn casts_and_compound_literals() {
        let ast = ok("struct s2 { int a; }; void f(int *p) { *p = (int) {0}; (void)(char)*p; }");
        assert!(ast.find_function("f").is_some());
    }

    #[test]
    fn imag_real_extension() {
        let ast = ok("_Complex double x; double *bar(void) { return (double*)&__imag__ x; }");
        assert!(ast.find_function("bar").is_some());
    }

    #[test]
    fn implicit_int_function() {
        let ast = ok("foo(int *ptr) { return 0; }");
        let f = ast.find_function("foo").unwrap();
        assert!(matches!(
            f.ret_ty,
            TySyn::Base {
                spec: TypeSpecifier::Int,
                ..
            }
        ));
    }

    #[test]
    fn string_concat_and_escapes() {
        let ast = ok(r#"char *s = "a\n" "b";"#);
        match &ast.unit.decls[0] {
            ExternalDecl::Vars(g) => match &g.vars[0].init {
                Some(Initializer::Expr(e)) => {
                    assert!(matches!(&e.kind, ExprKind::StrLit { value } if value == "a\nb"));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn int_literal_decode() {
        assert_eq!(decode_int_literal("42"), (42, false, 0));
        assert_eq!(decode_int_literal("0x1F"), (31, false, 0));
        assert_eq!(decode_int_literal("010"), (8, false, 0));
        assert_eq!(decode_int_literal("7ull"), (7, true, 2));
        assert_eq!(decode_int_literal("0x01234567"), (0x01234567, false, 0));
    }

    #[test]
    fn char_literal_decode() {
        assert_eq!(decode_char_literal("'a'"), 97);
        assert_eq!(decode_char_literal("'\\n'"), 10);
        assert_eq!(decode_char_literal("'\\0'"), 0);
        assert_eq!(decode_char_literal("'\\x41'"), 0x41);
    }

    #[test]
    fn syntax_errors() {
        fails("int x");
        fails("int f( { }");
        fails("void f(void) { if (x) }");
        fails("int 3x;");
        fails("void f(void) { return };");
    }

    #[test]
    fn spans_cover_source() {
        let src = "int add(int a, int b) { return a + b; }";
        let ast = ok(src);
        let f = ast.find_function("add").unwrap();
        assert_eq!(ast.snippet(f.span), src);
        assert_eq!(ast.snippet(f.name_span), "add");
        assert_eq!(ast.snippet(f.params[0].span), "int a");
    }

    #[test]
    fn node_ids_unique() {
        let ast = ok("int f(void) { int x = 1; return x + 2; }");
        assert!(ast.node_count > 5);
    }

    #[test]
    fn variadic_params() {
        let ast = ok("int printf(const char *fmt, ...); void f(void) { printf(\"%d\", 3); }");
        let p = ast.find_function("printf").unwrap();
        assert!(p.variadic);
        assert_eq!(p.params.len(), 1);
    }

    #[test]
    fn array_dims_multi() {
        let ast = ok("int r[6]; int m[2][3];");
        match &ast.unit.decls[1] {
            ExternalDecl::Vars(g) => assert_eq!(g.vars[0].ty.array_rank(), 2),
            _ => panic!(),
        }
    }
}
