//! Token-level splitting of a translation unit into top-level declaration
//! chunks, each with a position-independent content hash.
//!
//! This is the substrate of incremental mutant compilation in
//! `metamut-simcomp`: a mutant is its seed plus one span-sized rewrite, so
//! comparing per-declaration chunk hashes against the seed's baseline
//! identifies the single edited declaration without parsing anything.
//!
//! The split is a *heuristic* over bracket depth (it does not parse), and a
//! misjudged boundary is harmless by construction: it changes the chunk
//! hashes, the mutant no longer matches the baseline, and the caller falls
//! back to a cold compile. Correctness never depends on the heuristic;
//! only the cache hit rate does.

use crate::chash::Sip128;
use crate::lexer::lex;
use crate::source::Span;
use crate::token::{Token, TokenKind};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// One top-level declaration chunk of a token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclChunk {
    /// Index of the chunk's first token in the token stream.
    pub start: usize,
    /// One past the chunk's last token.
    pub end: usize,
    /// Source span from the first token's start to the last token's end.
    pub span: Span,
    /// Position-independent, collision-resistant 128-bit content hash
    /// over the chunk's `(kind, spelling)` token pairs (SipHash-2-4-128,
    /// see [`crate::chash`]). Strong enough to *address* shared compile
    /// artifacts across seeds and tenants, not merely to detect edits.
    pub hash: u128,
}

impl DeclChunk {
    /// The chunk's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.span.lo as usize..self.span.hi as usize]
    }
}

/// Lexes `src` and splits it into declaration chunks.
///
/// Returns `None` when the source does not lex — incremental compilation
/// has nothing to reuse on lexical-error paths (their coverage depends on
/// error positions, which shift with every edit).
pub fn split_source(src: &str) -> Option<(Vec<Token>, Vec<DeclChunk>)> {
    let tokens = lex(src).ok()?;
    let chunks = split_decls(src, &tokens);
    Some((tokens, chunks))
}

/// Splits an already-lexed token stream into top-level declaration chunks.
///
/// A chunk ends at a depth-zero `;`, or at a depth-zero `}` that closes a
/// function definition (recognized by an earlier depth-zero `)` — the
/// parameter list). A depth-zero `}` *without* a preceding parameter list
/// (struct/union/enum bodies) only ends the chunk when the next token
/// cannot continue a declarator list.
pub fn split_decls(src: &str, tokens: &[Token]) -> Vec<DeclChunk> {
    let toks: &[Token] = match tokens.last() {
        Some(t) if t.kind == TokenKind::Eof => &tokens[..tokens.len() - 1],
        _ => tokens,
    };
    let mut chunks = Vec::new();
    let mut depth = 0usize;
    let mut start: Option<usize> = None;
    let mut saw_param_list = false;
    for (i, t) in toks.iter().enumerate() {
        if start.is_none() {
            start = Some(i);
            saw_param_list = false;
        }
        match t.kind {
            TokenKind::LParen | TokenKind::LBrace | TokenKind::LBracket => depth += 1,
            TokenKind::RParen => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    saw_param_list = true;
                }
            }
            TokenKind::RBracket => depth = depth.saturating_sub(1),
            TokenKind::RBrace => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    // A function body always ends the declaration; a
                    // struct/union/enum body may be followed by declarators
                    // (`struct S { ... } x, *p;`) or an initializer comma.
                    let continues = !saw_param_list
                        && matches!(
                            toks.get(i + 1).map(|n| n.kind),
                            Some(
                                TokenKind::Semi
                                    | TokenKind::Comma
                                    | TokenKind::Star
                                    | TokenKind::Ident
                                    | TokenKind::LBracket
                                    | TokenKind::Eq
                            )
                        );
                    if !continues {
                        chunks.push(make_chunk(src, toks, start.take().expect("open chunk"), i));
                    }
                }
            }
            TokenKind::Semi if depth == 0 => {
                chunks.push(make_chunk(src, toks, start.take().expect("open chunk"), i));
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        // Trailing tokens that never closed (unterminated declaration):
        // keep them as a final chunk so hashing still covers every byte.
        chunks.push(make_chunk(src, toks, s, toks.len() - 1));
    }
    chunks
}

fn make_chunk(src: &str, toks: &[Token], start: usize, last: usize) -> DeclChunk {
    DeclChunk {
        start,
        end: last + 1,
        span: Span::new(toks[start].span.lo, toks[last].span.hi),
        hash: chunk_hash(src, &toks[start..=last]),
    }
}

/// Position-independent 128-bit content hash of a token slice:
/// SipHash-2-4-128 over the length-framed `(kind, spelling)` pairs.
/// Whitespace and comments do not contribute; identical declarations at
/// different file offsets hash identically. The content-addressed query
/// engine uses this value directly as the shared memo address for a
/// declaration's parse stage, so collision resistance is load-bearing.
pub fn chunk_hash(src: &str, tokens: &[Token]) -> u128 {
    let mut h = Sip128::default();
    for t in tokens {
        if t.kind == TokenKind::Eof {
            continue;
        }
        h.write_u64(t.kind as u64);
        h.write_str(&src[t.span.lo as usize..t.span.hi as usize]);
    }
    h.finish128()
}

/// The sorted, deduplicated identifier spellings of a token slice.
///
/// This is the *access surface* of a declaration: every name through
/// which its compile stages can observe the surrounding program
/// (typedefs, function signatures, enum constants, the volatile set,
/// trivial inline bodies) appears here, because those lookups all key on
/// identifier tokens. The content-addressed query engine restricts each
/// stage's environment digest to this set so that unrelated context
/// never perturbs a declaration's memo key.
pub fn ident_spellings<'s>(src: &'s str, tokens: &[Token]) -> Vec<&'s str> {
    let mut ids: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| &src[t.span.lo as usize..t.span.hi as usize])
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// A process-wide interner for declaration source text.
///
/// Fuzzing corpora are pathologically self-similar: seeds share
/// preludes and helper functions, and a mutant differs from its parent
/// in one declaration. Interning chunk text as `Arc<str>` by *exact
/// bytes* means a declaration appearing in a thousand seed slots is
/// stored once, and handing a slot's chunk text to the pipeline never
/// clones the string again. (Interning is deliberately byte-exact, not
/// token-hash keyed: whitespace variants are distinct texts and must
/// not alias each other's bytes.)
#[derive(Default)]
pub struct TextInterner {
    table: Mutex<HashSet<Arc<str>>>,
}

impl TextInterner {
    /// A fresh, empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the canonical `Arc<str>` for `s`, inserting on first use.
    pub fn intern(&self, s: &str) -> Arc<str> {
        let mut table = self.table.lock().expect("interner poisoned");
        if let Some(existing) = table.get(s) {
            return Arc::clone(existing);
        }
        let arc: Arc<str> = Arc::from(s);
        table.insert(Arc::clone(&arc));
        arc
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.table.lock().expect("interner poisoned").len()
    }

    /// Whether the interner holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(src: &str) -> Vec<DeclChunk> {
        let (_, chunks) = split_source(src).expect("lexes");
        chunks
    }

    #[test]
    fn splits_functions_and_globals() {
        let src = "int g = 1; int f(int a) { return a + g; } void h(void) { }";
        let chunks = split(src);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].text(src), "int g = 1;");
        assert_eq!(chunks[1].text(src), "int f(int a) { return a + g; }");
        assert_eq!(chunks[2].text(src), "void h(void) { }");
    }

    #[test]
    fn struct_with_declarators_stays_one_chunk() {
        let src = "struct S { int x; } s1, *s2; enum E { A, B }; int f(void) { return A; }";
        let chunks = split(src);
        assert_eq!(chunks.len(), 3, "{chunks:?}");
        assert_eq!(chunks[0].text(src), "struct S { int x; } s1, *s2;");
        assert_eq!(chunks[1].text(src), "enum E { A, B };");
    }

    #[test]
    fn hash_is_position_independent() {
        let a = split("int f(void) { return 1; }");
        let padded = "int g;\n\n   int f(void) { return 1; }";
        let b = split(padded);
        assert_eq!(b.len(), 2);
        assert_eq!(a[0].hash, b[1].hash);
        // Whitespace inside the decl does not matter either.
        let c = split("int  f( void )  { return 1; }");
        assert_eq!(a[0].hash, c[0].hash);
        // But content does.
        let d = split("int f(void) { return 2; }");
        assert_ne!(a[0].hash, d[0].hash);
    }

    #[test]
    fn chunk_spans_match_parsed_decl_spans() {
        let src = "typedef int T;\nT g = 3;\nstruct P { T x; };\nint f(T a) { struct P p; p.x = a; return p.x + g; }\n";
        let chunks = split(src);
        let ast = crate::parse("t.c", src).expect("parses");
        assert_eq!(chunks.len(), ast.unit.decls.len());
        for (c, d) in chunks.iter().zip(&ast.unit.decls) {
            let ds = d.span();
            assert!(
                c.span.lo <= ds.lo && ds.hi <= c.span.hi,
                "chunk {c:?} does not cover decl span {ds}"
            );
        }
    }

    #[test]
    fn lex_error_yields_none() {
        assert!(split_source("int x = '\\q").is_none() || !split("int x;").is_empty());
        // Unterminated string is a lex error in this subset.
        let bad = "char *s = \"abc";
        if lex(bad).is_err() {
            assert!(split_source(bad).is_none());
        }
    }

    #[test]
    fn ident_spellings_are_sorted_and_deduped() {
        let src = "int f(int a) { return a + g + a; }";
        let toks = lex(src).expect("lexes");
        let ids = ident_spellings(src, &toks);
        assert_eq!(ids, vec!["a", "f", "g"]);
    }

    #[test]
    fn interner_shares_storage_by_exact_bytes() {
        let interner = TextInterner::new();
        let a = interner.intern("int f(void) { return 1; }");
        let b = interner.intern("int f(void) { return 1; }");
        assert!(Arc::ptr_eq(&a, &b), "identical text must share one Arc");
        // Whitespace variants are *different* bytes and must not alias,
        // even though they token-hash identically.
        let c = interner.intern("int  f(void) { return 1; }");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn function_pointer_typedef_is_one_chunk() {
        let src = "typedef int (*F)(int); int apply(F f) { return f(1); }";
        let chunks = split(src);
        assert_eq!(chunks.len(), 2, "{chunks:?}");
        assert_eq!(chunks[0].text(src), "typedef int (*F)(int);");
    }
}
