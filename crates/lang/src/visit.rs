//! Immutable AST visitors.
//!
//! The [`Visitor`] trait mirrors Clang's `RecursiveASTVisitor` shape used by
//! the paper's mutator template (Figure 2): a mutator overrides the hooks
//! for the node kinds it cares about and calls the `walk_*` helpers (or
//! relies on the default methods) to recurse.

use crate::ast::*;

/// A read-only traversal over the AST.
///
/// All methods default to recursing via the corresponding `walk_*` function;
/// override only what you need. Collection-style mutators typically override
/// `visit_expr`/`visit_stmt` and record node clones for later rewriting.
pub trait Visitor {
    /// Visits a whole translation unit.
    fn visit_unit(&mut self, unit: &TranslationUnit) {
        walk_unit(self, unit);
    }

    /// Visits one external declaration.
    fn visit_external_decl(&mut self, decl: &ExternalDecl) {
        walk_external_decl(self, decl);
    }

    /// Visits a function definition or prototype.
    fn visit_function(&mut self, f: &FunctionDef) {
        walk_function(self, f);
    }

    /// Visits a parameter declaration.
    fn visit_param(&mut self, p: &ParamDecl) {
        walk_param(self, p);
    }

    /// Visits a variable declarator.
    fn visit_var_decl(&mut self, v: &VarDecl) {
        walk_var_decl(self, v);
    }

    /// Visits a declaration group (local or global).
    fn visit_decl_group(&mut self, g: &DeclGroup) {
        walk_decl_group(self, g);
    }

    /// Visits a struct/union declaration.
    fn visit_record(&mut self, r: &RecordDecl) {
        walk_record(self, r);
    }

    /// Visits a field declaration.
    fn visit_field(&mut self, f: &FieldDecl) {
        walk_field(self, f);
    }

    /// Visits an enum declaration.
    fn visit_enum(&mut self, e: &EnumDecl) {
        walk_enum(self, e);
    }

    /// Visits a typedef declaration.
    fn visit_typedef(&mut self, t: &TypedefDecl) {
        walk_typedef(self, t);
    }

    /// Visits a statement.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }

    /// Visits an expression.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }

    /// Visits an initializer.
    fn visit_initializer(&mut self, i: &Initializer) {
        walk_initializer(self, i);
    }

    /// Visits a syntactic type (e.g. inline record definitions).
    fn visit_ty(&mut self, ty: &TySyn) {
        walk_ty(self, ty);
    }
}

/// Recurses into every declaration of `unit`.
pub fn walk_unit<V: Visitor + ?Sized>(v: &mut V, unit: &TranslationUnit) {
    for d in &unit.decls {
        v.visit_external_decl(d);
    }
}

/// Recurses into one external declaration.
pub fn walk_external_decl<V: Visitor + ?Sized>(v: &mut V, decl: &ExternalDecl) {
    match decl {
        ExternalDecl::Function(f) => v.visit_function(f),
        ExternalDecl::Vars(g) => v.visit_decl_group(g),
        ExternalDecl::Record(r) => v.visit_record(r),
        ExternalDecl::Enum(e) => v.visit_enum(e),
        ExternalDecl::Typedef(t) => v.visit_typedef(t),
    }
}

/// Recurses into a function's parameters and body.
pub fn walk_function<V: Visitor + ?Sized>(v: &mut V, f: &FunctionDef) {
    v.visit_ty(&f.ret_ty);
    for p in &f.params {
        v.visit_param(p);
    }
    if let Some(body) = &f.body {
        v.visit_stmt(body);
    }
}

/// Recurses into a parameter's type.
pub fn walk_param<V: Visitor + ?Sized>(v: &mut V, p: &ParamDecl) {
    v.visit_ty(&p.ty);
}

/// Recurses into a variable declarator's type and initializer.
pub fn walk_var_decl<V: Visitor + ?Sized>(v: &mut V, var: &VarDecl) {
    v.visit_ty(&var.ty);
    if let Some(init) = &var.init {
        v.visit_initializer(init);
    }
}

/// Recurses into each declarator of a group.
pub fn walk_decl_group<V: Visitor + ?Sized>(v: &mut V, g: &DeclGroup) {
    for var in &g.vars {
        v.visit_var_decl(var);
    }
}

/// Recurses into a record's fields.
pub fn walk_record<V: Visitor + ?Sized>(v: &mut V, r: &RecordDecl) {
    if let Some(fields) = &r.fields {
        for f in fields {
            v.visit_field(f);
        }
    }
}

/// Recurses into a field's type and bit width.
pub fn walk_field<V: Visitor + ?Sized>(v: &mut V, f: &FieldDecl) {
    v.visit_ty(&f.ty);
    if let Some(w) = &f.bit_width {
        v.visit_expr(w);
    }
}

/// Recurses into enumerator value expressions.
pub fn walk_enum<V: Visitor + ?Sized>(v: &mut V, e: &EnumDecl) {
    if let Some(es) = &e.enumerators {
        for en in es {
            if let Some(val) = &en.value {
                v.visit_expr(val);
            }
        }
    }
}

/// Recurses into a typedef's aliased type.
pub fn walk_typedef<V: Visitor + ?Sized>(v: &mut V, t: &TypedefDecl) {
    v.visit_ty(&t.ty);
}

/// Recurses into a statement's children.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Compound(items) => {
            for item in items {
                match item {
                    BlockItem::Decl(g) => v.visit_decl_group(g),
                    BlockItem::Stmt(st) => v.visit_stmt(st),
                }
            }
        }
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::Null | StmtKind::Break | StmtKind::Continue | StmtKind::Goto { .. } => {}
        StmtKind::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            v.visit_expr(cond);
            v.visit_stmt(then_stmt);
            if let Some(e) = else_stmt {
                v.visit_stmt(e);
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_stmt(body);
        }
        StmtKind::DoWhile { body, cond } => {
            v.visit_stmt(body);
            v.visit_expr(cond);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                match init.as_ref() {
                    ForInit::Decl(g) => v.visit_decl_group(g),
                    ForInit::Expr(e) => v.visit_expr(e),
                }
            }
            if let Some(c) = cond {
                v.visit_expr(c);
            }
            if let Some(st) = step {
                v.visit_expr(st);
            }
            v.visit_stmt(body);
        }
        StmtKind::Switch { cond, body } => {
            v.visit_expr(cond);
            v.visit_stmt(body);
        }
        StmtKind::Case { expr, stmt } => {
            v.visit_expr(expr);
            v.visit_stmt(stmt);
        }
        StmtKind::Default { stmt } | StmtKind::Label { stmt, .. } => v.visit_stmt(stmt),
        StmtKind::Return(value) => {
            if let Some(e) = value {
                v.visit_expr(e);
            }
        }
    }
}

/// Recurses into an expression's children.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit { .. }
        | ExprKind::FloatLit { .. }
        | ExprKind::CharLit { .. }
        | ExprKind::StrLit { .. }
        | ExprKind::Ident(_) => {}
        ExprKind::Unary { operand, .. } => v.visit_expr(operand),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            v.visit_expr(cond);
            v.visit_expr(then_expr);
            v.visit_expr(else_expr);
        }
        ExprKind::Call { callee, args } => {
            v.visit_expr(callee);
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Index { base, index } => {
            v.visit_expr(base);
            v.visit_expr(index);
        }
        ExprKind::Member { base, .. } => v.visit_expr(base),
        ExprKind::Cast { ty, expr } => {
            v.visit_ty(&ty.ty);
            v.visit_expr(expr);
        }
        ExprKind::CompoundLit { ty, init } => {
            v.visit_ty(&ty.ty);
            v.visit_initializer(init);
        }
        ExprKind::SizeofExpr(inner) => v.visit_expr(inner),
        ExprKind::SizeofType(ty) => v.visit_ty(&ty.ty),
        ExprKind::Comma { lhs, rhs } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Paren(inner) => v.visit_expr(inner),
    }
}

/// Recurses into an initializer.
pub fn walk_initializer<V: Visitor + ?Sized>(v: &mut V, i: &Initializer) {
    match i {
        Initializer::Expr(e) => v.visit_expr(e),
        Initializer::List { items, .. } => {
            for item in items {
                v.visit_initializer(item);
            }
        }
    }
}

/// Recurses into a syntactic type (array sizes, inline definitions,
/// function parameter types).
pub fn walk_ty<V: Visitor + ?Sized>(v: &mut V, ty: &TySyn) {
    match ty {
        TySyn::Base { spec, .. } => match spec {
            TypeSpecifier::RecordDef(r) => v.visit_record(r),
            TypeSpecifier::EnumDef(e) => v.visit_enum(e),
            _ => {}
        },
        TySyn::Pointer { pointee, .. } => v.visit_ty(pointee),
        TySyn::Array { elem, size } => {
            v.visit_ty(elem);
            if let Some(sz) = size {
                v.visit_expr(sz);
            }
        }
        TySyn::Function { ret, params, .. } => {
            v.visit_ty(ret);
            for p in params {
                v.visit_param(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[derive(Default)]
    struct Counter {
        exprs: usize,
        stmts: usize,
        vars: usize,
        calls: usize,
    }

    impl Visitor for Counter {
        fn visit_expr(&mut self, e: &Expr) {
            self.exprs += 1;
            if matches!(e.kind, ExprKind::Call { .. }) {
                self.calls += 1;
            }
            walk_expr(self, e);
        }

        fn visit_stmt(&mut self, s: &Stmt) {
            self.stmts += 1;
            walk_stmt(self, s);
        }

        fn visit_var_decl(&mut self, v: &VarDecl) {
            self.vars += 1;
            walk_var_decl(self, v);
        }
    }

    #[test]
    fn counts_nodes() {
        let ast = parse(
            "t.c",
            "int f(int a) { int x = a + 1; if (x) { f(x - 1); } return x; }",
        )
        .unwrap();
        let mut c = Counter::default();
        c.visit_unit(&ast.unit);
        assert_eq!(c.vars, 1);
        assert_eq!(c.calls, 1);
        assert!(c.stmts >= 5, "stmts = {}", c.stmts);
        assert!(c.exprs >= 8, "exprs = {}", c.exprs);
    }

    #[test]
    fn visits_inline_records() {
        let ast = parse(
            "t.c",
            "struct S { int a; } s; void f(void) { s.a = sizeof(struct S); }",
        )
        .unwrap();
        #[derive(Default)]
        struct Records(usize);
        impl Visitor for Records {
            fn visit_record(&mut self, r: &RecordDecl) {
                self.0 += 1;
                walk_record(self, r);
            }
        }
        let mut r = Records::default();
        r.visit_unit(&ast.unit);
        assert_eq!(r.0, 1);
    }

    #[test]
    fn visits_for_loops_fully() {
        let ast = parse("t.c", "void f(void) { for (int i = 0; i < 4; i++) f(); }").unwrap();
        let mut c = Counter::default();
        c.visit_unit(&ast.unit);
        assert_eq!(c.vars, 1); // loop variable
        assert_eq!(c.calls, 1);
    }
}
