//! The validation stage of §3.3: checks goals #1–#7 against the
//! LLM-generated unit tests and renders feedback for the simplest unmet
//! goal, exactly as the refinement loop requires. Goal #7 — "the mutant
//! introduces no new undefined behavior" — extends the paper's checklist
//! with the [`metamut_analyze`] dataflow analyzer.

use crate::synth::SynthesizedMutator;
use metamut_llm::defects::Defect;
use metamut_muast::{mutate_source, MutationOutcome, Mutator};

/// The result of validating one mutator implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All seven goals met on every test program.
    Valid,
    /// The simplest unmet goal plus the feedback message handed to the LLM.
    Unmet {
        /// Goal number (1–7).
        goal: u8,
        /// Diagnostic rendered for the repair prompt.
        message: String,
    },
}

impl Verdict {
    /// Whether validation passed.
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid)
    }
}

/// Validates `m` against the test programs (goals #2–#7; goal #1 — "the
/// mutator compiles" — is checked by
/// [`crate::synth::compile_blueprint`] before an executable mutator exists).
///
/// `seed` perturbs the mutator's random choices so successive refinement
/// rounds re-roll its decisions, like re-running a flaky test suite.
pub fn validate(m: &SynthesizedMutator, tests: &[String], seed: u64) -> Verdict {
    let telemetry = metamut_telemetry::handle();
    let _span = telemetry.span("validate");
    let verdict = validate_inner(m, tests, seed);
    if telemetry.enabled() {
        let label = match &verdict {
            Verdict::Valid => "valid".to_string(),
            Verdict::Unmet { goal, .. } => format!("goal_{goal}"),
        };
        telemetry.counter_add(&metamut_telemetry::labeled("validate_verdict", &label), 1);
    }
    verdict
}

fn validate_inner(m: &SynthesizedMutator, tests: &[String], seed: u64) -> Verdict {
    // Goal #2: μ terminates. Hanging implementations are detected by the
    // harness timeout; the simulation flags them without spinning.
    if m.has_defect(Defect::Hangs) {
        return Verdict::Unmet {
            goal: 2,
            message: format!(
                "mutator '{}' exceeded the 10s budget on test 1 (stack trace: Mutator::mutate → TraverseAST → <loop>)",
                m.name()
            ),
        };
    }

    let mut any_output = false;
    for (i, t) in tests.iter().enumerate() {
        // Goal #3: μ returns (does not crash).
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mutate_source(m, t, seed ^ (i as u64).wrapping_mul(0x9E37_79B9))
        }));
        let outcome = match run {
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "abort".into());
                return Verdict::Unmet {
                    goal: 3,
                    message: format!("mutator crashed on test {}: {msg}", i + 1),
                };
            }
            Ok(outcome) => outcome,
        };
        match outcome {
            Ok(MutationOutcome::Mutated(mutant)) => {
                any_output = true;
                // Goal #5: μ changes something.
                if mutant == *t {
                    return Verdict::Unmet {
                        goal: 5,
                        message: format!(
                            "mutator reported success on test {} but the output is identical to the input",
                            i + 1
                        ),
                    };
                }
                // Goal #6: the mutant compiles.
                if let Err(diags) = metamut_lang::compile_check(&mutant) {
                    let first = diags
                        .first_error()
                        .map(|d| d.message.clone())
                        .unwrap_or_else(|| "unknown error".into());
                    return Verdict::Unmet {
                        goal: 6,
                        message: format!("mutant of test {} does not compile: {first}", i + 1),
                    };
                }
                // Goal #7: the mutant introduces no new undefined behavior
                // (UB its parent test program did not already contain).
                if let Some(f) = metamut_analyze::first_new_ub(t, &mutant) {
                    return Verdict::Unmet {
                        goal: 7,
                        message: format!(
                            "mutant of test {} introduces undefined behavior: {} in '{}': {}",
                            i + 1,
                            f.analysis,
                            f.function,
                            f.message
                        ),
                    };
                }
            }
            Ok(MutationOutcome::NotApplicable) => {}
            Err(e) => {
                // Driver errors (conflicting rewrites) read as crashes.
                return Verdict::Unmet {
                    goal: 3,
                    message: format!("mutator failed on test {}: {e}", i + 1),
                };
            }
        }
    }

    // Goal #4: μ outputs something on at least one test.
    if !any_output {
        return Verdict::Unmet {
            goal: 4,
            message: "mutator produced no output on any generated test case".into(),
        };
    }
    Verdict::Valid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::compile_blueprint;
    use metamut_llm::Blueprint;

    fn tests_suite() -> Vec<String> {
        metamut_llm::TEST_PROGRAMS
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    fn synth(behavior: &str, defects: Vec<Defect>) -> SynthesizedMutator {
        let reg = metamut_mutators::full_registry();
        compile_blueprint(
            &Blueprint {
                name: "T".into(),
                description: "t".into(),
                behavior: behavior.into(),
                defects,
                mismatched: false,
                latent_compile_error: false,
            },
            &reg,
        )
        .unwrap()
    }

    #[test]
    fn clean_mutator_is_valid() {
        let m = synth("ModifyIntegerLiteral", vec![]);
        assert_eq!(validate(&m, &tests_suite(), 1), Verdict::Valid);
    }

    #[test]
    fn goals_detected_in_order() {
        let cases = [
            (vec![Defect::Hangs], 2u8),
            (vec![Defect::Crashes], 3),
            (vec![Defect::NoOutput], 4),
            (vec![Defect::NoRewrite], 5),
            (vec![Defect::CompileErrorMutant], 6),
            (vec![Defect::UbMutant], 7),
        ];
        for (defects, goal) in cases {
            let m = synth("ModifyIntegerLiteral", defects.clone());
            match validate(&m, &tests_suite(), 1) {
                Verdict::Unmet { goal: g, message } => {
                    assert_eq!(g, goal, "{defects:?}: {message}");
                    assert!(!message.is_empty());
                }
                Verdict::Valid => panic!("{defects:?} passed validation"),
            }
        }
    }

    #[test]
    fn simplest_goal_reported_first() {
        // Hangs (#2) masks CompileErrorMutant (#6).
        let m = synth(
            "ModifyIntegerLiteral",
            vec![Defect::Hangs, Defect::CompileErrorMutant],
        );
        assert!(matches!(
            validate(&m, &tests_suite(), 1),
            Verdict::Unmet { goal: 2, .. }
        ));
    }

    #[test]
    fn behaviors_with_risky_rewrites_fail_goal_6() {
        // StructToInt textually rewrites the struct definition too; on the
        // struct-bearing test it yields a non-compiling mutant — exactly the
        // class of generated mutators the paper's loop rejects.
        let m = synth("StructToInt", vec![]);
        let mut saw_goal_6 = false;
        for seed in 0..8 {
            if let Verdict::Unmet { goal: 6, .. } = validate(&m, &tests_suite(), seed) {
                saw_goal_6 = true;
            }
        }
        assert!(saw_goal_6);
    }
}
