//! Blueprint "compilation": turning a [`Blueprint`] emitted by the language
//! model into an executable mutator, faithfully reproducing each injected
//! defect's observable behavior so the validation loop has real work to do.

use metamut_lang::source::Span;
use metamut_llm::defects::Defect;
use metamut_llm::Blueprint;
use metamut_muast::{Category, MutCtx, Mutator, MutatorRegistry};
use std::sync::Arc;

/// Error from compiling a blueprint (validation goal #1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The generated source does not compile (`SyntaxError` defect).
    DoesNotCompile(String),
    /// The referenced behavior is unknown to the library.
    UnknownBehavior(String),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::DoesNotCompile(msg) => write!(f, "mutator does not compile: {msg}"),
            SynthError::UnknownBehavior(b) => write!(f, "unresolved symbol '{b}'"),
        }
    }
}

impl std::error::Error for SynthError {}

/// An executable synthesized mutator: the bound behavior plus any remaining
/// implementation defects, which manifest exactly as the paper's validation
/// goals observe them.
pub struct SynthesizedMutator {
    blueprint: Blueprint,
    base: Arc<dyn Mutator>,
    category: Category,
}

impl std::fmt::Debug for SynthesizedMutator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesizedMutator")
            .field("name", &self.blueprint.name)
            .field("behavior", &self.blueprint.behavior)
            .field("defects", &self.blueprint.defects)
            .finish()
    }
}

impl SynthesizedMutator {
    /// The blueprint this mutator was compiled from.
    pub fn blueprint(&self) -> &Blueprint {
        &self.blueprint
    }

    /// Whether the implementation still carries the given defect.
    pub fn has_defect(&self, d: Defect) -> bool {
        self.blueprint.defects.contains(&d)
    }
}

impl Mutator for SynthesizedMutator {
    fn name(&self) -> &str {
        &self.blueprint.name
    }

    fn description(&self) -> &str {
        &self.blueprint.description
    }

    fn category(&self) -> Category {
        self.category
    }

    fn mutate(&self, ctx: &mut MutCtx<'_>) -> bool {
        // Goal #3: the mutator crashes on its input.
        if self.has_defect(Defect::Crashes) {
            panic!(
                "synthesized mutator '{}' dereferenced a null AST node",
                self.blueprint.name
            );
        }
        // Goal #4: the mutator never finds anything to do.
        if self.has_defect(Defect::NoOutput) {
            return false;
        }
        // Goal #5: claims success but rewrites nothing observable — model
        // by replacing the first byte with itself (an identity rewrite).
        if self.has_defect(Defect::NoRewrite) {
            let src = ctx.ast().source();
            if !src.is_empty() {
                let first = src[0..1].to_string();
                ctx.replace(Span::new(0, 1), first);
            }
            return true;
        }
        let changed = self.base.mutate(ctx);
        // Goal #6: the rewrite breaks the mutant's syntax.
        if changed && self.has_defect(Defect::CompileErrorMutant) {
            ctx.insert_before(0, ") ");
        }
        // Goal #7: the rewrite drags undefined behavior into the mutant —
        // a compilable helper with a constant-propagated division by zero.
        // The reserved-style names keep it disjoint from test-program UB.
        if changed && self.has_defect(Defect::UbMutant) {
            ctx.insert_before(
                0,
                "static int __mm_ub(void) { int __mm_z = 0; return 1 / __mm_z; }\n",
            );
        }
        changed
    }
}

/// Compiles a blueprint against the behavior library.
///
/// # Errors
///
/// [`SynthError::DoesNotCompile`] when the blueprint carries a
/// `SyntaxError` defect (the implementation itself is broken);
/// [`SynthError::UnknownBehavior`] when the behavior key does not resolve.
pub fn compile_blueprint(
    blueprint: &Blueprint,
    registry: &MutatorRegistry,
) -> Result<SynthesizedMutator, SynthError> {
    if blueprint.defects.contains(&Defect::SyntaxError) {
        return Err(SynthError::DoesNotCompile(format!(
            "use of undeclared identifier 'TheFunctions' in {}.cpp",
            blueprint.name
        )));
    }
    let entry = registry
        .get(&blueprint.behavior)
        .ok_or_else(|| SynthError::UnknownBehavior(blueprint.behavior.clone()))?;
    Ok(SynthesizedMutator {
        blueprint: blueprint.clone(),
        base: Arc::clone(&entry.mutator),
        category: entry.mutator.category(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_muast::{mutate_source, MutationOutcome};

    fn bp(defects: Vec<Defect>) -> Blueprint {
        Blueprint {
            name: "TestMutator".into(),
            description: "test".into(),
            behavior: "ModifyIntegerLiteral".into(),
            defects,
            mismatched: false,
            latent_compile_error: false,
        }
    }

    const SRC: &str = "int f(void) { return 42; } int main(void) { return f(); }";

    #[test]
    fn syntax_error_fails_compilation() {
        let reg = metamut_mutators::full_registry();
        let err = compile_blueprint(&bp(vec![Defect::SyntaxError]), &reg).unwrap_err();
        assert!(matches!(err, SynthError::DoesNotCompile(_)));
        assert!(err.to_string().contains("does not compile"));
    }

    #[test]
    fn unknown_behavior_rejected() {
        let reg = metamut_mutators::full_registry();
        let mut b = bp(vec![]);
        b.behavior = "NoSuchBehavior".into();
        assert!(matches!(
            compile_blueprint(&b, &reg),
            Err(SynthError::UnknownBehavior(_))
        ));
    }

    #[test]
    fn clean_blueprint_behaves_like_base() {
        let reg = metamut_mutators::full_registry();
        let m = compile_blueprint(&bp(vec![]), &reg).unwrap();
        let out = mutate_source(&m, SRC, 1).unwrap();
        let s = out.mutant().expect("applies");
        assert_ne!(s, SRC);
        metamut_lang::compile_check(s).unwrap();
    }

    #[test]
    fn no_output_defect() {
        let reg = metamut_mutators::full_registry();
        let m = compile_blueprint(&bp(vec![Defect::NoOutput]), &reg).unwrap();
        assert_eq!(
            mutate_source(&m, SRC, 1).unwrap(),
            MutationOutcome::NotApplicable
        );
    }

    #[test]
    fn no_rewrite_defect_yields_identity() {
        let reg = metamut_mutators::full_registry();
        let m = compile_blueprint(&bp(vec![Defect::NoRewrite]), &reg).unwrap();
        let out = mutate_source(&m, SRC, 1).unwrap();
        assert_eq!(out.mutant(), Some(SRC));
    }

    #[test]
    fn compile_error_mutant_defect() {
        let reg = metamut_mutators::full_registry();
        let m = compile_blueprint(&bp(vec![Defect::CompileErrorMutant]), &reg).unwrap();
        let out = mutate_source(&m, SRC, 1).unwrap();
        let s = out.mutant().expect("applies");
        assert!(metamut_lang::compile_check(s).is_err(), "{s}");
    }

    #[test]
    fn crash_defect_panics() {
        let reg = metamut_mutators::full_registry();
        let m = compile_blueprint(&bp(vec![Defect::Crashes]), &reg).unwrap();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mutate_source(&m, SRC, 1)));
        assert!(result.is_err());
    }
}
