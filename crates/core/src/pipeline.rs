//! The three-stage MetaMut pipeline of Figure 1: mutator invention,
//! implementation synthesis, and the validation-refinement loop — plus the
//! "manual verification" gate of §4 that decides what enters M_u.

use crate::synth::{compile_blueprint, SynthError, SynthesizedMutator};
use crate::validate::{validate, Verdict};
use metamut_llm::accounting::{CostRecord, Step};
use metamut_llm::defects::Defect;
use metamut_llm::{Blueprint, Invention, SimLlm};
use metamut_muast::MutatorRegistry;
use serde::Serialize;
use std::sync::Arc;

/// How one MetaMut invocation ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum GenerationStatus {
    /// A valid mutator: survived validation and manual review.
    Valid,
    /// Infrastructure failure (API throttling/timeouts; 24/100 in §4.1).
    SystemError(String),
    /// Did not survive the refinement loop within the attempt budget
    /// (6/26 invalid mutators in §4.1).
    RefinementFailed {
        /// The goal that kept failing.
        goal: u8,
    },
    /// Passed validation but the implementation deviates from its
    /// description (7 mutators in §4.1) — caught by manual review.
    Mismatched,
    /// Passed the generated tests but failed the authors' more complex
    /// tests (10 mutators in §4.1).
    LatentInvalid,
    /// A duplicate of a previously generated mutator (3 in §4.1).
    Duplicate,
}

impl GenerationStatus {
    /// Whether the run produced a usable mutator.
    pub fn is_valid(&self) -> bool {
        matches!(self, GenerationStatus::Valid)
    }

    /// Stable telemetry label for the outcome class.
    pub fn label(&self) -> &'static str {
        match self {
            GenerationStatus::Valid => "valid",
            GenerationStatus::SystemError(_) => "system_error",
            GenerationStatus::RefinementFailed { .. } => "refinement_failed",
            GenerationStatus::Mismatched => "mismatched",
            GenerationStatus::LatentInvalid => "latent_invalid",
            GenerationStatus::Duplicate => "duplicate",
        }
    }
}

/// The record of one MetaMut invocation.
#[derive(Debug, Clone, Serialize)]
pub struct GenerationRecord {
    /// The invention, when stage 1 ran.
    pub invention: Option<Invention>,
    /// The final blueprint, when stage 2 ran.
    pub blueprint: Option<Blueprint>,
    /// Outcome classification.
    pub status: GenerationStatus,
    /// Token/latency cost.
    pub cost: CostRecord,
    /// Defects actually removed by the refinement loop (Table 1 rows).
    pub fixed_defects: Vec<Defect>,
    /// Goals whose feedback was sent (one per bug-fix round).
    pub feedback_goals: Vec<u8>,
}

/// The MetaMut framework instance.
pub struct MetaMut {
    llm: SimLlm,
    registry: Arc<MutatorRegistry>,
    tests: Vec<String>,
    /// Repair-attempt budget (§5.1: automatic fixing stops after 27).
    pub max_repair_attempts: u32,
    generated_names: Vec<String>,
}

impl std::fmt::Debug for MetaMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaMut")
            .field("behaviors", &self.registry.len())
            .field("tests", &self.tests.len())
            .field("generated", &self.generated_names.len())
            .finish()
    }
}

impl MetaMut {
    /// Creates a framework instance over a behavior library, asking the
    /// model once for the validation test suite.
    pub fn new(mut llm: SimLlm, registry: Arc<MutatorRegistry>) -> Self {
        let tests = llm.generate_tests("all").value;
        MetaMut {
            llm,
            registry,
            tests,
            max_repair_attempts: 27,
            generated_names: Vec::new(),
        }
    }

    /// Names of the valid mutators generated so far (the sampling-hint
    /// avoid-list of §3.1).
    pub fn generated_names(&self) -> &[String] {
        &self.generated_names
    }

    /// Runs the full pipeline once (one "MetaMut invocation" in §4 terms).
    pub fn run_once(&mut self, run_seed: u64) -> GenerationRecord {
        let telemetry = metamut_telemetry::handle();
        let _run_span = telemetry.span("run_once");
        let mut cost = CostRecord::default();
        let mut fixed = Vec::new();
        let mut feedback_goals = Vec::new();

        // Infrastructure roulette: the paper lost 24/100 runs to it.
        if let Some(err) = self.llm.roll_system_error() {
            let status = GenerationStatus::SystemError(err.to_string());
            telemetry.counter_add(
                &metamut_telemetry::labeled("generation_status", status.label()),
                1,
            );
            return GenerationRecord {
                invention: None,
                blueprint: None,
                status,
                cost,
                fixed_defects: fixed,
                feedback_goals,
            };
        }

        // Stage 1: invention.
        let invention = {
            let _span = telemetry.span("invent");
            let reply = self.llm.invent(&self.generated_names);
            cost.add(Step::Invention, reply.cost);
            reply.value
        };

        // Stage 2: one-shot synthesis over the template.
        let mut blueprint = {
            let _span = telemetry.span("synthesize");
            let reply = self.llm.synthesize(&invention);
            cost.add(Step::Implementation, reply.cost);
            reply.value
        };

        // Stage 3: validation and refinement.
        let status = {
            let _span = telemetry.span("fix_loop");
            let mut attempts = 0u32;
            loop {
                let check = self.check(&blueprint, run_seed.wrapping_add(attempts as u64));
                match check {
                    Ok(Verdict::Valid) => break self.manual_review(&invention, &blueprint),
                    Ok(Verdict::Unmet { goal, message }) | Err((goal, message)) => {
                        if attempts >= self.max_repair_attempts {
                            break GenerationStatus::RefinementFailed { goal };
                        }
                        attempts += 1;
                        feedback_goals.push(goal);
                        telemetry.counter_add("repair_attempts", 1);
                        let before: Vec<Defect> = blueprint.defects.clone();
                        let reply = self.llm.repair(&blueprint, goal, &message);
                        cost.add(Step::BugFixing, reply.cost);
                        blueprint = reply.value;
                        for d in before {
                            if !blueprint.defects.contains(&d) {
                                fixed.push(d);
                            }
                        }
                    }
                }
            }
        };

        telemetry.counter_add(
            &metamut_telemetry::labeled("generation_status", status.label()),
            1,
        );
        if status.is_valid() {
            self.generated_names.push(blueprint.name.clone());
            telemetry.gauge_set(
                "generated_valid_mutators",
                self.generated_names.len() as f64,
            );
        }
        GenerationRecord {
            invention: Some(invention),
            blueprint: Some(blueprint),
            status,
            cost,
            fixed_defects: fixed,
            feedback_goals,
        }
    }

    /// Compiles and validates a blueprint; maps compile failures to goal #1.
    fn check(&self, blueprint: &Blueprint, seed: u64) -> Result<Verdict, (u8, String)> {
        match compile_blueprint(blueprint, &self.registry) {
            Ok(m) => Ok(validate(&m, &self.tests, seed)),
            Err(e @ SynthError::DoesNotCompile(_)) => Err((1, e.to_string())),
            Err(e @ SynthError::UnknownBehavior(_)) => Err((1, e.to_string())),
        }
    }

    /// The §4 manual gate: two authors rejected mutators whose behavior
    /// deviates from the description, that fail on harder tests, or that
    /// duplicate earlier ones.
    fn manual_review(&self, invention: &Invention, blueprint: &Blueprint) -> GenerationStatus {
        if self.generated_names.contains(&invention.name) {
            return GenerationStatus::Duplicate;
        }
        if blueprint.mismatched {
            return GenerationStatus::Mismatched;
        }
        if blueprint.latent_compile_error {
            return GenerationStatus::LatentInvalid;
        }
        GenerationStatus::Valid
    }

    /// Runs the pipeline `n` times without intervention (the unsupervised
    /// campaign of §4).
    pub fn run_many(&mut self, n: usize, base_seed: u64) -> Vec<GenerationRecord> {
        (0..n)
            .map(|i| self.run_once(base_seed.wrapping_add(i as u64 * 7919)))
            .collect()
    }

    /// Compiles the valid results of a campaign into an executable mutator
    /// set (the M_u handed to μCFuzz.u).
    pub fn compiled_valid_mutators(&self, records: &[GenerationRecord]) -> Vec<SynthesizedMutator> {
        records
            .iter()
            .filter(|r| r.status.is_valid())
            .filter_map(|r| r.blueprint.as_ref())
            .filter_map(|bp| compile_blueprint(bp, &self.registry).ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_llm::SimLlmConfig;

    fn framework(seed: u64) -> MetaMut {
        let registry = Arc::new(metamut_mutators::full_registry());
        let behaviors: Vec<String> = registry
            .iter()
            .map(|m| m.mutator.name().to_string())
            .collect();
        MetaMut::new(SimLlm::new(seed, behaviors), registry)
    }

    #[test]
    fn single_run_completes() {
        let mut mm = framework(1);
        let r = mm.run_once(100);
        match &r.status {
            GenerationStatus::SystemError(_) => assert!(r.invention.is_none()),
            _ => {
                assert!(r.invention.is_some());
                assert!(r.blueprint.is_some());
                assert!(r.cost.tokens_total() > 0);
                assert!(r.cost.qa_total() >= 2);
            }
        }
    }

    #[test]
    fn campaign_statistics_match_paper_shape() {
        let mut mm = framework(42);
        let records = mm.run_many(100, 7);
        assert_eq!(records.len(), 100);

        let system_errors = records
            .iter()
            .filter(|r| matches!(r.status, GenerationStatus::SystemError(_)))
            .count();
        let valid = records.iter().filter(|r| r.status.is_valid()).count();
        let attempted = 100 - system_errors;

        // §4.1: 24/100 system errors, 50/76 (65.8%) valid.
        assert!(
            (10..=40).contains(&system_errors),
            "system errors: {system_errors}"
        );
        assert!(
            valid * 100 >= attempted * 35 && valid * 100 <= attempted * 90,
            "valid {valid}/{attempted}"
        );

        // The refinement loop did real work: some defects were fixed.
        let total_fixed: usize = records.iter().map(|r| r.fixed_defects.len()).sum();
        assert!(total_fixed > 10, "only {total_fixed} defects fixed");

        // SyntaxError dominates the fixed classes (Table 1: 55/107).
        let syntax_fixed = records
            .iter()
            .flat_map(|r| &r.fixed_defects)
            .filter(|d| **d == Defect::SyntaxError)
            .count();
        assert!(
            syntax_fixed * 2 >= total_fixed / 2,
            "syntax share too low: {syntax_fixed}/{total_fixed}"
        );

        // Costs are in the paper's ballpark: mean tokens within [3k, 36k].
        let mean_tokens: f64 = records
            .iter()
            .filter(|r| !matches!(r.status, GenerationStatus::SystemError(_)))
            .map(|r| r.cost.tokens_total() as f64)
            .sum::<f64>()
            / attempted as f64;
        assert!(
            (3000.0..20000.0).contains(&mean_tokens),
            "mean tokens {mean_tokens}"
        );
    }

    #[test]
    fn valid_mutators_are_executable() {
        let mut mm = framework(9);
        let records = mm.run_many(40, 11);
        let mutators = mm.compiled_valid_mutators(&records);
        assert!(!mutators.is_empty());
        for m in &mutators {
            let out = metamut_muast::mutate_source(m, metamut_llm::TEST_PROGRAMS[0], 5);
            assert!(out.is_ok(), "valid mutator errored");
        }
    }

    #[test]
    fn refinement_budget_respected() {
        // With repairs that never succeed, the loop stops at the cap.
        let registry = Arc::new(metamut_mutators::full_registry());
        let behaviors: Vec<String> = registry
            .iter()
            .map(|m| m.mutator.name().to_string())
            .collect();
        let llm = SimLlm::with_config(
            3,
            behaviors,
            SimLlmConfig {
                system_error_rate: 0.0,
                defective_rate: 1.0,
                repair_success_rate: 0.0,
                mean_defects: 2.0,
                ..Default::default()
            },
        );
        let mut mm = MetaMut::new(llm, registry);
        mm.max_repair_attempts = 5;
        let r = mm.run_once(1);
        match r.status {
            GenerationStatus::RefinementFailed { .. } => {
                assert_eq!(r.feedback_goals.len(), 5);
            }
            // A lucky run may synthesize a clean blueprint anyway when the
            // sole injected defect class repeats; defective_rate=1 with
            // dedup can still produce a valid one if validation passes.
            other => panic!("expected refinement failure, got {other:?}"),
        }
    }

    #[test]
    fn avoid_list_grows_with_valid_mutators() {
        let mut mm = framework(21);
        let before = mm.generated_names().len();
        let records = mm.run_many(30, 2);
        let valid = records.iter().filter(|r| r.status.is_valid()).count();
        assert_eq!(mm.generated_names().len(), before + valid);
    }
}
