//! # metamut-core
//!
//! The MetaMut framework (Figure 1 of the paper): given a language model
//! and a mutator behavior library, it
//!
//! 1. **invents** mutators by prompting the model over the
//!    action × program-structure space (§3.1),
//! 2. **synthesizes** implementations as [`metamut_llm::Blueprint`]s and
//!    compiles them against the library ([`synth`], §3.2), and
//! 3. **validates and refines** them through goals #1–#6 with feedback to
//!    the model ([`mod@validate`], §3.3), capped at 27 repair attempts (§5.1).
//!
//! The [`pipeline::MetaMut`] orchestrator also reproduces the §4 bookkeeping:
//! system-error attrition, the manual-review gate (mismatched / latent /
//! duplicate rejections), and full token/latency cost accounting.
//!
//! ```
//! use metamut_core::pipeline::MetaMut;
//! use metamut_llm::SimLlm;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(metamut_mutators::full_registry());
//! let behaviors = registry.iter().map(|m| m.mutator.name().to_string()).collect();
//! let mut metamut = MetaMut::new(SimLlm::new(1, behaviors), registry);
//! let record = metamut.run_once(7);
//! assert!(record.cost.qa_total() >= 2 || record.invention.is_none());
//! ```

#![warn(missing_docs)]

pub mod pipeline;
pub mod synth;
pub mod validate;

pub use pipeline::{GenerationRecord, GenerationStatus, MetaMut};
pub use synth::{compile_blueprint, SynthError, SynthesizedMutator};
pub use validate::{validate, Verdict};

use std::sync::Arc;

/// Convenience constructor: a [`MetaMut`] over the full behavior library
/// with a seeded simulated model — what the experiment binaries use.
pub fn default_framework(seed: u64) -> MetaMut {
    let registry = Arc::new(metamut_mutators::full_registry());
    let behaviors = registry
        .iter()
        .map(|m| m.mutator.name().to_string())
        .collect();
    MetaMut::new(metamut_llm::SimLlm::new(seed, behaviors), registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_framework_generates() {
        let mut mm = default_framework(5);
        let records = mm.run_many(10, 3);
        assert_eq!(records.len(), 10);
    }
}
