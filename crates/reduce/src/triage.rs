//! Campaign triage: bucket crash records by signature, reduce the smallest
//! witness of each bucket in parallel, and emit a per-bug report.
//!
//! The fan-out mirrors `run_parallel_campaign`: scoped std threads pulling
//! bucket indices from a shared atomic counter. Reduction is embarrassingly
//! parallel (each bucket owns its oracle), so the speedup is linear until
//! the bucket count runs out.

use crate::oracle::ReductionOracle;
use crate::reducer::{reduce, ReduceConfig};
use metamut_fuzzing::campaign::CrashRecord;
use metamut_simcomp::{CompileOptions, Profile};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Triage parameters.
#[derive(Debug, Clone, Default)]
pub struct TriageConfig {
    /// Reduction workers; `0` means one per available CPU (capped at the
    /// bucket count).
    pub workers: usize,
    /// Per-witness reduction knobs.
    pub reduce: ReduceConfig,
    /// Query database the oracles memoize into. Pass the campaign's shared
    /// database so reduction starts from the memos fuzzing already built;
    /// `None` gives every oracle a private one.
    pub query_db: Option<std::sync::Arc<metamut_simcomp::QueryDb>>,
}

/// One triaged bug: the reduced witness plus its bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BugReport {
    /// Planted-bug id (stable across runs).
    pub bug_id: String,
    /// Crash-consequence class label.
    pub kind: String,
    /// Pipeline stage label.
    pub stage: String,
    /// Top-two stack frames (the signature's preimage).
    pub frames: Vec<String>,
    /// The numeric top-two-frame signature.
    pub signature: u64,
    /// Compiler profile name.
    pub compiler: String,
    /// Flag string that triggers the crash.
    pub flags: String,
    /// Iteration the bucket's first record was discovered at.
    pub first_iteration: usize,
    /// How many crash records fell into this bucket.
    pub records: usize,
    /// Whether the chosen witness reproduced the signature under the
    /// triage compiler configuration (reduction is skipped otherwise).
    pub reproduced: bool,
    /// The reduced witness program.
    pub reduced: String,
    /// Witness bytes before reduction.
    pub original_bytes: usize,
    /// Witness bytes after reduction.
    pub reduced_bytes: usize,
    /// `reduced_bytes / original_bytes`.
    pub reduction_ratio: f64,
    /// Oracle compiler invocations spent on this bucket.
    pub oracle_calls: u64,
    /// Bytes removed per reduction pass.
    pub pass_bytes: BTreeMap<String, u64>,
}

/// The whole campaign's triage outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriageReport {
    /// Compiler profile name.
    pub compiler: String,
    /// Flag string the campaign (and every oracle) ran under.
    pub flags: String,
    /// Per-bug reports, ordered by discovery iteration.
    pub bugs: Vec<BugReport>,
    /// Oracle calls across all buckets.
    pub total_oracle_calls: u64,
    /// Total witness bytes before reduction.
    pub total_bytes_before: usize,
    /// Total witness bytes after reduction.
    pub total_bytes_after: usize,
}

impl TriageReport {
    /// Pretty-printed JSON rendering of the report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parses a report previously written by [`TriageReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("malformed triage report: {e}"))
    }

    /// Folds `other` (a later run's report) into this one — the
    /// `triage --append` merge. Bugs are deduplicated by crash signature:
    /// a bug seen in both runs keeps the smaller reduced witness (a
    /// reproduced row always beats a non-reproduced one), the earliest
    /// discovery iteration, and the combined record count. Totals are
    /// recomputed from the merged rows. Errs when the two reports ran
    /// different compiler configurations — their signatures are not
    /// comparable.
    pub fn merge(&mut self, other: TriageReport) -> Result<(), String> {
        if self.compiler != other.compiler || self.flags != other.flags {
            return Err(format!(
                "cannot merge triage reports from different configurations: \
                 {} ({}) vs {} ({})",
                self.compiler, self.flags, other.compiler, other.flags
            ));
        }
        let mut by_sig: BTreeMap<u64, BugReport> = BTreeMap::new();
        for bug in self.bugs.drain(..).chain(other.bugs) {
            match by_sig.get_mut(&bug.signature) {
                None => {
                    by_sig.insert(bug.signature, bug);
                }
                Some(kept) => {
                    let better = (bug.reproduced && !kept.reproduced)
                        || (bug.reproduced == kept.reproduced
                            && bug.reduced_bytes < kept.reduced_bytes);
                    let records = kept.records + bug.records;
                    let first = kept.first_iteration.min(bug.first_iteration);
                    if better {
                        *kept = bug;
                    }
                    kept.records = records;
                    kept.first_iteration = first;
                }
            }
        }
        self.bugs = by_sig.into_values().collect();
        self.bugs.sort_by_key(|b| b.first_iteration);
        self.total_oracle_calls = self.bugs.iter().map(|b| b.oracle_calls).sum();
        self.total_bytes_before = self.bugs.iter().map(|b| b.original_bytes).sum();
        self.total_bytes_after = self.bugs.iter().map(|b| b.reduced_bytes).sum();
        Ok(())
    }

    /// Renders the report as a markdown bug-list document.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# Triage report — {} ({})\n\n{} unique bug(s); {} → {} bytes across all witnesses; {} oracle calls.\n\n",
            self.compiler,
            self.flags,
            self.bugs.len(),
            self.total_bytes_before,
            self.total_bytes_after,
            self.total_oracle_calls,
        ));
        out.push_str("| bug | stage | kind | bytes | ratio | oracle calls |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for b in &self.bugs {
            out.push_str(&format!(
                "| {} | {} | {} | {} → {} | {:.0}% | {} |\n",
                b.bug_id,
                b.stage,
                b.kind,
                b.original_bytes,
                b.reduced_bytes,
                b.reduction_ratio * 100.0,
                b.oracle_calls,
            ));
        }
        for b in &self.bugs {
            out.push_str(&format!(
                "\n## {}\n\n- crash: `{}` / `{}`\n- trigger flags: `{}`\n- first seen: iteration {}\n- records in bucket: {}\n\n```c\n{}\n```\n",
                b.bug_id, b.frames[0], b.frames[1], b.flags, b.first_iteration, b.records, b.reduced,
            ));
        }
        out
    }
}

/// A signature bucket awaiting reduction.
struct Bucket {
    smallest: CrashRecord,
    records: usize,
    first_iteration: usize,
}

/// Groups records by signature, keeping the smallest witness per bucket and
/// ordering buckets by first discovery.
fn bucket_records(records: &[CrashRecord]) -> Vec<Bucket> {
    let mut by_sig: BTreeMap<u64, Bucket> = BTreeMap::new();
    for r in records {
        match by_sig.get_mut(&r.signature) {
            None => {
                by_sig.insert(
                    r.signature,
                    Bucket {
                        smallest: r.clone(),
                        records: 1,
                        first_iteration: r.first_iteration,
                    },
                );
            }
            Some(b) => {
                b.records += 1;
                b.first_iteration = b.first_iteration.min(r.first_iteration);
                if r.witness.len() < b.smallest.witness.len() {
                    b.smallest = r.clone();
                }
            }
        }
    }
    let mut buckets: Vec<Bucket> = by_sig.into_values().collect();
    buckets.sort_by_key(|b| b.first_iteration);
    buckets
}

/// Reduces one bucket's smallest witness and writes its report row.
fn triage_bucket(
    bucket: &Bucket,
    profile: Profile,
    options: &CompileOptions,
    config: &TriageConfig,
) -> BugReport {
    let record = &bucket.smallest;
    let mut oracle = ReductionOracle::new(profile, options.clone(), record.signature);
    if let Some(db) = &config.query_db {
        oracle = oracle.with_query_db(std::sync::Arc::clone(db));
    }
    let oracle = oracle;
    let reproduced = oracle.reproduces(&record.witness);
    let result = reduce(&oracle, &record.witness, &config.reduce);
    BugReport {
        bug_id: record.info.bug_id.to_string(),
        kind: record.info.kind.label().to_string(),
        stage: record.info.stage.label().to_string(),
        frames: record.info.frames.iter().map(|f| f.to_string()).collect(),
        signature: record.signature,
        compiler: profile.name().to_string(),
        flags: options.render(),
        first_iteration: bucket.first_iteration,
        records: bucket.records,
        reproduced,
        reduction_ratio: result.ratio(),
        reduced: result.reduced,
        original_bytes: result.original_bytes,
        reduced_bytes: result.reduced_bytes,
        oracle_calls: result.oracle_calls,
        pass_bytes: result.pass_bytes,
    }
}

/// Triages `records` from a campaign that ran `profile` under `options`:
/// buckets by signature, reduces every bucket's smallest witness across
/// `config.workers` threads, and assembles the [`TriageReport`].
pub fn triage_crashes(
    records: &[CrashRecord],
    profile: Profile,
    options: &CompileOptions,
    config: &TriageConfig,
) -> TriageReport {
    let telemetry = metamut_telemetry::handle();
    let _span = telemetry.span("triage");
    let buckets = bucket_records(records);
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.workers
    }
    .min(buckets.len())
    .max(1);

    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, BugReport)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= buckets.len() {
                    break;
                }
                let report = triage_bucket(&buckets[i], profile, options, config);
                done.lock().push((i, report));
            });
        }
    });
    let mut rows = done.into_inner();
    rows.sort_by_key(|(i, _)| *i);
    let bugs: Vec<BugReport> = rows.into_iter().map(|(_, b)| b).collect();

    TriageReport {
        compiler: profile.name().to_string(),
        flags: options.render(),
        total_oracle_calls: bugs.iter().map(|b| b.oracle_calls).sum(),
        total_bytes_before: bugs.iter().map(|b| b.original_bytes).sum(),
        total_bytes_after: bugs.iter().map(|b| b.reduced_bytes).sum(),
        bugs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_simcomp::Compiler;

    fn record_for(witness: &str, profile: Profile, options: &CompileOptions) -> CrashRecord {
        let info = Compiler::new(profile, options.clone())
            .compile(witness)
            .outcome
            .crash()
            .expect("witness must crash")
            .clone();
        CrashRecord {
            signature: info.signature(),
            info,
            first_iteration: 0,
            witness: witness.to_string(),
        }
    }

    #[test]
    fn buckets_keep_smallest_witness() {
        let options = CompileOptions::o0();
        let small = record_for(
            "foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }",
            Profile::Clang,
            &options,
        );
        let mut big = record_for(
            "int pad(void) { return 7; }\nfoo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }",
            Profile::Clang,
            &options,
        );
        big.first_iteration = 5;
        let buckets = bucket_records(&[big.clone(), small.clone()]);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].records, 2);
        assert_eq!(buckets[0].smallest.witness, small.witness);
        assert_eq!(buckets[0].first_iteration, 0);
    }

    #[test]
    fn triage_reduces_and_reports() {
        let options = CompileOptions::o0();
        let witness = "\
int filler_one(void) { return 11; }\n\
int filler_two(void) { return filler_one() + 1; }\n\
foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }\n";
        let records = vec![record_for(witness, Profile::Clang, &options)];
        let report = triage_crashes(&records, Profile::Clang, &options, &TriageConfig::default());
        assert_eq!(report.bugs.len(), 1);
        let bug = &report.bugs[0];
        assert!(bug.reproduced);
        assert_eq!(bug.bug_id, "clang-69213-scalar-brace");
        assert!(bug.reduced_bytes < bug.original_bytes);
        assert!(report.total_oracle_calls > 0);
        let md = report.to_markdown();
        assert!(md.contains("clang-69213-scalar-brace"));
        assert!(md.contains("```c"));
        // The reduced witness still crashes with the same signature.
        let oracle = ReductionOracle::new(Profile::Clang, options.clone(), bug.signature);
        assert!(oracle.reproduces(&bug.reduced));
    }

    fn toy_bug(signature: u64, reduced: &str, first_iteration: usize) -> BugReport {
        BugReport {
            bug_id: format!("bug-{signature}"),
            kind: "segfault".to_string(),
            stage: "MiddleEnd".to_string(),
            frames: vec!["a".to_string(), "b".to_string()],
            signature,
            compiler: "gcc-sim".to_string(),
            flags: "-O2".to_string(),
            first_iteration,
            records: 1,
            reproduced: true,
            reduced: reduced.to_string(),
            original_bytes: 100,
            reduced_bytes: reduced.len(),
            reduction_ratio: reduced.len() as f64 / 100.0,
            oracle_calls: 10,
            pass_bytes: BTreeMap::from([("ddmin".to_string(), 40u64)]),
        }
    }

    fn toy_report(bugs: Vec<BugReport>) -> TriageReport {
        TriageReport {
            compiler: "gcc-sim".to_string(),
            flags: "-O2".to_string(),
            total_oracle_calls: bugs.iter().map(|b| b.oracle_calls).sum(),
            total_bytes_before: bugs.iter().map(|b| b.original_bytes).sum(),
            total_bytes_after: bugs.iter().map(|b| b.reduced_bytes).sum(),
            bugs,
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = toy_report(vec![toy_bug(1, "int x;", 3), toy_bug(2, "int y;", 7)]);
        let back = TriageReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(back.compiler, report.compiler);
        assert_eq!(back.flags, report.flags);
        assert_eq!(back.bugs.len(), 2);
        assert_eq!(back.bugs[0].signature, 1);
        assert_eq!(back.bugs[0].reduced, "int x;");
        assert_eq!(back.bugs[0].pass_bytes, report.bugs[0].pass_bytes);
        assert_eq!(back.total_oracle_calls, report.total_oracle_calls);
        assert!(TriageReport::from_json("not json").is_err());
    }

    #[test]
    fn merge_dedups_by_signature_keeping_smallest_witness() {
        let mut first = toy_report(vec![toy_bug(1, "int xxxx;", 9), toy_bug(2, "int y;", 4)]);
        let second = toy_report(vec![toy_bug(1, "int x;", 2), toy_bug(3, "int z;", 6)]);
        first.merge(second).expect("same configuration");
        assert_eq!(first.bugs.len(), 3);
        let b1 = first.bugs.iter().find(|b| b.signature == 1).unwrap();
        assert_eq!(b1.reduced, "int x;", "smaller witness wins");
        assert_eq!(b1.first_iteration, 2, "earliest discovery wins");
        assert_eq!(b1.records, 2, "record counts accumulate");
        // Rows re-sorted by first_iteration; totals recomputed.
        let iters: Vec<usize> = first.bugs.iter().map(|b| b.first_iteration).collect();
        assert_eq!(iters, vec![2, 4, 6]);
        assert_eq!(
            first.total_bytes_after,
            first.bugs.iter().map(|b| b.reduced_bytes).sum::<usize>()
        );
    }

    #[test]
    fn merge_prefers_reproduced_rows_over_smaller_ones() {
        let mut stale = toy_bug(1, "int q;", 1);
        stale.reproduced = false;
        let mut first = toy_report(vec![stale]);
        let fresh = toy_report(vec![toy_bug(1, "int quux_long;", 5)]);
        first.merge(fresh).expect("same configuration");
        assert!(first.bugs[0].reproduced);
        assert_eq!(first.bugs[0].reduced, "int quux_long;");
    }

    #[test]
    fn merge_rejects_mismatched_configurations() {
        let mut first = toy_report(vec![toy_bug(1, "int x;", 1)]);
        let mut other = toy_report(vec![toy_bug(2, "int y;", 2)]);
        other.flags = "-O0".to_string();
        assert!(first.merge(other).is_err());
        let mut clang = toy_report(vec![]);
        clang.compiler = "clang-sim".to_string();
        assert!(first.merge(clang).is_err());
    }

    #[test]
    fn non_reproducing_record_is_flagged() {
        let options = CompileOptions::o0();
        let mut rec = record_for(
            "foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }",
            Profile::Clang,
            &options,
        );
        // Corrupt the witness so it no longer crashes.
        rec.witness = "int main(void) { return 0; }".to_string();
        let report = triage_crashes(&[rec], Profile::Clang, &options, &TriageConfig::default());
        assert_eq!(report.bugs.len(), 1);
        assert!(!report.bugs[0].reproduced);
        assert_eq!(report.bugs[0].reduction_ratio, 1.0);
    }
}
