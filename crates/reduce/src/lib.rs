//! # metamut-reduce
//!
//! Crash triage and signature-preserving test-case reduction: the step that
//! turns a campaign's raw crash list into the paper's §5 case-study shape —
//! one *minimal witness program* plus trigger flags per unique bug.
//!
//! The pipeline has three layers:
//!
//! - [`oracle::ReductionOracle`] — re-runs `metamut-simcomp` under the
//!   original `Profile`/flags and accepts a candidate only if it crashes
//!   with the identical top-two-frame signature (verdict-cached).
//! - [`reducer::reduce`] — hierarchical delta debugging over the real
//!   `metamut-lang` AST (top-level declarations, then statement lists level
//!   by level) followed by semantic shrink passes: drop unused declarations,
//!   inline trivial calls, simplify expressions to constants, shrink array
//!   dimensions and initializers, and reprint normalization. Unparseable
//!   witnesses (raw byte crashers) fall back to line- and character-level
//!   ddmin.
//! - [`triage::triage_crashes`] — buckets `CrashRecord`s by signature,
//!   reduces the smallest witness per bucket across N worker threads, and
//!   emits a [`triage::TriageReport`] (JSON + markdown).
//!
//! ```
//! use metamut_reduce::{ReductionOracle, reduce, ReduceConfig};
//! use metamut_simcomp::{CompileOptions, Profile};
//!
//! let witness = "int dead(void) { return 1; }\n\
//!                foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }";
//! let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), witness)
//!     .expect("witness crashes clang-sim");
//! let result = reduce(&oracle, witness, &ReduceConfig::default());
//! assert!(result.reduced_bytes < witness.len());
//! assert!(oracle.reproduces(&result.reduced));
//! ```

#![warn(missing_docs)]

pub mod ddmin;
pub mod fixtures;
pub mod oracle;
pub mod passes;
pub mod reducer;
pub mod triage;

pub use ddmin::ddmin;
pub use oracle::ReductionOracle;
pub use reducer::{reduce, ReduceConfig, ReduceResult};
pub use triage::{triage_crashes, BugReport, TriageConfig, TriageReport};
