//! Delta debugging (ddmin) over an arbitrary item list.
//!
//! The classic Zeller/Hildebrandt algorithm specialized to the "minimize"
//! direction used by test-case reducers: starting from a list that is known
//! to reproduce, repeatedly try dropping complements of ever-finer chunks,
//! keeping any smaller list that still passes the predicate. The result is
//! 1-minimal with respect to chunk removal at the finest granularity.

/// Minimizes `items` under `test`.
///
/// `test` receives a candidate sub-list (in original order) and returns
/// `true` when it still reproduces the behaviour of interest. The caller
/// guarantees `test(&items)` would be `true`; `test` is never invoked on
/// the full list or on the empty list unless the list shrinks to it.
///
/// Returns the minimized list. The number of `test` calls is
/// `O(n log n)` in the well-behaved case and `O(n²)` worst case, as in the
/// original algorithm.
pub fn ddmin<T: Clone>(items: Vec<T>, mut test: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current = items;
    if current.len() < 2 {
        return current;
    }
    let mut granularity = 2usize;
    loop {
        let n = current.len();
        let chunk = n.div_ceil(granularity);
        let mut shrunk = false;
        let mut start = 0usize;
        while start < n && current.len() == n {
            let end = (start + chunk).min(n);
            // Complement: everything except current[start..end].
            let candidate: Vec<T> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .cloned()
                .collect();
            if !candidate.is_empty() && test(&candidate) {
                current = candidate;
                shrunk = true;
                break;
            }
            start = end;
        }
        if shrunk {
            // Removal succeeded: coarsen one notch (never below 2) and
            // rescan the smaller list.
            granularity = granularity.saturating_sub(1).max(2);
            if current.len() < 2 {
                return current;
            }
            continue;
        }
        if granularity >= current.len() {
            return current; // 1-minimal at the finest granularity
        }
        granularity = (granularity * 2).min(current.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_needle() {
        let items: Vec<i32> = (0..64).collect();
        let mut calls = 0usize;
        let out = ddmin(items, |c| {
            calls += 1;
            c.contains(&37)
        });
        assert_eq!(out, vec![37]);
        assert!(calls < 64 * 64, "call budget blown: {calls}");
    }

    #[test]
    fn keeps_scattered_needles() {
        let items: Vec<i32> = (0..40).collect();
        let needles = [3, 17, 31];
        let out = ddmin(items, |c| needles.iter().all(|n| c.contains(n)));
        assert_eq!(out, needles.to_vec());
    }

    #[test]
    fn preserves_order() {
        let items = vec!["a", "b", "c", "d", "e", "f"];
        let out = ddmin(items, |c| c.contains(&"b") && c.contains(&"e"));
        assert_eq!(out, vec!["b", "e"]);
    }

    #[test]
    fn everything_needed_is_untouched() {
        let items: Vec<i32> = (0..7).collect();
        let all = items.clone();
        let out = ddmin(items, |c| c.len() == all.len());
        assert_eq!(out, all);
    }

    #[test]
    fn tiny_lists_pass_through() {
        assert_eq!(ddmin(Vec::<u8>::new(), |_| true), Vec::<u8>::new());
        assert_eq!(ddmin(vec![1], |_| false), vec![1]);
    }
}
