//! The hierarchical reducer: ddmin over AST structure plus semantic shrink
//! passes, all gated by the signature-preserving [`ReductionOracle`].
//!
//! Each round re-parses the current best witness (spans always refer to the
//! text that produced them), runs the pass pipeline, and stops when a round
//! removes nothing, the round cap is hit, or the oracle budget runs out.
//! Witnesses the `metamut-lang` parser cannot digest (raw byte crashers
//! such as the paren-storm front-end bugs) fall back to textual ddmin over
//! lines and then character chunks.

use crate::ddmin::ddmin;
use crate::oracle::ReductionOracle;
use crate::passes;
use metamut_lang::{parse, printer, Span};
use std::collections::BTreeMap;
use std::time::Instant;

/// Knobs for one reduction run.
#[derive(Debug, Clone)]
pub struct ReduceConfig {
    /// Maximum pass-pipeline rounds before giving up (each round re-parses).
    pub max_rounds: usize,
    /// Hard cap on oracle compiler invocations for this witness.
    pub max_oracle_calls: u64,
    /// Maximum expression-simplification attempts per round.
    pub expr_attempts: usize,
    /// Character-level ddmin is only attempted on witnesses at most this
    /// many bytes long (it is quadratic in the worst case).
    pub char_ddmin_limit: usize,
    /// Reorder passes after the first round so the cheapest highest-yield
    /// ones run first (bytes removed per oracle call, measured on *this*
    /// witness — deterministic, no wall clocks). The fixpoint is the same
    /// either way; only the oracle calls spent getting there change.
    pub adaptive_pass_order: bool,
}

impl Default for ReduceConfig {
    fn default() -> Self {
        ReduceConfig {
            max_rounds: 8,
            max_oracle_calls: 5_000,
            expr_attempts: 64,
            char_ddmin_limit: 4_096,
            adaptive_pass_order: true,
        }
    }
}

/// The outcome of reducing one witness.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReduceResult {
    /// The minimized witness (still reproduces the target signature).
    pub reduced: String,
    /// Byte size of the original witness.
    pub original_bytes: usize,
    /// Byte size of the reduced witness.
    pub reduced_bytes: usize,
    /// Compiler invocations spent by the oracle.
    pub oracle_calls: u64,
    /// Pass-pipeline rounds executed.
    pub rounds: usize,
    /// Bytes removed per pass name (only passes that removed something).
    pub pass_bytes: BTreeMap<String, u64>,
    /// Wall-clock milliseconds spent reducing.
    pub elapsed_ms: f64,
}

impl ReduceResult {
    /// `reduced_bytes / original_bytes`, in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.original_bytes == 0 {
            return 1.0;
        }
        self.reduced_bytes as f64 / self.original_bytes as f64
    }
}

/// Reduces `witness` under `oracle`, preserving its crash signature.
///
/// The caller guarantees `oracle.reproduces(witness)`; if it does not, the
/// witness is returned unchanged (zero-size reductions never lie).
pub fn reduce(oracle: &ReductionOracle, witness: &str, config: &ReduceConfig) -> ReduceResult {
    let start = Instant::now();
    let original_bytes = witness.len();
    let mut best = witness.to_string();
    let mut pass_bytes: BTreeMap<String, u64> = BTreeMap::new();
    let mut stats = vec![PassStats::default(); STRUCTURAL_PASSES.len()];
    let mut rounds = 0usize;

    if oracle.reproduces(&best) {
        for round in 0..config.max_rounds {
            rounds += 1;
            let before = best.len();
            run_round(
                oracle,
                &mut best,
                &mut pass_bytes,
                &mut stats,
                config,
                round,
            );
            if best.len() >= before || oracle.calls() >= config.max_oracle_calls {
                break;
            }
        }
    }

    let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
    metamut_telemetry::handle().observe("reduce_ms", elapsed_ms);
    ReduceResult {
        reduced_bytes: best.len(),
        reduced: best,
        original_bytes,
        oracle_calls: oracle.calls(),
        rounds,
        pass_bytes,
        elapsed_ms,
    }
}

/// Uniform signature every structural pass is wrapped into so the
/// scheduler can reorder them.
type PassFn = fn(&ReductionOracle, &mut String, &ReduceConfig) -> u64;

/// The structural pass pipeline in canonical (first-round) order.
const STRUCTURAL_PASSES: [(&str, PassFn); 7] = [
    ("drop-unused", |o, b, c| {
        drop_unused(o, b, c.max_oracle_calls)
    }),
    ("ddmin-decls", |o, b, c| {
        ddmin_decls(o, b, c.max_oracle_calls)
    }),
    ("ddmin-stmts", |o, b, c| {
        ddmin_stmts(o, b, c.max_oracle_calls)
    }),
    ("inline-calls", |o, b, c| {
        inline_calls(o, b, c.max_oracle_calls)
    }),
    ("shrink-arrays", |o, b, c| {
        shrink_arrays(o, b, c.max_oracle_calls)
    }),
    ("simplify-exprs", |o, b, c| {
        simplify_exprs(o, b, c.max_oracle_calls, c.expr_attempts)
    }),
    ("reprint", |o, b, _| reprint(o, b)),
];

/// Per-pass yield/cost bookkeeping for one witness, accumulated across
/// rounds. Cost is oracle compiler invocations — a deterministic proxy for
/// pass expense that, unlike wall time, keeps the schedule (and therefore
/// the whole reduction) reproducible.
#[derive(Debug, Clone, Copy, Default)]
struct PassStats {
    bytes: u64,
    calls: u64,
}

impl PassStats {
    /// Scaled bytes-removed-per-oracle-call score (integer math so the
    /// sort never sees NaN and ties break canonically).
    fn score(&self) -> u64 {
        self.bytes.saturating_mul(1_000) / self.calls.max(1)
    }
}

/// The round's pass schedule: canonical on the first round (no evidence
/// yet), then cheapest-highest-yield first. Zero-yield passes score 0 and
/// sink to the back in canonical order (the sort is stable).
fn pass_order(stats: &[PassStats], config: &ReduceConfig, round: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..stats.len()).collect();
    if config.adaptive_pass_order && round > 0 {
        order.sort_by_key(|&i| std::cmp::Reverse(stats[i].score()));
    }
    order
}

/// One pipeline round over the current best witness.
fn run_round(
    oracle: &ReductionOracle,
    best: &mut String,
    pass_bytes: &mut BTreeMap<String, u64>,
    stats: &mut [PassStats],
    config: &ReduceConfig,
    round: usize,
) {
    let budget = config.max_oracle_calls;
    if parse("<reduce>", best).is_err() {
        // Textual fallback for witnesses our front end cannot parse.
        record(pass_bytes, "ddmin-lines", ddmin_lines(oracle, best, budget));
        if best.len() <= config.char_ddmin_limit {
            record(pass_bytes, "ddmin-chars", ddmin_chars(oracle, best, budget));
        }
        return;
    }

    for idx in pass_order(stats, config, round) {
        run_pass(idx, oracle, best, pass_bytes, stats, config);
        if oracle.calls() >= budget {
            break;
        }
    }
}

/// Runs one structural pass under its observability wrapper: a
/// `reduce-pass` span, the `reduce_pass_ms{pass}` histogram, and the
/// yield/cost stats feeding the adaptive schedule.
fn run_pass(
    idx: usize,
    oracle: &ReductionOracle,
    best: &mut String,
    pass_bytes: &mut BTreeMap<String, u64>,
    stats: &mut [PassStats],
    config: &ReduceConfig,
) {
    let (name, pass) = STRUCTURAL_PASSES[idx];
    let telemetry = metamut_telemetry::handle();
    let mut span = telemetry.span_fast("reduce-pass");
    span.attr("pass", name);
    let start = telemetry.enabled().then(Instant::now);
    let calls_before = oracle.calls();
    let removed = pass(oracle, best, config);
    stats[idx].bytes += removed;
    stats[idx].calls += oracle.calls().saturating_sub(calls_before);
    record(pass_bytes, name, removed);
    if let Some(start) = start {
        telemetry.observe_hot(
            &metamut_telemetry::labeled("reduce_pass_ms", name),
            start.elapsed().as_secs_f64() * 1e3,
        );
    }
}

/// Books `removed` bytes against `pass` (and the per-pass telemetry counter).
fn record(pass_bytes: &mut BTreeMap<String, u64>, pass: &str, removed: u64) {
    if removed > 0 {
        *pass_bytes.entry(pass.to_string()).or_insert(0) += removed;
        metamut_telemetry::handle().counter_add(
            &metamut_telemetry::labeled("reduce_bytes_removed", pass),
            removed,
        );
    }
}

/// Accepts `candidate` if it is smaller and still reproduces; returns the
/// bytes it removed. Each accepted candidate re-anchors the oracle's
/// incremental baseline, so the probes that follow (mostly rejected
/// single-declaration edits of the new best) compile incrementally.
fn try_candidate(oracle: &ReductionOracle, best: &mut String, candidate: String) -> u64 {
    if candidate.len() < best.len() && oracle.reproduces(&candidate) {
        let removed = (best.len() - candidate.len()) as u64;
        *best = candidate;
        oracle.rebase(best);
        removed
    } else {
        0
    }
}

/// Runs ddmin over a set of deletable spans of `best`; spans must be
/// pairwise disjoint. Returns bytes removed.
fn ddmin_span_deletion(
    oracle: &ReductionOracle,
    best: &mut String,
    spans: Vec<Span>,
    budget: u64,
) -> u64 {
    if spans.is_empty() {
        return 0;
    }
    let snapshot = best.clone();
    if spans.len() == 1 {
        return try_candidate(oracle, best, passes::delete_spans(&snapshot, &spans));
    }
    let all = spans.clone();
    let kept = ddmin(spans, |subset| {
        if oracle.calls() >= budget {
            return false;
        }
        let deleted = complement(&all, subset);
        oracle.reproduces(&passes::delete_spans(&snapshot, &deleted))
    });
    if kept.len() < all.len() {
        let deleted = complement(&all, &kept);
        try_candidate(oracle, best, passes::delete_spans(&snapshot, &deleted))
    } else {
        0
    }
}

/// Spans of `all` that are not in `subset` (`subset` is an ordered
/// sub-list of `all`, as ddmin guarantees).
fn complement(all: &[Span], subset: &[Span]) -> Vec<Span> {
    let mut out = Vec::with_capacity(all.len() - subset.len());
    let mut it = subset.iter().peekable();
    for s in all {
        if it.peek() == Some(&s) {
            it.next();
        } else {
            out.push(*s);
        }
    }
    out
}

/// Applies `(span, replacement)` edits (spans from one snapshot, pairwise
/// disjoint) back-to-front.
fn apply_edits(snapshot: &str, edits: &[(Span, String)]) -> String {
    let mut sorted: Vec<&(Span, String)> = edits.iter().collect();
    sorted.sort_by_key(|(s, _)| std::cmp::Reverse(s.lo));
    let mut out = snapshot.to_string();
    for (span, replacement) in sorted {
        out = passes::replace_span(&out, *span, replacement);
    }
    out
}

/// Greedily applies edit groups against one snapshot: each accepted group's
/// edits accumulate, each candidate is the snapshot with all accepted edits
/// plus one trial group. Returns bytes removed.
fn greedy_edit_groups(
    oracle: &ReductionOracle,
    best: &mut String,
    snapshot: &str,
    groups: Vec<Vec<(Span, String)>>,
    budget: u64,
) -> u64 {
    let mut accepted: Vec<(Span, String)> = Vec::new();
    let mut removed_total = 0u64;
    for group in groups {
        if oracle.calls() >= budget {
            break;
        }
        let accepted_spans: Vec<Span> = accepted.iter().map(|(s, _)| *s).collect();
        if group
            .iter()
            .any(|(s, _)| !passes::disjoint_from(*s, &accepted_spans))
        {
            continue;
        }
        let mut trial = accepted.clone();
        trial.extend(group.iter().cloned());
        let candidate = apply_edits(snapshot, &trial);
        let removed = try_candidate(oracle, best, candidate);
        if removed > 0 {
            accepted = trial;
            removed_total += removed;
        }
    }
    removed_total
}

fn drop_unused(oracle: &ReductionOracle, best: &mut String, _budget: u64) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    let spans = passes::unused_decl_spans(&ast);
    if spans.is_empty() {
        return 0;
    }
    // One combined candidate; the decl-level ddmin mops up individually if
    // the bulk drop overshoots.
    try_candidate(
        oracle,
        best,
        passes::delete_spans(best.clone().as_str(), &spans),
    )
}

fn ddmin_decls(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    ddmin_span_deletion(oracle, best, passes::decl_spans(&ast), budget)
}

fn ddmin_stmts(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let mut removed = 0u64;
    let mut depth = 0usize;
    // Hierarchical descent: finish a depth, re-parse (spans shifted), go
    // one level deeper until the tree runs out of compounds.
    while let Ok(ast) = parse("<reduce>", best) {
        let levels = passes::block_item_spans_by_depth(&ast);
        if depth >= levels.len() {
            break;
        }
        removed += ddmin_span_deletion(oracle, best, levels[depth].clone(), budget);
        depth += 1;
        if oracle.calls() >= budget {
            break;
        }
    }
    removed
}

fn inline_calls(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    let groups = passes::trivial_call_edits(&ast);
    let snapshot = best.clone();
    greedy_edit_groups(oracle, best, &snapshot, groups, budget)
}

fn shrink_arrays(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    let groups: Vec<Vec<(Span, String)>> = passes::array_shrink_edits(&ast)
        .into_iter()
        .map(|e| vec![e])
        .collect();
    let snapshot = best.clone();
    greedy_edit_groups(oracle, best, &snapshot, groups, budget)
}

fn simplify_exprs(
    oracle: &ReductionOracle,
    best: &mut String,
    budget: u64,
    attempts: usize,
) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    let groups: Vec<Vec<(Span, String)>> = passes::expr_simplify_spans(&ast, 3, attempts)
        .into_iter()
        .map(|s| vec![(s, "0".to_string())])
        .collect();
    let snapshot = best.clone();
    greedy_edit_groups(oracle, best, &snapshot, groups, budget)
}

fn reprint(oracle: &ReductionOracle, best: &mut String) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    try_candidate(oracle, best, printer::print_unit(&ast.unit))
}

fn ddmin_lines(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    ddmin_span_deletion(
        oracle,
        best,
        passes::line_spans(best.clone().as_str()),
        budget,
    )
}

fn ddmin_chars(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let snapshot = best.clone();
    let chars: Vec<Span> = (0..snapshot.len() as u32)
        .filter(|&i| snapshot.is_char_boundary(i as usize))
        .map(|i| {
            let lo = i as usize;
            let mut hi = lo + 1;
            while hi < snapshot.len() && !snapshot.is_char_boundary(hi) {
                hi += 1;
            }
            Span::new(lo as u32, hi as u32)
        })
        .collect();
    ddmin_span_deletion(oracle, best, chars, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_simcomp::{CompileOptions, Profile};

    fn oracle_for(profile: Profile, options: CompileOptions, witness: &str) -> ReductionOracle {
        ReductionOracle::for_witness(profile, options, witness).expect("witness must crash")
    }

    #[test]
    fn reduces_bloated_scalar_brace_witness() {
        // clang-69213: `(int) {{}, 0}` compound literal at -O0, padded with
        // dead decls and statements campaign mutants typically carry.
        let witness = "\
int helper_a(void) { return 42; }\n\
int helper_b(int x) { return x + helper_a(); }\n\
int dead_global[16] = {1, 2, 3, 4, 5, 6, 7, 8};\n\
foo(int *ptr) { int unused_local = 9; *ptr = (int) {{}, 0}; return 0; }\n\
int trailer(void) { return dead_global[0] + helper_b(3); }\n";
        let oracle = oracle_for(Profile::Clang, CompileOptions::o0(), witness);
        let result = reduce(&oracle, witness, &ReduceConfig::default());
        assert!(
            oracle.reproduces(&result.reduced),
            "signature must be preserved: {:?}",
            result.reduced
        );
        assert!(
            result.reduced_bytes < witness.len() / 2,
            "expected a real shrink, got {} -> {} ({:?})",
            result.original_bytes,
            result.reduced_bytes,
            result.reduced
        );
        assert!(result.oracle_calls > 0);
        assert!(!result.pass_bytes.is_empty());
    }

    #[test]
    fn unparseable_witness_falls_back_to_textual_ddmin() {
        // A raw-feature front-end crash: deep paren nesting. Not valid in
        // our C subset as written (it is), but make it unparseable with
        // trailing garbage so the fallback path engages.
        let storm = format!("int x = {}1;\n@@@ not parseable @@@\n", "(".repeat(40));
        let oracle = oracle_for(Profile::Gcc, CompileOptions::o0(), &storm);
        let result = reduce(&oracle, &storm, &ReduceConfig::default());
        assert!(oracle.reproduces(&result.reduced));
        assert!(result.reduced_bytes < storm.len());
    }

    /// The adaptive scheduler only reorders work; the fixpoint the
    /// pipeline converges to is byte-for-byte the same as the canonical
    /// order's, on both the structural and the textual-fallback paths.
    #[test]
    fn adaptive_pass_order_leaves_fixpoint_unchanged() {
        let witnesses = [
            // Structural path: the bloated scalar-brace witness.
            "int helper_a(void) { return 42; }\n\
             int helper_b(int x) { return x + helper_a(); }\n\
             int dead_global[16] = {1, 2, 3, 4, 5, 6, 7, 8};\n\
             foo(int *ptr) { int unused_local = 9; *ptr = (int) {{}, 0}; return 0; }\n\
             int trailer(void) { return dead_global[0] + helper_b(3); }\n"
                .to_string(),
            // Fallback path: a paren storm the front end cannot parse.
            format!("int x = {}1;\n@@@ not parseable @@@\n", "(".repeat(40)),
        ];
        for (i, witness) in witnesses.iter().enumerate() {
            let profile = if i == 0 { Profile::Clang } else { Profile::Gcc };
            let canonical_cfg = ReduceConfig {
                adaptive_pass_order: false,
                ..ReduceConfig::default()
            };
            let adaptive_cfg = ReduceConfig {
                adaptive_pass_order: true,
                ..ReduceConfig::default()
            };
            let canonical = reduce(
                &oracle_for(profile, CompileOptions::o0(), witness),
                witness,
                &canonical_cfg,
            );
            let adaptive = reduce(
                &oracle_for(profile, CompileOptions::o0(), witness),
                witness,
                &adaptive_cfg,
            );
            assert_eq!(
                canonical.reduced, adaptive.reduced,
                "witness {i}: adaptive ordering changed the fixpoint"
            );
            // Determinism of the schedule itself: a second adaptive run is
            // identical down to the oracle-call count.
            let again = reduce(
                &oracle_for(profile, CompileOptions::o0(), witness),
                witness,
                &adaptive_cfg,
            );
            assert_eq!(again.reduced, adaptive.reduced);
            assert_eq!(again.oracle_calls, adaptive.oracle_calls);
            assert_eq!(again.pass_bytes, adaptive.pass_bytes);
        }
    }

    /// The schedule orders by bytes-removed-per-oracle-call: round one is
    /// canonical, later rounds front-load the proven cheap high-yield
    /// passes and sink zero-yield ones to the back in canonical order.
    #[test]
    fn pass_order_ranks_by_yield_per_call() {
        let config = ReduceConfig::default();
        let mut stats = vec![PassStats::default(); STRUCTURAL_PASSES.len()];
        // Round 0 (and the non-adaptive config) always run canonically.
        let canonical: Vec<usize> = (0..STRUCTURAL_PASSES.len()).collect();
        assert_eq!(pass_order(&stats, &config, 0), canonical);
        let frozen = ReduceConfig {
            adaptive_pass_order: false,
            ..ReduceConfig::default()
        };
        assert_eq!(pass_order(&stats, &frozen, 3), canonical);

        // Pass 2 removed the most per call, pass 4 a little; the rest did
        // nothing (with varying costs — cost alone must not promote).
        stats[0] = PassStats {
            bytes: 0,
            calls: 50,
        };
        stats[2] = PassStats {
            bytes: 300,
            calls: 10,
        };
        stats[4] = PassStats {
            bytes: 40,
            calls: 20,
        };
        let order = pass_order(&stats, &config, 1);
        assert_eq!(order[0], 2, "highest yield-per-call first");
        assert_eq!(order[1], 4);
        assert_eq!(
            &order[2..],
            &[0, 1, 3, 5, 6],
            "zero-yield passes keep canonical order at the back"
        );
    }

    #[test]
    fn non_reproducing_witness_is_returned_unchanged() {
        let oracle = ReductionOracle::new(Profile::Gcc, CompileOptions::o0(), 0xdead_beef);
        let witness = "int main(void) { return 0; }";
        let result = reduce(&oracle, witness, &ReduceConfig::default());
        assert_eq!(result.reduced, witness);
        assert_eq!(result.ratio(), 1.0);
    }

    #[test]
    fn ratio_is_bytes_over_bytes() {
        let r = ReduceResult {
            reduced: "ab".into(),
            original_bytes: 8,
            reduced_bytes: 2,
            oracle_calls: 3,
            rounds: 1,
            pass_bytes: BTreeMap::new(),
            elapsed_ms: 0.0,
        };
        assert!((r.ratio() - 0.25).abs() < 1e-9);
    }
}
