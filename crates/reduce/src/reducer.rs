//! The hierarchical reducer: ddmin over AST structure plus semantic shrink
//! passes, all gated by the signature-preserving [`ReductionOracle`].
//!
//! Each round re-parses the current best witness (spans always refer to the
//! text that produced them), runs the pass pipeline, and stops when a round
//! removes nothing, the round cap is hit, or the oracle budget runs out.
//! Witnesses the `metamut-lang` parser cannot digest (raw byte crashers
//! such as the paren-storm front-end bugs) fall back to textual ddmin over
//! lines and then character chunks.

use crate::ddmin::ddmin;
use crate::oracle::ReductionOracle;
use crate::passes;
use metamut_lang::{parse, printer, Span};
use std::collections::BTreeMap;
use std::time::Instant;

/// Knobs for one reduction run.
#[derive(Debug, Clone)]
pub struct ReduceConfig {
    /// Maximum pass-pipeline rounds before giving up (each round re-parses).
    pub max_rounds: usize,
    /// Hard cap on oracle compiler invocations for this witness.
    pub max_oracle_calls: u64,
    /// Maximum expression-simplification attempts per round.
    pub expr_attempts: usize,
    /// Character-level ddmin is only attempted on witnesses at most this
    /// many bytes long (it is quadratic in the worst case).
    pub char_ddmin_limit: usize,
}

impl Default for ReduceConfig {
    fn default() -> Self {
        ReduceConfig {
            max_rounds: 8,
            max_oracle_calls: 5_000,
            expr_attempts: 64,
            char_ddmin_limit: 4_096,
        }
    }
}

/// The outcome of reducing one witness.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReduceResult {
    /// The minimized witness (still reproduces the target signature).
    pub reduced: String,
    /// Byte size of the original witness.
    pub original_bytes: usize,
    /// Byte size of the reduced witness.
    pub reduced_bytes: usize,
    /// Compiler invocations spent by the oracle.
    pub oracle_calls: u64,
    /// Pass-pipeline rounds executed.
    pub rounds: usize,
    /// Bytes removed per pass name (only passes that removed something).
    pub pass_bytes: BTreeMap<String, u64>,
    /// Wall-clock milliseconds spent reducing.
    pub elapsed_ms: f64,
}

impl ReduceResult {
    /// `reduced_bytes / original_bytes`, in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.original_bytes == 0 {
            return 1.0;
        }
        self.reduced_bytes as f64 / self.original_bytes as f64
    }
}

/// Reduces `witness` under `oracle`, preserving its crash signature.
///
/// The caller guarantees `oracle.reproduces(witness)`; if it does not, the
/// witness is returned unchanged (zero-size reductions never lie).
pub fn reduce(oracle: &ReductionOracle, witness: &str, config: &ReduceConfig) -> ReduceResult {
    let start = Instant::now();
    let original_bytes = witness.len();
    let mut best = witness.to_string();
    let mut pass_bytes: BTreeMap<String, u64> = BTreeMap::new();
    let mut rounds = 0usize;

    if oracle.reproduces(&best) {
        for _ in 0..config.max_rounds {
            rounds += 1;
            let before = best.len();
            run_round(oracle, &mut best, &mut pass_bytes, config);
            if best.len() >= before || oracle.calls() >= config.max_oracle_calls {
                break;
            }
        }
    }

    let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
    metamut_telemetry::handle().observe("reduce_ms", elapsed_ms);
    ReduceResult {
        reduced_bytes: best.len(),
        reduced: best,
        original_bytes,
        oracle_calls: oracle.calls(),
        rounds,
        pass_bytes,
        elapsed_ms,
    }
}

/// One pipeline round over the current best witness.
fn run_round(
    oracle: &ReductionOracle,
    best: &mut String,
    pass_bytes: &mut BTreeMap<String, u64>,
    config: &ReduceConfig,
) {
    let budget = config.max_oracle_calls;
    if parse("<reduce>", best).is_err() {
        // Textual fallback for witnesses our front end cannot parse.
        record(pass_bytes, "ddmin-lines", ddmin_lines(oracle, best, budget));
        if best.len() <= config.char_ddmin_limit {
            record(pass_bytes, "ddmin-chars", ddmin_chars(oracle, best, budget));
        }
        return;
    }

    record(pass_bytes, "drop-unused", drop_unused(oracle, best, budget));
    record(pass_bytes, "ddmin-decls", ddmin_decls(oracle, best, budget));
    record(pass_bytes, "ddmin-stmts", ddmin_stmts(oracle, best, budget));
    record(
        pass_bytes,
        "inline-calls",
        inline_calls(oracle, best, budget),
    );
    record(
        pass_bytes,
        "shrink-arrays",
        shrink_arrays(oracle, best, budget),
    );
    record(
        pass_bytes,
        "simplify-exprs",
        simplify_exprs(oracle, best, budget, config.expr_attempts),
    );
    record(pass_bytes, "reprint", reprint(oracle, best));
}

/// Books `removed` bytes against `pass` (and the per-pass telemetry counter).
fn record(pass_bytes: &mut BTreeMap<String, u64>, pass: &str, removed: u64) {
    if removed > 0 {
        *pass_bytes.entry(pass.to_string()).or_insert(0) += removed;
        metamut_telemetry::handle().counter_add(
            &metamut_telemetry::labeled("reduce_bytes_removed", pass),
            removed,
        );
    }
}

/// Accepts `candidate` if it is smaller and still reproduces; returns the
/// bytes it removed. Each accepted candidate re-anchors the oracle's
/// incremental baseline, so the probes that follow (mostly rejected
/// single-declaration edits of the new best) compile incrementally.
fn try_candidate(oracle: &ReductionOracle, best: &mut String, candidate: String) -> u64 {
    if candidate.len() < best.len() && oracle.reproduces(&candidate) {
        let removed = (best.len() - candidate.len()) as u64;
        *best = candidate;
        oracle.rebase(best);
        removed
    } else {
        0
    }
}

/// Runs ddmin over a set of deletable spans of `best`; spans must be
/// pairwise disjoint. Returns bytes removed.
fn ddmin_span_deletion(
    oracle: &ReductionOracle,
    best: &mut String,
    spans: Vec<Span>,
    budget: u64,
) -> u64 {
    if spans.is_empty() {
        return 0;
    }
    let snapshot = best.clone();
    if spans.len() == 1 {
        return try_candidate(oracle, best, passes::delete_spans(&snapshot, &spans));
    }
    let all = spans.clone();
    let kept = ddmin(spans, |subset| {
        if oracle.calls() >= budget {
            return false;
        }
        let deleted = complement(&all, subset);
        oracle.reproduces(&passes::delete_spans(&snapshot, &deleted))
    });
    if kept.len() < all.len() {
        let deleted = complement(&all, &kept);
        try_candidate(oracle, best, passes::delete_spans(&snapshot, &deleted))
    } else {
        0
    }
}

/// Spans of `all` that are not in `subset` (`subset` is an ordered
/// sub-list of `all`, as ddmin guarantees).
fn complement(all: &[Span], subset: &[Span]) -> Vec<Span> {
    let mut out = Vec::with_capacity(all.len() - subset.len());
    let mut it = subset.iter().peekable();
    for s in all {
        if it.peek() == Some(&s) {
            it.next();
        } else {
            out.push(*s);
        }
    }
    out
}

/// Applies `(span, replacement)` edits (spans from one snapshot, pairwise
/// disjoint) back-to-front.
fn apply_edits(snapshot: &str, edits: &[(Span, String)]) -> String {
    let mut sorted: Vec<&(Span, String)> = edits.iter().collect();
    sorted.sort_by_key(|(s, _)| std::cmp::Reverse(s.lo));
    let mut out = snapshot.to_string();
    for (span, replacement) in sorted {
        out = passes::replace_span(&out, *span, replacement);
    }
    out
}

/// Greedily applies edit groups against one snapshot: each accepted group's
/// edits accumulate, each candidate is the snapshot with all accepted edits
/// plus one trial group. Returns bytes removed.
fn greedy_edit_groups(
    oracle: &ReductionOracle,
    best: &mut String,
    snapshot: &str,
    groups: Vec<Vec<(Span, String)>>,
    budget: u64,
) -> u64 {
    let mut accepted: Vec<(Span, String)> = Vec::new();
    let mut removed_total = 0u64;
    for group in groups {
        if oracle.calls() >= budget {
            break;
        }
        let accepted_spans: Vec<Span> = accepted.iter().map(|(s, _)| *s).collect();
        if group
            .iter()
            .any(|(s, _)| !passes::disjoint_from(*s, &accepted_spans))
        {
            continue;
        }
        let mut trial = accepted.clone();
        trial.extend(group.iter().cloned());
        let candidate = apply_edits(snapshot, &trial);
        let removed = try_candidate(oracle, best, candidate);
        if removed > 0 {
            accepted = trial;
            removed_total += removed;
        }
    }
    removed_total
}

fn drop_unused(oracle: &ReductionOracle, best: &mut String, _budget: u64) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    let spans = passes::unused_decl_spans(&ast);
    if spans.is_empty() {
        return 0;
    }
    // One combined candidate; the decl-level ddmin mops up individually if
    // the bulk drop overshoots.
    try_candidate(
        oracle,
        best,
        passes::delete_spans(best.clone().as_str(), &spans),
    )
}

fn ddmin_decls(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    ddmin_span_deletion(oracle, best, passes::decl_spans(&ast), budget)
}

fn ddmin_stmts(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let mut removed = 0u64;
    let mut depth = 0usize;
    // Hierarchical descent: finish a depth, re-parse (spans shifted), go
    // one level deeper until the tree runs out of compounds.
    while let Ok(ast) = parse("<reduce>", best) {
        let levels = passes::block_item_spans_by_depth(&ast);
        if depth >= levels.len() {
            break;
        }
        removed += ddmin_span_deletion(oracle, best, levels[depth].clone(), budget);
        depth += 1;
        if oracle.calls() >= budget {
            break;
        }
    }
    removed
}

fn inline_calls(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    let groups = passes::trivial_call_edits(&ast);
    let snapshot = best.clone();
    greedy_edit_groups(oracle, best, &snapshot, groups, budget)
}

fn shrink_arrays(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    let groups: Vec<Vec<(Span, String)>> = passes::array_shrink_edits(&ast)
        .into_iter()
        .map(|e| vec![e])
        .collect();
    let snapshot = best.clone();
    greedy_edit_groups(oracle, best, &snapshot, groups, budget)
}

fn simplify_exprs(
    oracle: &ReductionOracle,
    best: &mut String,
    budget: u64,
    attempts: usize,
) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    let groups: Vec<Vec<(Span, String)>> = passes::expr_simplify_spans(&ast, 3, attempts)
        .into_iter()
        .map(|s| vec![(s, "0".to_string())])
        .collect();
    let snapshot = best.clone();
    greedy_edit_groups(oracle, best, &snapshot, groups, budget)
}

fn reprint(oracle: &ReductionOracle, best: &mut String) -> u64 {
    let Ok(ast) = parse("<reduce>", best) else {
        return 0;
    };
    try_candidate(oracle, best, printer::print_unit(&ast.unit))
}

fn ddmin_lines(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    ddmin_span_deletion(
        oracle,
        best,
        passes::line_spans(best.clone().as_str()),
        budget,
    )
}

fn ddmin_chars(oracle: &ReductionOracle, best: &mut String, budget: u64) -> u64 {
    let snapshot = best.clone();
    let chars: Vec<Span> = (0..snapshot.len() as u32)
        .filter(|&i| snapshot.is_char_boundary(i as usize))
        .map(|i| {
            let lo = i as usize;
            let mut hi = lo + 1;
            while hi < snapshot.len() && !snapshot.is_char_boundary(hi) {
                hi += 1;
            }
            Span::new(lo as u32, hi as u32)
        })
        .collect();
    ddmin_span_deletion(oracle, best, chars, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_simcomp::{CompileOptions, Profile};

    fn oracle_for(profile: Profile, options: CompileOptions, witness: &str) -> ReductionOracle {
        ReductionOracle::for_witness(profile, options, witness).expect("witness must crash")
    }

    #[test]
    fn reduces_bloated_scalar_brace_witness() {
        // clang-69213: `(int) {{}, 0}` compound literal at -O0, padded with
        // dead decls and statements campaign mutants typically carry.
        let witness = "\
int helper_a(void) { return 42; }\n\
int helper_b(int x) { return x + helper_a(); }\n\
int dead_global[16] = {1, 2, 3, 4, 5, 6, 7, 8};\n\
foo(int *ptr) { int unused_local = 9; *ptr = (int) {{}, 0}; return 0; }\n\
int trailer(void) { return dead_global[0] + helper_b(3); }\n";
        let oracle = oracle_for(Profile::Clang, CompileOptions::o0(), witness);
        let result = reduce(&oracle, witness, &ReduceConfig::default());
        assert!(
            oracle.reproduces(&result.reduced),
            "signature must be preserved: {:?}",
            result.reduced
        );
        assert!(
            result.reduced_bytes < witness.len() / 2,
            "expected a real shrink, got {} -> {} ({:?})",
            result.original_bytes,
            result.reduced_bytes,
            result.reduced
        );
        assert!(result.oracle_calls > 0);
        assert!(!result.pass_bytes.is_empty());
    }

    #[test]
    fn unparseable_witness_falls_back_to_textual_ddmin() {
        // A raw-feature front-end crash: deep paren nesting. Not valid in
        // our C subset as written (it is), but make it unparseable with
        // trailing garbage so the fallback path engages.
        let storm = format!("int x = {}1;\n@@@ not parseable @@@\n", "(".repeat(40));
        let oracle = oracle_for(Profile::Gcc, CompileOptions::o0(), &storm);
        let result = reduce(&oracle, &storm, &ReduceConfig::default());
        assert!(oracle.reproduces(&result.reduced));
        assert!(result.reduced_bytes < storm.len());
    }

    #[test]
    fn non_reproducing_witness_is_returned_unchanged() {
        let oracle = ReductionOracle::new(Profile::Gcc, CompileOptions::o0(), 0xdead_beef);
        let witness = "int main(void) { return 0; }";
        let result = reduce(&oracle, witness, &ReduceConfig::default());
        assert_eq!(result.reduced, witness);
        assert_eq!(result.ratio(), 1.0);
    }

    #[test]
    fn ratio_is_bytes_over_bytes() {
        let r = ReduceResult {
            reduced: "ab".into(),
            original_bytes: 8,
            reduced_bytes: 2,
            oracle_calls: 3,
            rounds: 1,
            pass_bytes: BTreeMap::new(),
            elapsed_ms: 0.0,
        };
        assert!((r.ratio() - 0.25).abs() < 1e-9);
    }
}
