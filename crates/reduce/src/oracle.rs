//! The reduction oracle: "does this candidate still reproduce the *same*
//! crash?"
//!
//! A candidate is accepted only if the instrumented compiler — same
//! [`Profile`], same [`CompileOptions`] — still dies with the identical
//! [`CrashInfo::signature`] (the paper's top-two-stack-frames unique-crash
//! criterion from `metamut-simcomp::bugs`). Everything else (clean
//! compiles, rejections, *different* crashes) is a failed candidate, so
//! reduction can never silently slide from one bug onto another.
//!
//! Every distinct candidate costs one compiler invocation; byte-identical
//! retries (ddmin revisits subsets across granularity levels) are answered
//! from a verdict cache without recompiling.

use metamut_lang::fxhash::FxHashMap;
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

fn source_hash(src: &str) -> u64 {
    let mut h = metamut_lang::fxhash::FxHasher::default();
    src.hash(&mut h);
    h.finish()
}

/// A signature-preserving crash oracle over one compiler configuration.
pub struct ReductionOracle {
    compiler: Compiler,
    target: u64,
    calls: AtomicU64,
    verdicts: Mutex<FxHashMap<u64, bool>>,
}

impl ReductionOracle {
    /// An oracle that accepts exactly the crashes whose signature is
    /// `target` under `profile`/`options`.
    pub fn new(profile: Profile, options: CompileOptions, target: u64) -> Self {
        ReductionOracle {
            compiler: Compiler::new(profile, options),
            target,
            calls: AtomicU64::new(0),
            verdicts: Mutex::new(FxHashMap::default()),
        }
    }

    /// Builds the oracle *from* a crashing witness: compiles `witness` and
    /// locks onto the signature it produces. Returns `None` when the
    /// witness does not crash this compiler configuration at all.
    pub fn for_witness(profile: Profile, options: CompileOptions, witness: &str) -> Option<Self> {
        let compiler = Compiler::new(profile, options.clone());
        let crash = compiler.compile(witness).outcome.crash()?.clone();
        Some(Self::new(profile, options, crash.signature()))
    }

    /// The crash signature this oracle preserves.
    pub fn target_signature(&self) -> u64 {
        self.target
    }

    /// The compiler configuration under reduction.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Compiler invocations so far (cache hits are free).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Whether `src` still reproduces the target crash signature.
    pub fn reproduces(&self, src: &str) -> bool {
        let key = source_hash(src);
        if let Some(&v) = self.verdicts.lock().get(&key) {
            return v;
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        metamut_telemetry::handle().counter_add("reduce_oracle_calls", 1);
        let verdict = self
            .compiler
            .compile(src)
            .outcome
            .crash()
            .is_some_and(|c| c.signature() == self.target);
        self.verdicts.lock().insert(key, verdict);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WITNESS: &str = "foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }";

    #[test]
    fn locks_onto_witness_signature() {
        let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), WITNESS)
            .expect("witness crashes clang-sim");
        assert!(oracle.reproduces(WITNESS));
        // A clean program is not the same crash.
        assert!(!oracle.reproduces("int main(void) { return 0; }"));
        // Neither is a parse error.
        assert!(!oracle.reproduces("int main( {"));
    }

    #[test]
    fn non_crashing_witness_yields_no_oracle() {
        assert!(ReductionOracle::for_witness(
            Profile::Gcc,
            CompileOptions::o0(),
            "int main(void) { return 0; }"
        )
        .is_none());
    }

    #[test]
    fn verdict_cache_avoids_recompiles() {
        let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), WITNESS)
            .expect("witness crashes");
        assert!(oracle.reproduces(WITNESS));
        let after_first = oracle.calls();
        for _ in 0..5 {
            assert!(oracle.reproduces(WITNESS));
        }
        assert_eq!(oracle.calls(), after_first, "repeats must hit the cache");
    }

    #[test]
    fn different_crash_is_rejected() {
        // Lock onto the scalar-brace signature, then offer a paren-stack
        // segfault: a crash, but the wrong one.
        let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), WITNESS)
            .expect("witness crashes");
        let other = format!("int x = {}1;", "(".repeat(50));
        assert!(oracle.compiler().compile(&other).outcome.crash().is_some());
        assert!(!oracle.reproduces(&other));
    }
}
