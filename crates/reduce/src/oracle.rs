//! The reduction oracle: "does this candidate still reproduce the *same*
//! crash?"
//!
//! A candidate is accepted only if the instrumented compiler — same
//! [`Profile`], same [`CompileOptions`] — still dies with the identical
//! [`CrashInfo::signature`] (the paper's top-two-stack-frames unique-crash
//! criterion from `metamut-simcomp::bugs`). Everything else (clean
//! compiles, rejections, *different* crashes) is a failed candidate, so
//! reduction can never silently slide from one bug onto another.
//!
//! Three layers keep the oracle cheap, checked in order:
//!
//! 1. **Verdict cache** — byte-identical retries (ddmin revisits subsets
//!    across granularity levels) are answered without recompiling.
//! 2. **Syntactic pre-filter** — when the target crash fires *past* the
//!    front end, a candidate our parser rejects can never reach it: the
//!    pipeline stops at the front end, so any crash it produces has a
//!    front-end signature, never the target's. One parse replaces a full
//!    compile. Front-end targets skip this filter entirely — raw-byte bugs
//!    (paren storms, identifier overflows) fire on unparseable input.
//! 3. **Incremental compile** — candidates that still have to compile run
//!    through a [`QueryCache`] anchored on the current best witness, so
//!    function edits (statement ddmin, expression shrinking) recompute only
//!    their dirty pipeline-query slices against the witness's memos — and
//!    rebasing back onto a previously seen witness is itself a cache hit.
//!    Query-engine compilation is bit-identical to cold, so verdicts are
//!    unaffected.
//!
//! On top of the crash check, a **UB guard** keeps reduced witnesses
//! *valid*: a candidate that reproduces the signature but whose dataflow
//! analysis (`metamut-analyze`) reports undefined behavior absent from the
//! original witness is rejected anyway. ddmin loves deleting
//! initializations; without the guard the minimized reproducer routinely
//! reads uninitialized variables, and a bug report built on a UB program
//! gets bounced by compiler maintainers. The guard only fires on
//! candidates the analyzer can parse — raw-byte crashers reduce exactly as
//! before.

use metamut_analyze::{ub_keys_of, FindingKey};
use metamut_lang::fxhash::FxHashMap;
use metamut_simcomp::{CompileOptions, Compiler, CrashInfo, Profile, QueryCache, QueryDb, Stage};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn source_hash(src: &str) -> u64 {
    let mut h = metamut_lang::fxhash::FxHasher::default();
    src.hash(&mut h);
    h.finish()
}

/// A signature-preserving crash oracle over one compiler configuration.
pub struct ReductionOracle {
    compiler: Compiler,
    target: u64,
    /// Pipeline stage of the target crash, when known. `Some(stage)` with
    /// `stage != FrontEnd` enables the syntactic pre-filter; `None`
    /// (signature-only construction via [`ReductionOracle::new`]) keeps
    /// every candidate on the compile path.
    target_stage: Option<Stage>,
    calls: AtomicU64,
    prefilter_skips: AtomicU64,
    ub_rejects: AtomicU64,
    verdicts: Mutex<FxHashMap<u64, bool>>,
    /// Query-engine cache the candidates compile through.
    cache: QueryCache,
    /// The current best witness candidates are treated as edits of; kept
    /// fresh by [`ReductionOracle::rebase`]. `None` means candidates
    /// compile cold.
    witness: Mutex<Option<String>>,
    /// UB finding keys of the original witness; `Some` arms the UB guard
    /// (candidates may only reproduce these, never new ones), `None`
    /// (unanalyzable witness, or signature-only construction) disables it.
    ub_baseline: Option<BTreeSet<FindingKey>>,
}

impl ReductionOracle {
    /// An oracle that accepts exactly the crashes whose signature is
    /// `target` under `profile`/`options`. The crash stage is unknown, so
    /// the syntactic pre-filter stays off; prefer
    /// [`ReductionOracle::for_witness`] when a crashing witness is at hand.
    pub fn new(profile: Profile, options: CompileOptions, target: u64) -> Self {
        ReductionOracle {
            compiler: Compiler::new(profile, options),
            target,
            target_stage: None,
            calls: AtomicU64::new(0),
            prefilter_skips: AtomicU64::new(0),
            ub_rejects: AtomicU64::new(0),
            verdicts: Mutex::new(FxHashMap::default()),
            cache: QueryCache::default(),
            witness: Mutex::new(None),
            ub_baseline: None,
        }
    }

    /// Re-homes the oracle's incremental cache onto `db` (e.g. the
    /// campaign's shared query database), so reduction reuses every memo
    /// the campaign already built for its seeds. Call before the first
    /// [`ReductionOracle::reproduces`].
    #[must_use]
    pub fn with_query_db(mut self, db: Arc<QueryDb>) -> Self {
        self.cache = QueryCache::new(db);
        self
    }

    /// Builds the oracle *from* a crashing witness: compiles `witness`,
    /// locks onto the signature it produces, arms the syntactic pre-filter
    /// with the crash's stage, and anchors the incremental cache on the
    /// witness. Returns `None` when the witness does not crash this
    /// compiler configuration at all.
    pub fn for_witness(profile: Profile, options: CompileOptions, witness: &str) -> Option<Self> {
        let compiler = Compiler::new(profile, options);
        let crash: CrashInfo = compiler.compile(witness).outcome.crash()?.clone();
        Some(ReductionOracle {
            target: crash.signature(),
            target_stage: Some(crash.stage),
            calls: AtomicU64::new(0),
            prefilter_skips: AtomicU64::new(0),
            ub_rejects: AtomicU64::new(0),
            verdicts: Mutex::new(FxHashMap::default()),
            cache: QueryCache::default(),
            witness: Mutex::new(Some(witness.to_string())),
            ub_baseline: ub_keys_of(witness),
            compiler,
        })
    }

    /// The crash signature this oracle preserves.
    pub fn target_signature(&self) -> u64 {
        self.target
    }

    /// The pipeline stage of the target crash, when known.
    pub fn target_stage(&self) -> Option<Stage> {
        self.target_stage
    }

    /// The compiler configuration under reduction.
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Compiler invocations so far (cache hits and pre-filter skips are
    /// free; [`ReductionOracle::rebase`] is not counted either).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Candidates answered by the syntactic pre-filter instead of a
    /// compile.
    pub fn prefilter_skips(&self) -> u64 {
        self.prefilter_skips.load(Ordering::Relaxed)
    }

    /// Candidates that reproduced the crash but were rejected for
    /// introducing undefined behavior absent from the original witness.
    pub fn ub_rejects(&self) -> u64 {
        self.ub_rejects.load(Ordering::Relaxed)
    }

    /// Whether the UB guard is armed (the original witness was
    /// analyzable).
    pub fn ub_guard_armed(&self) -> bool {
        self.ub_baseline.is_some()
    }

    /// Re-anchors incremental compilation on `witness` (the reducer's
    /// current best). The anchor's pipeline queries memoize on first use;
    /// every subsequent candidate editing only function definitions
    /// recomputes just its dirty query slices. Re-anchoring onto a witness
    /// the cache has already seen (ddmin backtracking) costs nothing, and a
    /// witness the query engine cannot digest (e.g. an unparseable
    /// raw-byte crasher) is remembered as uncacheable, so its candidates
    /// fall back to cold compiles.
    pub fn rebase(&self, witness: &str) {
        *self.witness.lock() = Some(witness.to_string());
    }

    /// Whether `src` still reproduces the target crash signature.
    pub fn reproduces(&self, src: &str) -> bool {
        let key = source_hash(src);
        if let Some(&v) = self.verdicts.lock().get(&key) {
            return v;
        }
        // Syntactic pre-filter: a post-front-end crash needs a candidate
        // the front end accepts, so a failed parse settles the verdict
        // without compiling. Unsound for front-end targets (raw-byte bugs
        // crash on unparseable input), hence the stage gate.
        if self.target_stage.is_some_and(|s| s != Stage::FrontEnd)
            && metamut_lang::parse("<red>", src).is_err()
        {
            self.prefilter_skips.fetch_add(1, Ordering::Relaxed);
            metamut_telemetry::handle().counter_add("reduce_prefilter_skips", 1);
            self.verdicts.lock().insert(key, false);
            return false;
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        metamut_telemetry::handle().counter_add("reduce_oracle_calls", 1);
        let witness = self.witness.lock().clone();
        let result = match &witness {
            Some(w) => self.cache.compile(&self.compiler, w, src),
            None => self.compiler.compile(src),
        };
        let mut verdict = result
            .outcome
            .crash()
            .is_some_and(|c| c.signature() == self.target);
        // UB guard: the right crash on an *invalid* program is still a
        // failed candidate. Only analyzable candidates are judged — an
        // unparseable candidate either got pre-filtered above or crashes
        // the front end on raw bytes, where validity is moot.
        if verdict {
            if let (Some(baseline), Some(keys)) = (&self.ub_baseline, ub_keys_of(src)) {
                if !keys.is_subset(baseline) {
                    self.ub_rejects.fetch_add(1, Ordering::Relaxed);
                    metamut_telemetry::handle().counter_add("reduce_ub_rejects", 1);
                    verdict = false;
                }
            }
        }
        self.verdicts.lock().insert(key, verdict);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WITNESS: &str = "foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }";

    /// The Clang #63762 shape (back-end stage): a void function whose body
    /// is a call followed only by labels, with every return removed.
    const BACKEND_WITNESS: &str = "\
void helper(int *x, int *y) { }\n\
void foo(int x[64], int y[64]) {\n\
    helper(x, y);\n\
gt:\n\
    ;\n\
lt:\n\
    ;\n\
}\n";

    #[test]
    fn locks_onto_witness_signature() {
        let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), WITNESS)
            .expect("witness crashes clang-sim");
        assert!(oracle.reproduces(WITNESS));
        // A clean program is not the same crash.
        assert!(!oracle.reproduces("int main(void) { return 0; }"));
        // Neither is a parse error.
        assert!(!oracle.reproduces("int main( {"));
    }

    #[test]
    fn non_crashing_witness_yields_no_oracle() {
        assert!(ReductionOracle::for_witness(
            Profile::Gcc,
            CompileOptions::o0(),
            "int main(void) { return 0; }"
        )
        .is_none());
    }

    #[test]
    fn verdict_cache_avoids_recompiles() {
        let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), WITNESS)
            .expect("witness crashes");
        assert!(oracle.reproduces(WITNESS));
        let after_first = oracle.calls();
        for _ in 0..5 {
            assert!(oracle.reproduces(WITNESS));
        }
        assert_eq!(oracle.calls(), after_first, "repeats must hit the cache");
    }

    #[test]
    fn different_crash_is_rejected() {
        // Lock onto the scalar-brace signature, then offer a paren-stack
        // segfault: a crash, but the wrong one.
        let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), WITNESS)
            .expect("witness crashes");
        let other = format!("int x = {}1;", "(".repeat(50));
        assert!(oracle.compiler().compile(&other).outcome.crash().is_some());
        assert!(!oracle.reproduces(&other));
    }

    #[test]
    fn prefilter_skips_unparseable_candidates_for_backend_target() {
        let oracle =
            ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), BACKEND_WITNESS)
                .expect("witness crashes clang-sim in the back end");
        assert_eq!(oracle.target_stage(), Some(Stage::BackEnd));
        let calls_before = oracle.calls();
        assert!(!oracle.reproduces("void foo( {"));
        assert!(!oracle.reproduces("@@@ garbage @@@"));
        assert_eq!(oracle.prefilter_skips(), 2);
        assert_eq!(
            oracle.calls(),
            calls_before,
            "pre-filtered candidates must not compile"
        );
        // Skipped verdicts are cached like any other.
        assert!(!oracle.reproduces("void foo( {"));
        assert_eq!(oracle.prefilter_skips(), 2);
        // Parseable candidates still go through the compiler.
        assert!(oracle.reproduces(BACKEND_WITNESS));
        assert!(oracle.calls() > calls_before);
    }

    #[test]
    fn front_end_target_disables_prefilter() {
        // A raw-byte paren storm crashes the front end *without* parsing;
        // pre-filtering would wrongly reject the witness itself.
        let storm = format!("int x = {}1;", "(".repeat(50));
        let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), &storm)
            .expect("paren storm crashes clang-sim");
        assert_eq!(oracle.target_stage(), Some(Stage::FrontEnd));
        let shorter = format!("int x = {}1;", "(".repeat(30));
        assert!(oracle.reproduces(&shorter));
        assert_eq!(oracle.prefilter_skips(), 0);
    }

    #[test]
    fn signature_only_oracle_never_prefilters() {
        let target = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), WITNESS)
            .expect("witness crashes")
            .target_signature();
        let oracle = ReductionOracle::new(Profile::Clang, CompileOptions::o0(), target);
        assert!(oracle.target_stage().is_none());
        assert!(!oracle.reproduces("not a program"));
        assert_eq!(oracle.prefilter_skips(), 0);
        assert_eq!(oracle.calls(), 1, "unknown stage must compile to decide");
    }

    #[test]
    fn incremental_oracle_agrees_with_cold() {
        // Same configuration, one oracle with a baseline (for_witness) and
        // one without (new + signature): identical verdicts on candidates
        // that take the incremental fast path and ones that fall back.
        let with = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o2(), WITNESS)
            .expect("witness crashes at -O2 too");
        let cold = ReductionOracle::new(Profile::Clang, CompileOptions::o2(), with.target);
        let candidates = [
            WITNESS.to_string(),
            // Single-declaration edit of the witness: fast path.
            "foo(int *ptr) { *ptr = (int) {{}, 0}; }".to_string(),
            // Crash expression removed: clean compile, verdict false.
            "foo(int *ptr) { *ptr = 0; return 0; }".to_string(),
            // Different shape entirely.
            "int main(void) { return 1; }".to_string(),
        ];
        for c in &candidates {
            assert_eq!(with.reproduces(c), cold.reproduces(c), "candidate {c:?}");
        }
    }

    #[test]
    fn ub_guard_rejects_candidates_with_new_ub() {
        let oracle =
            ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), BACKEND_WITNESS)
                .expect("witness crashes");
        assert!(oracle.ub_guard_armed(), "parseable witness arms the guard");
        // Prepend an unrelated uninitialized read: same crash signature
        // (compiled below to prove it), but the program is now invalid.
        let candidate = format!("static int mm_ub(void) {{ int z; return z; }}\n{BACKEND_WITNESS}");
        assert_eq!(
            oracle
                .compiler()
                .compile(&candidate)
                .outcome
                .crash()
                .map(|c| c.signature()),
            Some(oracle.target_signature()),
            "candidate must still reproduce the crash for this test to bite"
        );
        assert!(!oracle.reproduces(&candidate), "new UB must be rejected");
        assert_eq!(oracle.ub_rejects(), 1);
        // The clean witness itself still passes.
        assert!(oracle.reproduces(BACKEND_WITNESS));
        assert_eq!(oracle.ub_rejects(), 1);
    }

    #[test]
    fn ub_guard_lets_witness_own_ub_through() {
        // A witness that *already* reads an uninitialized variable: its UB
        // keys form the baseline, so candidates preserving exactly that UB
        // are fine — the guard only fires on *new* UB.
        let witness = format!("static int mm_ub(void) {{ int z; return z; }}\n{BACKEND_WITNESS}");
        let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), &witness)
            .expect("witness still crashes");
        assert!(oracle.ub_guard_armed());
        assert!(oracle.reproduces(&witness), "inherited UB is not new UB");
        assert_eq!(oracle.ub_rejects(), 0);
        // A *different* fresh UB (division by zero) is still rejected.
        let other = format!(
            "static int mm_ub(void) {{ int z; return z; }}\nstatic int mm_dz(int a) {{ return a / 0; }}\n{BACKEND_WITNESS}"
        );
        if oracle
            .compiler()
            .compile(&other)
            .outcome
            .crash()
            .is_some_and(|c| c.signature() == oracle.target_signature())
        {
            assert!(!oracle.reproduces(&other));
            assert_eq!(oracle.ub_rejects(), 1);
        }
    }

    #[test]
    fn unanalyzable_witness_disarms_ub_guard() {
        // Raw-byte front-end crashers never parse, so there is no UB
        // baseline and no guard — reduction behaves exactly as before.
        let storm = format!("int x = {}1;", "(".repeat(50));
        let oracle = ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), &storm)
            .expect("paren storm crashes clang-sim");
        assert!(!oracle.ub_guard_armed());
        let shorter = format!("int x = {}1;", "(".repeat(30));
        assert!(oracle.reproduces(&shorter));
        assert_eq!(oracle.ub_rejects(), 0);
    }

    #[test]
    fn rebase_tracks_the_current_best() {
        let oracle =
            ReductionOracle::for_witness(Profile::Clang, CompileOptions::o0(), BACKEND_WITNESS)
                .expect("witness crashes");
        // Shrink the witness, re-anchor, and keep answering correctly.
        let smaller = "\
void helper(int *x, int *y) { }\n\
void foo(int x[64], int y[64]) {\n\
    helper(x, y);\n\
gt:\n\
    ;\n\
lt:\n\
    ;\n\
}";
        assert!(oracle.reproduces(smaller));
        oracle.rebase(smaller);
        assert!(oracle.reproduces(
            "\
void helper(int *x, int *y) { }\n\
void foo(int x[8], int y[8]) {\n\
    helper(x, y);\n\
gt:\n\
    ;\n\
lt:\n\
    ;\n\
}"
        ));
        // An unparseable rebase clears the baseline instead of lying.
        oracle.rebase("@@@");
        assert!(oracle.reproduces(smaller));
    }
}
