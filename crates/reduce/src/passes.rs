//! Span-collection helpers behind the reducer's passes.
//!
//! Every pass works the same way: parse the current witness with
//! `metamut-lang`, walk the real AST to collect candidate edits as
//! `(Span, replacement)` pairs (deletion is the empty replacement), and let
//! the oracle accept or reject each textual candidate. Spans always refer
//! to the source that was parsed, so callers apply edits back-to-front and
//! re-parse after structural acceptance.

use metamut_lang::ast::{
    Ast, BlockItem, Expr, ExprKind, ExternalDecl, FunctionDef, Initializer, Stmt, StmtKind, TySyn,
};
use metamut_lang::visit::{self, Visitor};
use metamut_lang::Span;
use std::collections::{HashMap, HashSet};

/// Deletes each of `spans` (disjoint, any order) from `src`.
pub fn delete_spans(src: &str, spans: &[Span]) -> String {
    let mut sorted: Vec<Span> = spans.to_vec();
    sorted.sort_by_key(|s| s.lo);
    let mut out = String::with_capacity(src.len());
    let mut cursor = 0usize;
    for s in sorted {
        let (lo, hi) = (s.lo as usize, s.hi as usize);
        if lo < cursor || hi > src.len() {
            continue; // overlapping or stale span: skip defensively
        }
        out.push_str(&src[cursor..lo]);
        cursor = hi;
    }
    out.push_str(&src[cursor..]);
    out
}

/// Replaces one span of `src` with `text`.
pub fn replace_span(src: &str, span: Span, text: &str) -> String {
    let mut out = String::with_capacity(src.len());
    out.push_str(&src[..span.lo as usize]);
    out.push_str(text);
    out.push_str(&src[span.hi as usize..]);
    out
}

/// Spans of all top-level declarations, in source order.
pub fn decl_spans(ast: &Ast) -> Vec<Span> {
    ast.unit.decls.iter().map(|d| d.span()).collect()
}

/// Block-item spans grouped by statement-nesting depth: index 0 holds the
/// items of every function body's outermost compound, index 1 the items one
/// compound deeper, and so on. Items at one depth are pairwise disjoint, so
/// any subset can be deleted textually in one candidate.
pub fn block_item_spans_by_depth(ast: &Ast) -> Vec<Vec<Span>> {
    struct Collector {
        depth: usize,
        levels: Vec<Vec<Span>>,
    }
    impl Visitor for Collector {
        fn visit_stmt(&mut self, s: &Stmt) {
            if let StmtKind::Compound(items) = &s.kind {
                if self.levels.len() <= self.depth {
                    self.levels.resize(self.depth + 1, Vec::new());
                }
                for item in items {
                    self.levels[self.depth].push(item.span());
                }
                self.depth += 1;
                visit::walk_stmt(self, s);
                self.depth -= 1;
            } else {
                visit::walk_stmt(self, s);
            }
        }
    }
    let mut c = Collector {
        depth: 0,
        levels: Vec::new(),
    };
    c.visit_unit(&ast.unit);
    c.levels
}

/// Every name the program *uses*: identifier references in expressions,
/// `goto` targets, and named type references (`struct S`, typedef names).
fn used_names(ast: &Ast) -> HashMap<String, Vec<Span>> {
    struct Uses(HashMap<String, Vec<Span>>);
    impl Uses {
        fn add(&mut self, name: &str, span: Span) {
            self.0.entry(name.to_string()).or_default().push(span);
        }
    }
    impl Visitor for Uses {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Ident(n) = &e.kind {
                self.add(n, e.span);
            }
            visit::walk_expr(self, e);
        }
        fn visit_stmt(&mut self, s: &Stmt) {
            if let StmtKind::Goto { name, name_span } = &s.kind {
                self.add(name, *name_span);
            }
            visit::walk_stmt(self, s);
        }
        fn visit_ty(&mut self, ty: &TySyn) {
            if let TySyn::Base { spec, .. } = ty {
                use metamut_lang::ast::TypeSpecifier as T;
                match spec {
                    T::Struct(n) | T::Union(n) | T::Enum(n) | T::Typedef(n) => {
                        self.add(n, Span::dummy())
                    }
                    _ => {}
                }
            }
            visit::walk_ty(self, ty);
        }
    }
    let mut u = Uses(HashMap::new());
    u.visit_unit(&ast.unit);
    u.0
}

/// Spans of top-level declarations none of whose declared names is
/// referenced outside the declaration itself (`main` is left alone — the
/// decl-level ddmin still gets to try it individually).
pub fn unused_decl_spans(ast: &Ast) -> Vec<Span> {
    let uses = used_names(ast);
    let used_outside = |name: &str, own: Span| -> bool {
        uses.get(name)
            .is_some_and(|spans| spans.iter().any(|s| !own.contains_span(*s)))
    };
    let mut out = Vec::new();
    for d in &ast.unit.decls {
        let span = d.span();
        let droppable = match d {
            ExternalDecl::Function(f) => f.name != "main" && !used_outside(&f.name, span),
            ExternalDecl::Vars(g) => g.vars.iter().all(|v| !used_outside(&v.name, span)),
            ExternalDecl::Record(r) => r.name.as_deref().is_none_or(|n| !used_outside(n, span)),
            ExternalDecl::Enum(e) => {
                e.name.as_deref().is_none_or(|n| !used_outside(n, span))
                    && e.enumerators
                        .iter()
                        .flatten()
                        .all(|en| !used_outside(&en.name, span))
            }
            ExternalDecl::Typedef(t) => !used_outside(&t.name, span),
        };
        if droppable {
            out.push(span);
        }
    }
    out
}

/// Single-edit candidates that shrink array dimensions to `[1]` and
/// brace initializer lists to their first element.
pub fn array_shrink_edits(ast: &Ast) -> Vec<(Span, String)> {
    struct Shrinks<'a> {
        ast: &'a Ast,
        edits: Vec<(Span, String)>,
    }
    impl Shrinks<'_> {
        fn shrink_ty(&mut self, ty: &TySyn) {
            if let TySyn::Array {
                size: Some(size), ..
            } = ty
            {
                let text = self.ast.snippet(size.span);
                if text.trim() != "1" {
                    self.edits.push((size.span, "1".to_string()));
                }
            }
        }
    }
    impl Visitor for Shrinks<'_> {
        fn visit_ty(&mut self, ty: &TySyn) {
            self.shrink_ty(ty);
            visit::walk_ty(self, ty);
        }
        fn visit_initializer(&mut self, i: &Initializer) {
            if let Initializer::List { span, items, .. } = i {
                if items.len() > 1 {
                    let first = self.ast.snippet(items[0].span());
                    self.edits.push((*span, format!("{{{first}}}")));
                }
            }
            visit::walk_initializer(self, i);
        }
    }
    let mut s = Shrinks {
        ast,
        edits: Vec::new(),
    };
    s.visit_unit(&ast.unit);
    s.edits
}

/// Whether `f` is trivial enough to inline at its call sites: a body that
/// is empty or a single `return` of a literal (or nothing).
fn trivial_body_value(f: &FunctionDef) -> Option<Option<String>> {
    let body = f.body.as_ref()?;
    let StmtKind::Compound(items) = &body.kind else {
        return None;
    };
    match items.as_slice() {
        [] => Some(None),
        [BlockItem::Stmt(s)] => match &s.kind {
            StmtKind::Return(None) | StmtKind::Null => Some(None),
            StmtKind::Return(Some(e)) if e.is_literal() => {
                Some(Some(metamut_lang::printer::print_expr(e)))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Multi-edit candidates that inline trivial functions: each entry rewrites
/// every call of one trivial function to its constant (or `0` for void
/// helpers in expression position) and deletes the definition.
pub fn trivial_call_edits(ast: &Ast) -> Vec<Vec<(Span, String)>> {
    let mut trivial: HashMap<String, Option<String>> = HashMap::new();
    let mut def_spans: HashMap<String, Span> = HashMap::new();
    for d in &ast.unit.decls {
        if let ExternalDecl::Function(f) = d {
            if f.name == "main" || !f.is_definition() {
                continue;
            }
            if let Some(value) = trivial_body_value(f) {
                trivial.insert(f.name.clone(), value);
                def_spans.insert(f.name.clone(), f.span);
            }
        }
    }
    if trivial.is_empty() {
        return Vec::new();
    }

    struct Calls<'a> {
        trivial: &'a HashMap<String, Option<String>>,
        sites: HashMap<String, Vec<Span>>,
    }
    impl Visitor for Calls<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call { callee, .. } = &e.kind {
                if let ExprKind::Ident(n) = &callee.unparenthesized().kind {
                    if self.trivial.contains_key(n) {
                        self.sites.entry(n.clone()).or_default().push(e.span);
                    }
                }
            }
            visit::walk_expr(self, e);
        }
    }
    let mut c = Calls {
        trivial: &trivial,
        sites: HashMap::new(),
    };
    c.visit_unit(&ast.unit);

    let mut out = Vec::new();
    for (name, value) in &trivial {
        let mut edits: Vec<(Span, String)> = Vec::new();
        let replacement = value.clone().unwrap_or_else(|| "0".to_string());
        for site in c.sites.get(name).into_iter().flatten() {
            edits.push((*site, replacement.clone()));
        }
        edits.push((def_spans[name], String::new()));
        out.push(edits);
    }
    // Deterministic order: by definition position.
    out.sort_by_key(|edits| edits.last().map(|(s, _)| s.lo).unwrap_or(0));
    out
}

/// Spans of composite expressions worth collapsing to a constant, largest
/// first. Nested candidates are pruned against their accepted ancestors by
/// the caller (edits are applied back-to-front and overlaps skipped).
pub fn expr_simplify_spans(ast: &Ast, min_len: usize, limit: usize) -> Vec<Span> {
    struct Exprs {
        spans: Vec<Span>,
        min_len: usize,
    }
    impl Visitor for Exprs {
        fn visit_expr(&mut self, e: &Expr) {
            let interesting = !e.is_literal()
                && !matches!(e.kind, ExprKind::Ident(_))
                && e.span.len() >= self.min_len;
            if interesting {
                self.spans.push(e.span);
            }
            visit::walk_expr(self, e);
        }
    }
    let mut x = Exprs {
        spans: Vec::new(),
        min_len,
    };
    x.visit_unit(&ast.unit);
    // Largest first: collapsing an outer expression subsumes its children.
    x.spans.sort_by_key(|s| std::cmp::Reverse(s.len()));
    x.spans.truncate(limit);
    x.spans
}

/// Drops candidate edits that overlap an already-accepted region, keeping
/// span sets safely disjoint. `accepted` holds the spans applied so far.
pub fn disjoint_from(span: Span, accepted: &[Span]) -> bool {
    accepted.iter().all(|a| !a.overlaps(span))
}

/// Line spans of `src` (used by the textual fallback for witnesses the
/// `metamut-lang` parser cannot digest — raw byte crashers).
pub fn line_spans(src: &str) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut lo = 0u32;
    for line in src.split_inclusive('\n') {
        let hi = lo + line.len() as u32;
        spans.push(Span::new(lo, hi));
        lo = hi;
    }
    spans
}

/// Set of distinct strings, used to avoid proposing duplicate candidates.
pub type SeenSet = HashSet<u64>;

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_lang::parse;

    #[test]
    fn deletes_disjoint_spans() {
        let src = "abcdef";
        let out = delete_spans(src, &[Span::new(1, 2), Span::new(4, 5)]);
        assert_eq!(out, "acdf");
    }

    #[test]
    fn collects_levels() {
        let ast = parse(
            "t.c",
            "int f(void) { int a = 1; if (a) { a = 2; a = 3; } return a; }",
        )
        .unwrap();
        let levels = block_item_spans_by_depth(&ast);
        assert_eq!(levels[0].len(), 3, "decl, if, return");
        assert_eq!(levels[1].len(), 2, "the two assignments");
    }

    #[test]
    fn finds_unused_decls() {
        let ast = parse(
            "t.c",
            "int used(void) { return 1; }\n\
             int unused(void) { return 2; }\n\
             int dead_global;\n\
             int main(void) { return used(); }",
        )
        .unwrap();
        let spans = unused_decl_spans(&ast);
        let texts: Vec<&str> = spans.iter().map(|s| ast.snippet(*s)).collect();
        assert_eq!(texts.len(), 2, "{texts:?}");
        assert!(texts[0].contains("unused"));
        assert!(texts[1].contains("dead_global"));
    }

    #[test]
    fn shrinks_arrays_and_inits() {
        let ast = parse("t.c", "int a[64] = {1, 2, 3};").unwrap();
        let edits = array_shrink_edits(&ast);
        assert_eq!(edits.len(), 2);
        let rendered: Vec<(String, &str)> = edits
            .iter()
            .map(|(s, r)| (ast.snippet(*s).to_string(), r.as_str()))
            .collect();
        assert!(rendered.contains(&("64".to_string(), "1")));
        assert!(rendered.contains(&("{1, 2, 3}".to_string(), "{1}")));
    }

    #[test]
    fn inlines_trivial_calls() {
        let ast = parse(
            "t.c",
            "int seven(void) { return 7; }\n\
             int main(void) { return seven() + seven(); }",
        )
        .unwrap();
        let groups = trivial_call_edits(&ast);
        assert_eq!(groups.len(), 1);
        // Two call sites plus the definition deletion.
        assert_eq!(groups[0].len(), 3);
        assert!(groups[0][..2].iter().all(|(_, r)| r == "7"));
        assert!(groups[0][2].1.is_empty());
    }

    #[test]
    fn expr_spans_largest_first() {
        let ast = parse("t.c", "int x = (1 + 2) * (3 + 4 + 5);").unwrap();
        let spans = expr_simplify_spans(&ast, 3, 32);
        assert!(!spans.is_empty());
        for w in spans.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn line_spans_cover_source() {
        let src = "a\nbb\nccc";
        let spans = line_spans(src);
        assert_eq!(spans.len(), 3);
        let total: usize = spans.iter().map(|s| s.len()).sum();
        assert_eq!(total, src.len());
    }
}
