//! Reconstructed case-study witnesses in pre-reduction shape.
//!
//! The paper reports each case study (§5) as a *minimal* program, but a
//! campaign first sees the crash inside a full mutant: the trigger pattern
//! buried in mutated seed code that has nothing to do with the bug. These
//! fixtures rebuild that shape — the `exp_case_studies` trigger cores padded
//! with the kind of bystander declarations, dead locals, and comments that
//! stacked mutations leave behind — so `exp_reduction` and the integration
//! test measure reduction on realistic inputs.
//!
//! Padding is chosen to stay clear of *other* catalog bugs (identifier
//! lengths, paren/brace depth, decl/typedef counts, volatile/comma/ternary
//! shapes all sit well under every unrelated threshold), so each fixture
//! crashes with exactly its intended signature.

use metamut_simcomp::{CompileOptions, OptFlags, Profile};

/// One reconstructed case-study witness.
pub struct CaseStudy {
    /// The planted bug this witness triggers.
    pub bug_id: &'static str,
    /// Compiler profile it fires on.
    pub profile: Profile,
    /// Options (the "trigger flags" of the paper's reports).
    pub options: CompileOptions,
    /// The bloated witness source.
    pub source: &'static str,
}

/// The paper's four case studies (GCC #111820/#111819, Clang #63762/#69213)
/// as bloated campaign mutants.
pub fn case_studies() -> Vec<CaseStudy> {
    vec![
        CaseStudy {
            bug_id: "gcc-111820-vectorizer-hang",
            profile: Profile::Gcc,
            options: CompileOptions {
                opt_level: 3,
                flags: OptFlags {
                    no_tree_vrp: true,
                    ..Default::default()
                },
            },
            source: GCC_111820,
        },
        CaseStudy {
            bug_id: "gcc-111819-fold-offsetof",
            profile: Profile::Gcc,
            options: CompileOptions::o0(),
            source: GCC_111819,
        },
        CaseStudy {
            bug_id: "clang-63762-label-codegen",
            profile: Profile::Clang,
            options: CompileOptions::o2(),
            source: CLANG_63762,
        },
        CaseStudy {
            bug_id: "clang-69213-scalar-brace",
            profile: Profile::Clang,
            options: CompileOptions::o0(),
            source: CLANG_69213,
        },
    ]
}

/// GCC #111820: the vectorizer hangs on a descending-from-zero loop under
/// `-O3 -fno-tree-vrp`. The trigger is `f`; everything else is mutation
/// residue.
const GCC_111820: &str = r#"/* mutant 11384: seed loop-vect.c after CopyRange, StmtDup, SwapBranch,
 * and two ExpandAssign rounds; flags sampled by the macro fuzzer. */
int r;
int r_0;
int mix_state;
int mix_accum[6] = {3, 1, 4, 1, 5, 9};
int mix_two(int a, int b) { int t = a - b; return t * 3 + b; }
int mix_fold(int a) { return mix_two(a, 2) + mix_two(2, a); }
void mix_step(void) { mix_state = mix_fold(mix_state) + mix_accum[3]; }
int mix_probe(int a, int b, int c) {
    int acc = a + b;
    if (acc > c) { acc = acc - c; } else { acc = c - acc; }
    return acc;
}
void mix_drain(void) { mix_state = mix_probe(mix_state, 8, 3); }
void f(void) {
    int n = 0;
    while (--n) {
        r_0 += r;
        r += r; r += r; r += r; r += r; r += r;
    }
}
int mix_tail(void) {
    mix_step();
    mix_drain();
    return mix_state + r_0;
}
int observe(void) { return mix_tail() + mix_accum[1]; }
"#;

/// GCC #111819: `fold_offsetof` assertion on `&__imag__ (cast)` at `-O0`.
/// The trigger is `bar`.
const GCC_111819: &str = r#"/* mutant 7952: seed complex-addr.c after ExpandCast, HoistExpr and
 * CopyPropagation rounds. */
long long combinedVar_1;
long long shadow_ring[4] = {10, 20, 30, 40};
int pad_scale(int v) { return v * 2 + 1; }
int pad_blend(int v) { return pad_scale(v) + pad_scale(v + 1); }
void pad_store(void) { shadow_ring[1] = pad_blend(7); }
int pad_cmp(int a, int b) {
    int d = a - b;
    if (d > 0) { return d; }
    return b - a;
}
void pad_shift(void) { shadow_ring[2] = pad_cmp(9, 4) + shadow_ring[0]; }
int *bar(void) {
    return (int *)&__imag__ (*(_Complex double *)((char *)&combinedVar_1 + 16));
}
long long pad_tail(void) {
    pad_store();
    pad_shift();
    return shadow_ring[1] + shadow_ring[2] + combinedVar_1;
}
"#;

/// Clang #63762: a void function whose body is a call followed only by
/// labels, no returns, at `-O2` (the Ret2V mutant of Figure 5). The
/// trigger is `helper` + `foo`.
const CLANG_63762: &str = r#"/* mutant 4417: seed jump-web.c after Ret2V, DeadArg and SplitDecl
 * rounds; labels left behind by a removed goto chain. */
int bank_a;
int bank_b[5] = {2, 7, 1, 8, 2};
int churn_add(int u, int v) { int w = u + v; return w * 2; }
int churn_mul(int u) { return churn_add(u, 3) - churn_add(3, u); }
void churn_fill(void) { bank_a = churn_mul(bank_b[4]) + bank_b[0]; }
int churn_pick(int u, int v) {
    int best = u;
    if (v > best) { best = v; }
    return best;
}
void churn_settle(void) { bank_a = churn_pick(bank_a, bank_b[2]); }
void helper(int *x, int *y) { }
void foo(int x[64], int y[64]) {
    helper(x, y);
gt:
    ;
lt:
    ;
}
int churn_tail(void) {
    churn_fill();
    churn_settle();
    return bank_a;
}
int main(void) { return 0; }
"#;

/// Clang #69213: scalar compound literal with an empty brace member at
/// `-O0`. The trigger is `foo`.
const CLANG_69213: &str = r#"/* mutant 9201: seed init-forms.c after BraceInit, DupStmt and
 * NarrowType rounds. */
int spare_counter;
int spare_grid[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int spare_sum(int a, int b) { int t = a + b; return t; }
int spare_scale(int a) { return spare_sum(a, a) * 3; }
void spare_touch(void) { spare_counter = spare_scale(spare_grid[2]); }
int spare_clamp(int a) {
    if (a > 100) { return 100; }
    if (a < 2) { return 2; }
    return a;
}
foo(int *ptr) {
    int guard = 5;
    if (guard > 1) { guard = guard - 1; }
    *ptr = (int) {{}, 0};
    return 0;
}
int spare_tail(void) {
    spare_touch();
    return spare_clamp(spare_counter);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_simcomp::Compiler;

    #[test]
    fn fixtures_trigger_their_intended_bugs() {
        for cs in case_studies() {
            let compiler = Compiler::new(cs.profile, cs.options.clone());
            let result = compiler.compile(cs.source);
            let crash = result
                .outcome
                .crash()
                .unwrap_or_else(|| panic!("{} fixture does not crash", cs.bug_id));
            assert_eq!(
                crash.bug_id, cs.bug_id,
                "{} fixture crashed with the wrong bug",
                cs.bug_id
            );
        }
    }

    #[test]
    fn fixtures_are_bloated_enough_to_reduce() {
        // The 25% acceptance gate needs real padding: every fixture must be
        // several times its trigger core.
        for cs in case_studies() {
            assert!(
                cs.source.len() > 600,
                "{} fixture is only {} bytes",
                cs.bug_id,
                cs.source.len()
            );
        }
    }
}
