//! The ISSUE 3 acceptance gate: reducing the four reconstructed case-study
//! crashes must preserve each crash signature exactly and shrink every
//! witness to at most 25% of its original byte size.

use metamut_reduce::fixtures::case_studies;
use metamut_reduce::{reduce, ReduceConfig, ReductionOracle};
use metamut_simcomp::Compiler;

#[test]
fn case_studies_reduce_to_a_quarter_with_signatures_preserved() {
    for cs in case_studies() {
        let compiler = Compiler::new(cs.profile, cs.options.clone());
        let original_crash = compiler
            .compile(cs.source)
            .outcome
            .crash()
            .unwrap_or_else(|| panic!("{}: fixture does not crash", cs.bug_id))
            .clone();
        assert_eq!(original_crash.bug_id, cs.bug_id);

        let oracle =
            ReductionOracle::new(cs.profile, cs.options.clone(), original_crash.signature());
        let result = reduce(&oracle, cs.source, &ReduceConfig::default());

        // Signature preserved exactly: the reduced witness crashes with the
        // same top-two frames under the same profile and flags.
        let reduced_crash = compiler
            .compile(&result.reduced)
            .outcome
            .crash()
            .unwrap_or_else(|| panic!("{}: reduced witness no longer crashes", cs.bug_id))
            .clone();
        assert_eq!(
            reduced_crash.signature(),
            original_crash.signature(),
            "{}: signature drifted during reduction",
            cs.bug_id
        );
        assert_eq!(reduced_crash.bug_id, cs.bug_id);

        // Size gate: at most 25% of the original bytes.
        assert!(
            result.ratio() <= 0.25,
            "{}: reduced to {} of {} bytes (ratio {:.2}, want <= 0.25)\n--- reduced ---\n{}",
            cs.bug_id,
            result.reduced_bytes,
            result.original_bytes,
            result.ratio(),
            result.reduced
        );
        assert!(result.oracle_calls > 0);
    }
}
