//! Contracts of the interprocedural summary layer: recall on the seeded
//! cross-call fixture corpus, silence on its clean controls, chain
//! payloads on propagated findings, and agreement between the
//! summary-driven verdict and analyzing the callee-inlined program.

use metamut_analyze::fixtures::{CLEAN_FIXTURES, INTERPROC_CLEAN_FIXTURES, INTERPROC_UB_FIXTURES};
use metamut_analyze::{analyze_source, analyze_unit_with, Finding, Severity, Summaries};
use metamut_lang::parse;
use proptest::strategy::any;
use proptest::test_runner::ProptestConfig;
use proptest::{prop_assert_eq, proptest};

/// The strictly intraprocedural analysis (the PR 5 behavior): every
/// callee unknown.
fn analyze_intraproc(src: &str) -> Vec<Finding> {
    let ast = parse("<intra>", src).expect("fixture parses");
    analyze_unit_with(&ast.unit, &Summaries::default())
}

#[test]
fn interproc_corpus_is_large_enough() {
    assert!(
        INTERPROC_UB_FIXTURES.len() >= 16,
        "need >= 16 seeded interprocedural-UB fixtures"
    );
    assert!(
        INTERPROC_CLEAN_FIXTURES.len() >= 12,
        "need >= 12 interprocedural clean fixtures"
    );
}

#[test]
fn every_interproc_ub_fixture_is_flagged() {
    for (name, analysis, src) in INTERPROC_UB_FIXTURES {
        let findings =
            analyze_source(src).unwrap_or_else(|e| panic!("fixture {name} failed to parse: {e:?}"));
        assert!(
            findings
                .iter()
                .any(|f| f.analysis == *analysis && f.severity == Severity::Ub),
            "fixture {name}: expected a Ub `{analysis}` finding, got {findings:#?}"
        );
    }
}

#[test]
fn interproc_fixtures_need_summaries() {
    // Every seeded defect crosses a call boundary: the intraprocedural
    // analyzer must see *no UB at all* in each fixture — otherwise the
    // fixture does not actually exercise the summary layer.
    for (name, _, src) in INTERPROC_UB_FIXTURES {
        let findings = analyze_intraproc(src);
        assert!(
            findings.iter().all(|f| !f.is_ub()),
            "fixture {name}: intraprocedural analysis already flags it: {findings:#?}"
        );
    }
}

#[test]
fn interproc_clean_corpus_has_zero_findings() {
    for (name, src) in INTERPROC_CLEAN_FIXTURES {
        let findings =
            analyze_source(src).unwrap_or_else(|e| panic!("fixture {name} failed to parse: {e:?}"));
        assert!(
            findings.is_empty(),
            "fixture {name}: expected no findings, got {findings:#?}"
        );
    }
}

#[test]
fn summaries_do_not_disturb_the_intraproc_clean_corpus() {
    // The original clean corpus must stay clean under the summary-driven
    // default analysis too.
    for (name, src) in CLEAN_FIXTURES {
        let findings = analyze_source(src).unwrap();
        assert!(
            findings.is_empty(),
            "fixture {name}: interproc analysis broke a clean fixture: {findings:#?}"
        );
    }
}

#[test]
fn propagated_findings_carry_call_chains() {
    let src = "int inner(int d) { return 10 / d; }\n\
               int mid(int d) { return inner(d); }\n\
               int f(void) { return mid(0); }\n";
    let findings = analyze_source(src).unwrap();
    let f = findings
        .iter()
        .find(|f| f.analysis == "div-by-zero" && f.function == "f")
        .expect("chained div-by-zero in f");
    assert_eq!(
        f.chain
            .iter()
            .map(|l| l.function.as_str())
            .collect::<Vec<_>>(),
        ["mid", "inner"],
        "chain walks outermost-first through the call path: {f:#?}"
    );
    // Each link's span must be non-empty and lie inside the source.
    for link in &f.chain {
        assert!(link.span.hi > link.span.lo && (link.span.hi as usize) <= src.len());
    }
}

#[test]
fn by_value_uninit_arg_gains_a_chain() {
    // Passing an uninitialized local by value is already caught
    // intraprocedurally (evaluating the argument is the read); the
    // summary's job is to attach the chain to where the callee uses it —
    // without duplicating the finding.
    let src = "int use2(int v) { return v + 1; }\n\
               int f(void) { int x; return use2(x); }\n";
    let interproc = analyze_source(src).unwrap();
    let uninit: Vec<&Finding> = interproc
        .iter()
        .filter(|f| f.analysis == "uninit-read")
        .collect();
    assert_eq!(uninit.len(), 1, "exactly one finding: {interproc:#?}");
    assert_eq!(
        uninit[0]
            .chain
            .iter()
            .map(|l| l.function.as_str())
            .collect::<Vec<_>>(),
        ["use2"]
    );
    // Identity is preserved: the enriched finding has the same key the
    // intraprocedural one would, so gate baselines stay comparable.
    let intra = analyze_intraproc(src);
    let intra_uninit = intra.iter().find(|f| f.analysis == "uninit-read").unwrap();
    assert_eq!(uninit[0].key(), intra_uninit.key());
}

#[test]
fn intraproc_mode_flags_no_chains() {
    for (name, _, src) in INTERPROC_UB_FIXTURES {
        for f in analyze_intraproc(src) {
            assert!(
                f.chain.is_empty(),
                "fixture {name}: intraprocedural finding with a chain: {f:#?}"
            );
        }
    }
}

// ======================================================================
// Inline agreement: the summary verdict matches analyzing the program
// with the callee hand-inlined.
// ======================================================================

/// Generated caller/callee pairs where the callee's body can be inlined
/// textually. Each case is `(summary_src, inlined_src)`; both must agree
/// on whether any UB is present (the finding keys differ — spans and
/// functions move — so only the verdict is compared).
fn agreement_cases() -> Vec<(String, String)> {
    let mut cases = Vec::new();
    // Div-by-param with a pinned constant argument. The callee reads its
    // parameter, so by-value demand matches the inlined read.
    for divisor in [0i64, 1, 7] {
        cases.push((
            format!(
                "int cal(int a, int b) {{ return a / b; }}\n\
                 int f(int a) {{ return cal(a, {divisor}); }}\n"
            ),
            format!("int f(int a) {{ int b = {divisor}; return a / b; }}\n"),
        ));
    }
    // Deref-param with a pinned null / valid pointer.
    cases.push((
        "int load(int *p) { return *p; }\n\
         int f(void) { return load(0); }\n"
            .to_owned(),
        "int f(void) { int *p = 0; return *p; }\n".to_owned(),
    ));
    cases.push((
        "int load(int *p) { return *p; }\n\
         int f(void) { int x = 4; return load(&x); }\n"
            .to_owned(),
        "int f(void) { int x = 4; int *p = &x; return *p; }\n".to_owned(),
    ));
    // Out-arg write-then-read vs read-before-write.
    cases.push((
        "void init(int *p) { *p = 3; }\n\
         int f(void) { int x; init(&x); return x; }\n"
            .to_owned(),
        "int f(void) { int x; x = 3; return x; }\n".to_owned(),
    ));
    cases.push((
        "int peek(int *p) { return *p; }\n\
         int f(void) { int x; return peek(&x); }\n"
            .to_owned(),
        "int f(void) { int x; return x; }\n".to_owned(),
    ));
    // Return-constant flow into a divisor.
    for ret in [0i64, 5] {
        cases.push((
            format!(
                "int c(void) {{ return {ret}; }}\n\
                 int f(int a) {{ return a / c(); }}\n"
            ),
            format!("int f(int a) {{ int r = {ret}; return a / r; }}\n"),
        ));
    }
    // Silent vs observable callee inside a constant-true loop.
    cases.push((
        "void nop(void) { }\n\
         void f(void) { while (1) { nop(); } }\n"
            .to_owned(),
        "void f(void) { while (1) { } }\n".to_owned(),
    ));
    cases.push((
        "volatile int tick;\n\
         void beep(void) { tick = tick + 1; }\n\
         void f(void) { while (1) { beep(); } }\n"
            .to_owned(),
        "volatile int tick;\n\
         void f(void) { while (1) { tick = tick + 1; } }\n"
            .to_owned(),
    ));
    // Array index flowing through a parameter.
    for idx in [2i64, 11] {
        cases.push((
            format!(
                "int t[8];\n\
                 int get(int i) {{ return t[i]; }}\n\
                 int f(void) {{ return get({idx}); }}\n"
            ),
            format!("int t[8];\nint f(void) {{ int i = {idx}; return t[i]; }}\n"),
        ));
    }
    cases
}

#[test]
fn summary_verdicts_agree_with_inlined_analysis() {
    for (summary_src, inlined_src) in agreement_cases() {
        let via_summary = analyze_source(&summary_src)
            .unwrap_or_else(|e| panic!("summary side failed to parse: {e:?}\n{summary_src}"));
        let via_inline = analyze_source(&inlined_src)
            .unwrap_or_else(|e| panic!("inlined side failed to parse: {e:?}\n{inlined_src}"));
        assert_eq!(
            via_summary.iter().any(Finding::is_ub),
            via_inline.iter().any(Finding::is_ub),
            "summary and inlined verdicts disagree:\n--- summary program\n{summary_src}\
             findings: {via_summary:#?}\n--- inlined program\n{inlined_src}\
             findings: {via_inline:#?}"
        );
    }
}

/// Instantiate one randomized agreement pair. `kind` picks the template
/// family; `x`/`y`/`flag` fill in divisors, indices, array sizes, wrapper
/// depth, and pointer/effect shape. Both programs are built from the same
/// parameters, so the inlined side is the ground truth for the summary
/// side's verdict.
fn random_agreement_pair(kind: usize, x: i64, y: i64, flag: bool) -> (String, String) {
    match kind {
        // A constant divisor flowing through a wrapper chain of random
        // depth, exercising transitive summary propagation.
        0 => {
            let depth = y.rem_euclid(3) as usize + 1;
            let mut src = String::from("int w0(int a, int b) { return a / b; }\n");
            for d in 1..depth {
                let prev = d - 1;
                src.push_str(&format!(
                    "int w{d}(int a, int b) {{ return w{prev}(a, b); }}\n"
                ));
            }
            let top = depth - 1;
            src.push_str(&format!("int f(int a) {{ return w{top}(a, {x}); }}\n"));
            (
                src,
                format!("int f(int a) {{ int b = {x}; return a / b; }}\n"),
            )
        }
        // A constant return value flowing into the caller's divisor.
        1 => (
            format!("int c(void) {{ return {x}; }}\nint f(int a) {{ return a / c(); }}\n"),
            format!("int f(int a) {{ int r = {x}; return a / r; }}\n"),
        ),
        // An index parameter against a random-sized global array; the
        // bound crossing depends on how `x` and `y` land.
        2 => {
            let size = y.rem_euclid(8) + 1;
            let idx = x.rem_euclid(16);
            (
                format!(
                    "int t[{size}];\nint get(int i) {{ return t[i]; }}\n\
                     int f(void) {{ return get({idx}); }}\n"
                ),
                format!("int t[{size}];\nint f(void) {{ int i = {idx}; return t[i]; }}\n"),
            )
        }
        // A deref-ing callee handed a null or a valid pointer.
        3 => {
            if flag {
                (
                    "int load(int *p) { return *p; }\nint f(void) { return load(0); }\n".to_owned(),
                    "int f(void) { int *p = 0; return *p; }\n".to_owned(),
                )
            } else {
                (
                    format!(
                        "int load(int *p) {{ return *p; }}\n\
                         int f(void) {{ int v = {x}; return load(&v); }}\n"
                    ),
                    format!("int f(void) {{ int v = {x}; int *p = &v; return *p; }}\n"),
                )
            }
        }
        // An out-pointer callee that either writes or reads the caller's
        // uninitialized local.
        4 => {
            if flag {
                (
                    format!(
                        "void init(int *p) {{ *p = {x}; }}\n\
                         int f(void) {{ int v; init(&v); return v; }}\n"
                    ),
                    format!("int f(void) {{ int v; v = {x}; return v; }}\n"),
                )
            } else {
                (
                    "int peek(int *p) { return *p; }\nint f(void) { int v; return peek(&v); }\n"
                        .to_owned(),
                    "int f(void) { int v; return v; }\n".to_owned(),
                )
            }
        }
        // A silent or observable callee inside a constant-true loop.
        _ => {
            if flag {
                (
                    "void nop(void) { }\nvoid f(void) { while (1) { nop(); } }\n".to_owned(),
                    "void f(void) { while (1) { } }\n".to_owned(),
                )
            } else {
                (
                    "volatile int g;\nvoid obs(void) { g = g + 1; }\n\
                     void f(void) { while (1) { obs(); } }\n"
                        .to_owned(),
                    "volatile int g;\nvoid f(void) { while (1) { g = g + 1; } }\n".to_owned(),
                )
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Randomized version of the agreement contract above: across
    /// generated caller/callee programs, the summary-based verdict must
    /// match analyzing the program with the callee textually inlined
    /// into its caller.
    #[test]
    fn random_summary_verdicts_agree_with_inlined_analysis(
        kind in 0usize..6,
        x in -4i64..10,
        y in 0i64..16,
        flag in any::<bool>(),
    ) {
        let (summary_src, inlined_src) = random_agreement_pair(kind, x, y, flag);
        let via_summary = analyze_source(&summary_src)
            .unwrap_or_else(|e| panic!("summary side failed to parse: {e:?}\n{summary_src}"));
        let via_inline = analyze_source(&inlined_src)
            .unwrap_or_else(|e| panic!("inlined side failed to parse: {e:?}\n{inlined_src}"));
        prop_assert_eq!(
            via_summary.iter().any(Finding::is_ub),
            via_inline.iter().any(Finding::is_ub),
            "summary and inlined verdicts disagree:\n--- summary program\n{}findings: {:#?}\n\
             --- inlined program\n{}findings: {:#?}",
            summary_src, via_summary, inlined_src, via_inline
        );
    }
}
