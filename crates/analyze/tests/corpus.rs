//! The precision/recall contract on the fixture corpus: every seeded-UB
//! fixture is flagged with the expected analysis at `Ub` severity, every
//! lint fixture at `Lint`, and the clean corpus produces zero findings.

use metamut_analyze::fixtures::{CLEAN_FIXTURES, LINT_FIXTURES, UB_FIXTURES};
use metamut_analyze::{analyze_source, Severity};

#[test]
fn corpus_is_large_enough() {
    assert!(UB_FIXTURES.len() >= 12, "need >= 12 seeded-UB fixtures");
    assert!(CLEAN_FIXTURES.len() >= 12, "need >= 12 clean fixtures");
}

#[test]
fn every_ub_fixture_is_flagged() {
    for (name, analysis, src) in UB_FIXTURES {
        let findings =
            analyze_source(src).unwrap_or_else(|e| panic!("fixture {name} failed to parse: {e:?}"));
        assert!(
            findings
                .iter()
                .any(|f| f.analysis == *analysis && f.severity == Severity::Ub),
            "fixture {name}: expected a Ub `{analysis}` finding, got {findings:#?}"
        );
    }
}

#[test]
fn every_lint_fixture_is_flagged_as_lint_only() {
    for (name, analysis, src) in LINT_FIXTURES {
        let findings =
            analyze_source(src).unwrap_or_else(|e| panic!("fixture {name} failed to parse: {e:?}"));
        assert!(
            findings
                .iter()
                .any(|f| f.analysis == *analysis && f.severity == Severity::Lint),
            "fixture {name}: expected a Lint `{analysis}` finding, got {findings:#?}"
        );
        assert!(
            findings.iter().all(|f| !f.is_ub()),
            "fixture {name}: lint fixtures must not trip the UB gate, got {findings:#?}"
        );
    }
}

#[test]
fn clean_corpus_has_zero_findings() {
    for (name, src) in CLEAN_FIXTURES {
        let findings =
            analyze_source(src).unwrap_or_else(|e| panic!("fixture {name} failed to parse: {e:?}"));
        assert!(
            findings.is_empty(),
            "fixture {name}: expected no findings, got {findings:#?}"
        );
    }
}

#[test]
fn findings_carry_spans_and_functions() {
    for (name, _, src) in UB_FIXTURES {
        for f in analyze_source(src).unwrap() {
            assert!(
                f.span.hi > f.span.lo,
                "fixture {name}: finding {f:?} has an empty span"
            );
            assert!(!f.function.is_empty(), "fixture {name}: empty function");
        }
    }
}
