//! Behavioral contract of the campaign [`UbGate`] and the no-op lint.

use metamut_analyze::{alpha_equivalent, check_noop_mutant, first_new_ub, UbGate};

const PARENT: &str = "\
typedef int T;
int g = 3;
volatile int vg;
static T helper(T a, T b) { return a * b + g; }
int fold(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + helper(i, i + 1); }
    return acc;
}
int main(void) { vg = fold(4); return vg + g; }
";

#[test]
fn clean_mutant_passes() {
    let gate = UbGate::new();
    let mutant = PARENT.replace("a * b + g", "a + b * g");
    assert!(!gate.introduces_new_ub(Some(PARENT), &mutant));
}

#[test]
fn new_ub_is_gated_via_fast_path() {
    let gate = UbGate::new();
    let mutant = PARENT.replace("acc = acc + helper(i, i + 1);", "acc = acc / 0;");
    assert_ne!(mutant, PARENT);
    assert!(gate.introduces_new_ub(Some(PARENT), &mutant));
    assert_eq!(
        gate.fast_path(),
        1,
        "a single-function body edit must take the incremental path"
    );
    assert_eq!(gate.filtered(), 1);
}

#[test]
fn parent_ub_is_not_new() {
    let parent = "int f(void) { int x; return x; }\nint main(void) { return f(); }\n";
    // The mutant still has the parent's uninit read, but nothing new.
    let mutant = "int f(void) { int x; return x; }\nint main(void) { return f() + 1; }\n";
    let gate = UbGate::new();
    assert!(!gate.introduces_new_ub(Some(parent), mutant));
    // A *different* fresh UB in main still gates.
    let worse = "int f(void) { int x; return x; }\nint main(void) { return f() / 0; }\n";
    assert!(gate.introduces_new_ub(Some(parent), worse));
}

#[test]
fn unparseable_mutant_is_never_gated() {
    let gate = UbGate::new();
    let mutant = PARENT.replace("int fold(int n) {", "int fold(int n) { ) (");
    assert!(
        !gate.introduces_new_ub(Some(PARENT), &mutant),
        "the compiler must see and reject unparseable mutants itself"
    );
}

#[test]
fn parentless_candidate_gates_on_any_ub() {
    let gate = UbGate::new();
    assert!(gate.introduces_new_ub(None, "int f(void) { return 1 / 0; }\n"));
    assert!(!gate.introduces_new_ub(None, "int f(void) { return 1; }\n"));
}

#[test]
fn verdicts_are_cached() {
    let gate = UbGate::new();
    let mutant = PARENT.replace("return acc;", "return acc / 0;");
    assert!(gate.introduces_new_ub(Some(PARENT), &mutant));
    assert!(gate.introduces_new_ub(Some(PARENT), &mutant));
    assert_eq!(gate.checked(), 2);
    assert_eq!(gate.filtered(), 2);
    assert_eq!(
        gate.fast_path(),
        1,
        "second query must hit the verdict cache"
    );
}

#[test]
fn multi_chunk_edits_fall_back_to_full_analysis() {
    let gate = UbGate::new();
    let mutant = PARENT
        .replace("int g = 3;", "int g = 4;")
        .replace("return acc;", "return acc / 0;");
    assert!(gate.introduces_new_ub(Some(PARENT), &mutant));
    assert_eq!(gate.fast_path(), 0);
}

#[test]
fn multi_function_edits_take_the_fast_path() {
    // Two function bodies edited at once: the dirty set names both, each
    // mini-parses to a lone definition, and the verdicts union.
    let gate = UbGate::new();
    let clean = PARENT
        .replace("a * b + g", "a + b + g")
        .replace("int acc = 0;", "int acc = 1;");
    assert!(!gate.introduces_new_ub(Some(PARENT), &clean));
    assert_eq!(gate.fast_path(), 1);
    let dirty = PARENT
        .replace("a * b + g", "a + b + g")
        .replace("int acc = 0;", "int acc = 1 / 0;");
    assert!(gate.introduces_new_ub(Some(PARENT), &dirty));
    assert_eq!(gate.fast_path(), 2, "k-chunk edits must stay incremental");
    assert_eq!(gate.checked(), 2);
    assert_eq!(gate.filtered(), 1);
}

#[test]
fn shared_db_memoizes_chunk_analyses() {
    // The intraprocedural mode's per-chunk memo contract: a chunk's
    // verdict depends only on (parent, chunk text), so re-editing two
    // already-seen chunks together is pure cache hits.
    use std::sync::Arc;
    let db = Arc::new(metamut_query::QueryDb::new());
    let gate = UbGate::with_db(Arc::clone(&db)).with_interproc(false);
    let a = PARENT.replace("int acc = 0;", "int acc = 2;");
    let b = PARENT.replace("a * b + g", "a * b - g");
    // Mutant c re-edits both chunks already analyzed for a and b.
    let c = PARENT
        .replace("int acc = 0;", "int acc = 2;")
        .replace("a * b + g", "a * b - g");
    assert!(!gate.introduces_new_ub(Some(PARENT), &a));
    assert!(!gate.introduces_new_ub(Some(PARENT), &b));
    let memos = db.len();
    assert!(!gate.introduces_new_ub(Some(PARENT), &c));
    assert_eq!(db.len(), memos, "chunk re-analyses must be memo hits");
    assert_eq!(gate.fast_path(), 3);
    // Verdicts agree with a database-less gate.
    let plain = UbGate::new();
    assert!(!plain.introduces_new_ub(Some(PARENT), &c));
}

#[test]
fn interproc_memos_are_shared_across_gates() {
    // Summary and finding memos are content-addressed on the shared
    // database, so a second gate re-deciding the same mutant computes
    // nothing new.
    use std::sync::Arc;
    let db = Arc::new(metamut_query::QueryDb::new());
    let first = UbGate::with_db(Arc::clone(&db));
    let mutant = PARENT.replace("int acc = 0;", "int acc = 2;");
    assert!(!first.introduces_new_ub(Some(PARENT), &mutant));
    let memos = db.len();
    let second = UbGate::with_db(Arc::clone(&db));
    assert!(!second.introduces_new_ub(Some(PARENT), &mutant));
    assert_eq!(db.len(), memos, "second gate must be all memo hits");
    assert_eq!(second.summary_recomputes(), 0);
    assert!(second.summary_hits() > 0);
}

#[test]
fn single_decl_edit_resummarizes_only_scc_ancestors() {
    // Call chain a → b → c plus unrelated d. Editing c invalidates the
    // summaries of c and its transitive callers (b, a) — and nothing
    // else: d must be a memo hit.
    use std::sync::Arc;
    let parent = "int c(int x) { return x + 1; }\n\
                  int b(int x) { return c(x); }\n\
                  int a(int x) { return b(x); }\n\
                  int d(int x) { return x * 2; }\n";
    let db = Arc::new(metamut_query::QueryDb::new());
    let gate = UbGate::with_db(db);
    let mutant = parent.replace("return x + 1;", "return x + 2;");
    assert!(!gate.introduces_new_ub(Some(parent), &mutant));
    assert_eq!(gate.fast_path(), 1);
    assert_eq!(
        gate.summary_recomputes(),
        7,
        "4 parent summaries + exactly the edited function and its SCC ancestors (c, b, a)"
    );
    assert_eq!(gate.summary_hits(), 1, "d's summary must be a memo hit");
}

#[test]
fn interproc_gate_catches_cross_call_ub() {
    // Editing only the callee creates a division by zero at an *unedited*
    // call site — visible to the summary-driven gate, invisible to the
    // strictly intraprocedural one.
    let parent = "int zero(void) { return 1; }\n\
                  int f(void) { return 10 / zero(); }\n\
                  int main(void) { return f(); }\n";
    let mutant = parent.replace("return 1;", "return 0;");
    let gate = UbGate::new();
    assert!(gate.introduces_new_ub(Some(parent), &mutant));
    assert_eq!(gate.fast_path(), 1, "a lone body edit stays incremental");
    let intra = UbGate::new().with_interproc(false);
    assert!(
        !intra.introduces_new_ub(Some(parent), &mutant),
        "the intraprocedural gate cannot see cross-call UB"
    );
}

#[test]
fn spliced_and_full_interproc_paths_agree() {
    let parent = "int zero(void) { return 1; }\n\
                  int g = 1;\n\
                  int f(void) { return 10 / zero(); }\n";
    // Function-only edit: the splice path decides it.
    let spliced = parent.replace("return 1;", "return 0;");
    let g1 = UbGate::new();
    assert!(g1.introduces_new_ub(Some(parent), &spliced));
    assert_eq!(g1.fast_path(), 1);
    // Same edit plus a global edit: chunk alignment fails, full path —
    // and the verdict is the same.
    let full = spliced.replace("int g = 1;", "int g = 2;");
    let g2 = UbGate::new();
    assert!(g2.introduces_new_ub(Some(parent), &full));
    assert_eq!(g2.fast_path(), 0);
}

#[test]
fn first_new_ub_reports_the_offending_finding() {
    let mutant = PARENT.replace("return acc;", "return acc / 0;");
    let f = first_new_ub(PARENT, &mutant).expect("division by zero is new UB");
    assert_eq!(f.analysis, "div-by-zero");
    assert_eq!(f.function, "fold");
    assert!(first_new_ub(PARENT, PARENT).is_none());
}

#[test]
fn noop_mutants_are_detected() {
    // Pure whitespace / formatting change.
    let reformatted = PARENT.replace("int acc = 0;", "int  acc  =  0 ;");
    let f = check_noop_mutant(PARENT, &reformatted).expect("formatting is a no-op");
    assert_eq!(f.analysis, "noop-mutant");

    // Consistent renaming is a no-op too.
    let renamed = PARENT.replace("acc", "total");
    assert_eq!(alpha_equivalent(PARENT, &renamed), Some(true));

    // A real change is not.
    let changed = PARENT.replace("int acc = 0;", "int acc = 1;");
    assert!(check_noop_mutant(PARENT, &changed).is_none());

    // Inconsistent renaming (collision with another variable) is not.
    let collided = PARENT.replace("int acc = 0;", "int n = 0;");
    assert_ne!(alpha_equivalent(PARENT, &collided), Some(true));
}
