//! Property: analyzer verdicts are invariant under reprinting.
//!
//! A mutant reaches the analyzer as whatever text the rewriter produced,
//! while the reduction oracle and the repair loop re-analyze *reprinted*
//! forms of the same program. If the analyses keyed off concrete syntax
//! (spans, spacing, literal spelling), a program could gate in one place
//! and pass in another. So: for randomly edited programs that still
//! parse, `print_unit` → re-parse → re-analyze must produce the same
//! span-insensitive finding key set — and the same UB-key set, which is
//! what the gate and the oracle actually compare.

use metamut_analyze::{alpha_equivalent, analyze_source, ub_keys, Finding};
use metamut_lang::parse;
use metamut_lang::printer::print_unit;
use proptest::collection::vec;
use proptest::proptest;
use proptest::test_runner::ProptestConfig;
use std::collections::BTreeSet;

/// A seed dense in analyzer-relevant material: arrays, pointers, loops,
/// divisions, branches, and an uninitialized-then-assigned local.
const SEED: &str = "\
int g = 3;
int arr[8];
volatile int vg;
static int helper(int a, int b) { return a * b + g; }
int fold(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + helper(i, arr[i % 8]); }
    return acc;
}
int pick(int c) {
    int x;
    if (c) { x = 10 / (c + 1); } else { x = 0; }
    int *p = &x;
    return *p;
}
int main(void) { vg = fold(4); return pick(vg) + g; }
";

/// Edit fragments biased toward triggering (or almost triggering) each
/// analysis: zero divisors, constant indices, null pointers, bare locals.
const FRAGMENTS: &[&str] = &[
    "    int u; g = u;",
    "    g = g / 0;",
    "    int d = 0; g = g % d;",
    "    g = arr[9];",
    "    g = arr[7];",
    "    int *q = 0; g = *q;",
    "    while (1) { }",
    "    while (1) { vg = vg + 1; }",
    "    return 0;",
    "    if (0) { g = 99; }",
    "    int ok = 5; g = g / ok;",
    "",
];

/// Applies `(selector, line)` edits one after another, like the simcomp
/// equivalence suite: rewrite, insert, duplicate, or delete a line.
fn mutate(seed: &str, edits: &[(usize, usize)]) -> String {
    let mut lines: Vec<String> = seed.lines().map(str::to_string).collect();
    for &(selector, slot) in edits {
        if lines.is_empty() {
            break;
        }
        let line = slot % lines.len();
        let fragment = FRAGMENTS[selector % FRAGMENTS.len()];
        match (selector / FRAGMENTS.len()) % 4 {
            0 => lines[line] = fragment.to_string(),
            1 => lines.insert(line, fragment.to_string()),
            2 => {
                let dup = lines[line].clone();
                lines.insert(line, dup);
            }
            _ => {
                lines.remove(line);
            }
        }
    }
    lines.join("\n") + "\n"
}

fn key_set(findings: &[Finding]) -> BTreeSet<(String, String)> {
    findings
        .iter()
        .map(|f| {
            (
                f.analysis.to_string(),
                format!("{:?}:{}:{}", f.severity, f.function, f.message),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn verdicts_survive_reprinting(
        selectors in vec(0usize..10_000, 1..6),
        slots in vec(0usize..10_000, 1..6),
    ) {
        let edits: Vec<(usize, usize)> = selectors
            .iter()
            .copied()
            .zip(slots.iter().copied())
            .collect();
        let program = mutate(SEED, &edits);
        let Ok(findings) = analyze_source(&program) else {
            // Unparseable programs are the compiler's problem, not ours.
            return Ok(());
        };
        let ast = parse("<prop>", &program).expect("analyze_source parsed it");
        let reprinted = print_unit(&ast.unit);
        let refindings = analyze_source(&reprinted)
            .expect("a reprint of a parseable program must parse");
        assert_eq!(
            key_set(&findings),
            key_set(&refindings),
            "finding set changed under reprint:\n--- original ---\n{program}\n--- reprint ---\n{reprinted}"
        );
        assert_eq!(
            ub_keys(&findings),
            ub_keys(&refindings),
            "UB key set changed under reprint:\n{program}"
        );
        // And the reprint is, by construction, a no-op mutant.
        assert_eq!(alpha_equivalent(&program, &reprinted), Some(true));
    }
}
