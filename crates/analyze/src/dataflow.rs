//! A small forward worklist dataflow engine over [`crate::cfg::Cfg`].
//!
//! States are join-semilattice elements; unreachable nodes are represented
//! as `None` (bottom), which joins as the identity. The engine iterates to
//! a fixpoint and returns the *in*-state of every node, so analyses can do
//! a single reporting pass afterwards with final states — transfer
//! functions run many times during iteration and must not emit findings
//! themselves.

use crate::cfg::Cfg;
use std::collections::VecDeque;

/// A join-semilattice dataflow state.
pub trait Lattice: Clone + PartialEq {
    /// In-place least upper bound; returns whether `self` changed.
    fn join_with(&mut self, other: &Self) -> bool;
}

/// Runs a forward dataflow to fixpoint.
///
/// `entry_state` seeds the CFG entry node; `transfer(node, in_state)`
/// computes the node's out-state. Returns each node's final in-state
/// (`None` = the node is unreachable, no state ever flowed into it).
pub fn forward<L, F>(cfg: &Cfg<'_>, entry_state: L, mut transfer: F) -> Vec<Option<L>>
where
    L: Lattice,
    F: FnMut(usize, &L) -> L,
{
    let n = cfg.nodes.len();
    let mut in_states: Vec<Option<L>> = vec![None; n];
    in_states[cfg.entry] = Some(entry_state);

    let mut queued = vec![false; n];
    let mut work = VecDeque::with_capacity(n);
    work.push_back(cfg.entry);
    queued[cfg.entry] = true;

    // Monotone transfers over finite-height lattices converge; the budget
    // is a safety net against a non-monotone bug turning into a hang.
    let mut budget = n.saturating_mul(256).max(4096);
    while let Some(node) = work.pop_front() {
        queued[node] = false;
        if budget == 0 {
            break;
        }
        budget -= 1;
        let out = match &in_states[node] {
            Some(state) => transfer(node, state),
            None => continue,
        };
        for &succ in &cfg.nodes[node].succs {
            let changed = match &mut in_states[succ] {
                Some(existing) => existing.join_with(&out),
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                work.push_back(succ);
            }
        }
    }
    in_states
}
