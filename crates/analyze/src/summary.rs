//! Per-function interprocedural summaries.
//!
//! A [`FnSummary`] condenses one function definition into the facts a
//! *caller's* intraprocedural analysis can consume at a call site without
//! ever looking at the callee's body again:
//!
//! - **parameter demand** — which by-value parameters the callee reads
//!   (so passing an uninitialized local gains a call chain), and which
//!   pointee targets of non-escaping pointer parameters it definitely
//!   reads before writing (so `g(&x)` on uninitialized `x` is caught),
//! - **write/escape effects** — whether a pointer parameter's pointee is
//!   definitely written (so `init(&x); use(x);` stays clean) and whether
//!   the pointer escapes (stored, reassigned, leaked to an unknown
//!   callee), which disables all pointee facts,
//! - **conditional-UB probes** — "dividing by parameter N executes
//!   unconditionally", "parameter N is dereferenced", "parameter N
//!   indexes array `a` of size `s`": harmless per se, UB when a caller
//!   pins the argument to a bad constant,
//! - **return lattice** — the callee always returns the constant `c`, or
//!   always returns parameter `i` unchanged,
//! - **side effects** — whether the callee is observable (volatile
//!   access or a call to anything unknown) and whether it can return at
//!   all, which fixes the infinite-loop and unreachable-code analyses
//!   across calls.
//!
//! Summaries are computed bottom-up over [`crate::callgraph::CallGraph`]
//! SCCs; members of a cycle summarize against an environment that
//! excludes their own SCC (their mutual calls degrade to "unknown",
//! which every consumer treats maximally conservatively). Every fact
//! here errs toward *absence*: a missing fact can only suppress a
//! finding, never invent one, preserving the crate's zero-false-positive
//! discipline.

use crate::analyses::{summarize_function, GlobalInfo};
use crate::callgraph::CallGraph;
use crate::findings::ChainLink;
use metamut_lang::ast::{ExternalDecl, FunctionDef, TranslationUnit};
use metamut_lang::fxhash::FxHashMap;
use std::sync::Arc;

/// An interprocedural defect path: outermost hop first, each link's span
/// inside that link's function (see [`ChainLink`]).
pub type Chain = Vec<ChainLink>;

/// Condensed analysis facts of one function definition; see the module
/// docs for what each field licenses at a call site. All `Vec`s are
/// indexed by parameter position.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Parameter names (`None` when unnamed).
    pub params: Vec<Option<String>>,
    /// By-value parameter whose value is definitely read (chain to the
    /// first read). Used only to enrich caller findings with a chain —
    /// evaluating an uninitialized argument is already the caller's
    /// defect, summary or not.
    pub demands: Vec<Option<Chain>>,
    /// Non-escaping pointer parameter whose pointee is definitely read
    /// before any write of it (chain to the read).
    pub ptr_reads: Vec<Option<Chain>>,
    /// Non-escaping pointer parameter whose pointee is definitely
    /// written on every path that returns.
    pub ptr_writes: Vec<bool>,
    /// Whether the pointer parameter escapes the summary's view: `true`
    /// disables `ptr_reads`/`ptr_writes` for that position and forbids
    /// callers from keeping `&x` arguments tracked. Non-pointer and
    /// unnamed parameters are always `true`.
    pub ptr_escapes: Vec<bool>,
    /// The callee unconditionally divides/mods by this parameter's value.
    pub div_params: Vec<Option<Chain>>,
    /// The callee unconditionally dereferences this pointer parameter.
    pub deref_params: Vec<Option<Chain>>,
    /// The callee unconditionally indexes a fixed-size array with this
    /// parameter: `(array name, element count, chain)`.
    pub idx_params: Vec<Option<(String, i128, Chain)>>,
    /// Every return returns this constant (and the function cannot fall
    /// off the end).
    pub returns_const: Option<i128>,
    /// Every return returns this parameter's unmodified value.
    pub returns_param: Option<usize>,
    /// Whether the declared return type is a pointer (so a constant-zero
    /// return feeds the null-deref check at `*f()`).
    pub ret_is_pointer: bool,
    /// Whether executing the callee is observable: it touches something
    /// volatile or calls anything unknown (directly or transitively).
    pub observable: bool,
    /// Whether any path through the callee reaches its exit. `false`
    /// means calls to it never return (all paths loop forever or reach
    /// another no-return call).
    pub may_return: bool,
}

/// A name → summary environment for one translation unit. The empty
/// environment (`Summaries::default()`) makes every analysis exactly the
/// intraprocedural one: all callees are unknown.
#[derive(Debug, Clone, Default)]
pub struct Summaries {
    map: FxHashMap<String, Arc<FnSummary>>,
}

impl Summaries {
    /// Looks up the summary of a *uniquely defined* function.
    pub fn get(&self, name: &str) -> Option<&Arc<FnSummary>> {
        self.map.get(name)
    }

    /// Inserts (or replaces) a summary.
    pub fn insert(&mut self, name: String, summary: Arc<FnSummary>) {
        self.map.insert(name, summary);
    }

    /// Whether no function is summarized (the intraprocedural mode).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of summarized functions.
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

/// Summarizes every function definition of `unit`, bottom-up over the
/// call graph.
pub fn summarize_unit(unit: &TranslationUnit, globals: &GlobalInfo) -> Summaries {
    let funcs: Vec<&FunctionDef> = unit
        .decls
        .iter()
        .filter_map(|d| match d {
            ExternalDecl::Function(f) if f.body.is_some() => Some(f),
            _ => None,
        })
        .collect();
    summarize_functions(&funcs, globals)
}

/// Summarizes a pre-extracted function list (the gate's spliced fast
/// path reuses this over a mix of parent and mini-parsed declarations).
pub fn summarize_functions(funcs: &[&FunctionDef], globals: &GlobalInfo) -> Summaries {
    let cg = CallGraph::build(funcs);
    let mut env = Summaries::default();
    for scc in &cg.sccs {
        // Every member summarizes against the environment *excluding*
        // the SCC itself (mutual calls stay unknown), and insertion is
        // deferred until the whole SCC is done — the result must not
        // depend on member iteration order.
        let computed: Vec<(usize, FnSummary)> = scc
            .iter()
            .map(|&i| (i, summarize_function(funcs[i], globals, &env)))
            .collect();
        for (i, s) in computed {
            // Duplicate-named definitions stay out: a call to such a
            // name must resolve to "unknown".
            if cg.by_name.get(funcs[i].name.as_str()) == Some(&i) {
                env.insert(funcs[i].name.clone(), Arc::new(s));
            }
        }
    }
    env
}
