//! α-equivalence of programs: the no-op-mutant lint.
//!
//! Two programs are α-equivalent when their *reprinted* ASTs differ at
//! most by a consistent renaming of identifiers. The check canonicalizes
//! each program — parse, pretty-print (which normalizes whitespace,
//! comments, literal spellings, and redundant parentheses dropped by the
//! printer), re-lex, and replace every identifier with `vN` in order of
//! first occurrence — and compares the canonical token streams.
//! Canonical-form equality holds exactly when a consistent identifier
//! bijection exists, so this is α-equivalence on the token level (more
//! conservative than scope-aware renaming: a mutant that renames a
//! variable into collision with an unrelated member name is *not*
//! reported as a no-op).

use metamut_lang::fxhash::FxHashMap;
use metamut_lang::lexer::lex;
use metamut_lang::printer::print_unit;
use metamut_lang::token::TokenKind;
use metamut_lang::{parse, Span};

use crate::findings::{Finding, Severity};

/// One canonical token: its kind plus its canonicalized spelling.
type CanonTok = (TokenKind, String);

fn canonical_tokens(src: &str) -> Option<Vec<CanonTok>> {
    let ast = parse("<alpha>", src).ok()?;
    let printed = print_unit(&ast.unit);
    let tokens = lex(&printed).ok()?;
    let mut rename: FxHashMap<String, String> = FxHashMap::default();
    let mut out = Vec::with_capacity(tokens.len());
    for t in tokens {
        if t.kind == TokenKind::Eof {
            break;
        }
        let text = &printed[t.span.lo as usize..t.span.hi as usize];
        let spelling = if t.kind == TokenKind::Ident {
            let next = rename.len();
            rename
                .entry(text.to_owned())
                .or_insert_with(|| format!("v{next}"))
                .clone()
        } else {
            text.to_owned()
        };
        out.push((t.kind, spelling));
    }
    Some(out)
}

/// Whether `a` and `b` are α-equivalent after reprinting. Returns `None`
/// when either side fails to parse (the question is then meaningless).
pub fn alpha_equivalent(a: &str, b: &str) -> Option<bool> {
    Some(canonical_tokens(a)? == canonical_tokens(b)?)
}

/// The no-op-mutant lint: a [`Severity::Lint`] finding when `mutant` is
/// α-equivalent to `parent` — the mutation spent a compile on a program
/// the compiler has effectively already seen.
pub fn check_noop_mutant(parent: &str, mutant: &str) -> Option<Finding> {
    if alpha_equivalent(parent, mutant)? {
        Some(Finding {
            analysis: "noop-mutant",
            severity: Severity::Lint,
            function: "<unit>".to_owned(),
            span: Span::new(0, 0),
            message: "mutant is alpha-equivalent to its parent: the rewrite is a no-op".to_owned(),
            chain: Vec::new(),
        })
    } else {
        None
    }
}
