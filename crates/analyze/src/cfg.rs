//! Control-flow graph construction over `metamut-lang` function bodies.
//!
//! The CFG is built per [`FunctionDef`] directly from the statement AST —
//! no sema required — and is the substrate for the worklist dataflow
//! engine in [`crate::dataflow`]. Nodes are individual actions (one
//! declarator, one evaluated expression, one branch condition, one
//! return); compound statements contribute no nodes of their own.
//!
//! Branches on *syntactically constant* conditions are pruned at build
//! time: `if (0) { ... }` produces the then-block's nodes with no
//! incoming edge from the branch, so reachability analysis sees dead code
//! without any dataflow.

use metamut_lang::ast::{
    BinaryOp, BlockItem, Expr, ExprKind, ForInit, FunctionDef, Stmt, StmtKind, UnaryOp, VarDecl,
};
use metamut_lang::Span;
use std::collections::HashMap;

/// What a CFG node does when control reaches it.
#[derive(Debug, Clone, Copy)]
pub enum Action<'a> {
    /// Function entry: parameters become initialized here.
    Entry,
    /// Function exit (explicit or implicit return).
    Exit,
    /// One declarator of a declaration statement.
    Decl(&'a VarDecl),
    /// An evaluated expression (expression statement, `for` init/step,
    /// `switch` scrutinee).
    Eval(&'a Expr),
    /// A branch condition (`if`/`while`/`do`/`for`); successors are the
    /// surviving arms.
    Branch(&'a Expr),
    /// `return`, with its optional value; always flows to [`Action::Exit`].
    Return(Option<&'a Expr>),
    /// An unconditional transfer: `goto`, `break`, or `continue`.
    Jump,
    /// A structural merge point (label, case arm, loop entry).
    Join,
}

impl Action<'_> {
    /// Whether this node corresponds to source the programmer wrote (and
    /// is therefore worth reporting as unreachable).
    pub fn is_source(&self) -> bool {
        matches!(
            self,
            Action::Decl(_) | Action::Eval(_) | Action::Branch(_) | Action::Return(_)
        )
    }
}

/// One node of the CFG.
#[derive(Debug)]
pub struct Node<'a> {
    /// The node's action.
    pub action: Action<'a>,
    /// Source span the action covers (empty for synthetic nodes).
    pub span: Span,
    /// Successor node indices.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// All nodes; `entry` and `exit` are always present.
    pub nodes: Vec<Node<'a>>,
    /// Index of the [`Action::Entry`] node.
    pub entry: usize,
    /// Index of the [`Action::Exit`] node.
    pub exit: usize,
}

impl<'a> Cfg<'a> {
    /// Builds the CFG of `fun`'s body. Returns `None` for prototypes.
    pub fn build(fun: &'a FunctionDef) -> Option<Cfg<'a>> {
        let body = fun.body.as_ref()?;
        let mut b = Builder {
            nodes: vec![
                Node {
                    action: Action::Entry,
                    span: fun.name_span,
                    succs: Vec::new(),
                },
                Node {
                    action: Action::Exit,
                    span: Span::new(fun.span.hi, fun.span.hi),
                    succs: Vec::new(),
                },
            ],
            continues: Vec::new(),
            breakables: Vec::new(),
            switches: Vec::new(),
            labels: HashMap::new(),
            gotos: Vec::new(),
        };
        let open = b.stmt(body, vec![0]);
        // Falling off the end of the function is an implicit return.
        b.connect(&open, 1);
        for (name, from) in std::mem::take(&mut b.gotos) {
            if let Some(&target) = b.labels.get(&name) {
                b.nodes[from].succs.push(target);
            }
        }
        Some(Cfg {
            nodes: b.nodes,
            entry: 0,
            exit: 1,
        })
    }

    /// The set of nodes reachable from `entry`, as a bitmap.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(n) = stack.pop() {
            for &s in &self.nodes[n].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

/// Evaluates an expression that contains no variable references to a
/// constant, if possible. Used to prune constant branches at CFG build
/// time and to recognize `while (1)`-style loop conditions; the
/// environment-aware evaluator lives in [`crate::analyses`].
pub fn syntactic_const(e: &Expr) -> Option<i128> {
    match &e.kind {
        ExprKind::IntLit { value, .. } => Some(*value),
        ExprKind::CharLit { value } => Some(*value as i128),
        ExprKind::Paren(inner) => syntactic_const(inner),
        ExprKind::Unary { op, operand } => {
            let v = syntactic_const(operand)?;
            match op {
                UnaryOp::Plus => Some(v),
                UnaryOp::Minus => v.checked_neg(),
                UnaryOp::Not => Some((v == 0) as i128),
                UnaryOp::BitNot => Some(!v),
                _ => None,
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let l = syntactic_const(lhs)?;
            let r = syntactic_const(rhs)?;
            eval_binary(*op, l, r)
        }
        ExprKind::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            let c = syntactic_const(cond)?;
            if c != 0 {
                syntactic_const(then_expr)
            } else {
                syntactic_const(else_expr)
            }
        }
        _ => None,
    }
}

/// Constant-folds one binary operation, refusing anything that would
/// itself be UB (division by zero, shift overflow).
pub fn eval_binary(op: BinaryOp, l: i128, r: i128) -> Option<i128> {
    match op {
        BinaryOp::Add => l.checked_add(r),
        BinaryOp::Sub => l.checked_sub(r),
        BinaryOp::Mul => l.checked_mul(r),
        BinaryOp::Div => l.checked_div(r),
        BinaryOp::Rem => l.checked_rem(r),
        BinaryOp::Shl => u32::try_from(r).ok().and_then(|s| l.checked_shl(s)),
        BinaryOp::Shr => u32::try_from(r).ok().and_then(|s| l.checked_shr(s)),
        BinaryOp::BitAnd => Some(l & r),
        BinaryOp::BitOr => Some(l | r),
        BinaryOp::BitXor => Some(l ^ r),
        BinaryOp::Lt => Some((l < r) as i128),
        BinaryOp::Gt => Some((l > r) as i128),
        BinaryOp::Le => Some((l <= r) as i128),
        BinaryOp::Ge => Some((l >= r) as i128),
        BinaryOp::Eq => Some((l == r) as i128),
        BinaryOp::Ne => Some((l != r) as i128),
        BinaryOp::LogAnd => Some((l != 0 && r != 0) as i128),
        BinaryOp::LogOr => Some((l != 0 || r != 0) as i128),
    }
}

/// What the innermost `break` escapes from. Loops and switches push onto
/// one shared stack so their interleaving is tracked for free; the popped
/// entry's collected `break` nodes join the construct's exit frontier.
enum Breakable {
    Loop(Vec<usize>),
    Switch(Vec<usize>),
}

impl Breakable {
    fn ends(&mut self) -> &mut Vec<usize> {
        match self {
            Breakable::Loop(v) | Breakable::Switch(v) => v,
        }
    }
}

/// Dispatch targets of an open `switch` body.
struct SwitchCtx {
    cases: Vec<usize>,
    default: Option<usize>,
}

struct Builder<'a> {
    nodes: Vec<Node<'a>>,
    /// `continue` targets, innermost last (loops only).
    continues: Vec<usize>,
    /// `break` scopes, innermost last (loops and switches interleaved).
    breakables: Vec<Breakable>,
    /// Open `switch` contexts, innermost last.
    switches: Vec<SwitchCtx>,
    labels: HashMap<String, usize>,
    gotos: Vec<(String, usize)>,
}

impl<'a> Builder<'a> {
    fn node(&mut self, action: Action<'a>, span: Span) -> usize {
        self.nodes.push(Node {
            action,
            span,
            succs: Vec::new(),
        });
        self.nodes.len() - 1
    }

    fn connect(&mut self, preds: &[usize], to: usize) {
        for &p in preds {
            self.nodes[p].succs.push(to);
        }
    }

    /// Appends a node fed by `frontier`, returning the new frontier.
    fn chain(&mut self, frontier: Vec<usize>, action: Action<'a>, span: Span) -> Vec<usize> {
        let n = self.node(action, span);
        self.connect(&frontier, n);
        vec![n]
    }

    fn decl_group(&mut self, vars: &'a [VarDecl], mut frontier: Vec<usize>) -> Vec<usize> {
        for v in vars {
            frontier = self.chain(frontier, Action::Decl(v), v.span);
        }
        frontier
    }

    fn pop_breakable(&mut self) -> Vec<usize> {
        match self.breakables.pop() {
            Some(mut b) => std::mem::take(b.ends()),
            None => Vec::new(),
        }
    }

    fn stmt(&mut self, s: &'a Stmt, frontier: Vec<usize>) -> Vec<usize> {
        match &s.kind {
            StmtKind::Compound(items) => {
                let mut f = frontier;
                for item in items {
                    f = match item {
                        BlockItem::Decl(group) => self.decl_group(&group.vars, f),
                        BlockItem::Stmt(st) => self.stmt(st, f),
                    };
                }
                f
            }
            StmtKind::Expr(e) => self.chain(frontier, Action::Eval(e), s.span),
            StmtKind::Null => frontier,
            StmtKind::If {
                cond,
                then_stmt,
                else_stmt,
            } => {
                let branch = self.node(Action::Branch(cond), cond.span);
                self.connect(&frontier, branch);
                match syntactic_const(cond) {
                    Some(0) => {
                        // Dead arm: build it unconnected so reachability
                        // flags it, discard its ends.
                        self.stmt(then_stmt, Vec::new());
                        match else_stmt {
                            Some(e) => self.stmt(e, vec![branch]),
                            None => vec![branch],
                        }
                    }
                    Some(_) => {
                        if let Some(e) = else_stmt {
                            self.stmt(e, Vec::new());
                        }
                        self.stmt(then_stmt, vec![branch])
                    }
                    None => {
                        let mut out = self.stmt(then_stmt, vec![branch]);
                        match else_stmt {
                            Some(e) => out.extend(self.stmt(e, vec![branch])),
                            None => out.push(branch),
                        }
                        out
                    }
                }
            }
            StmtKind::While { cond, body } => {
                let head = self.node(Action::Branch(cond), cond.span);
                self.connect(&frontier, head);
                self.continues.push(head);
                self.breakables.push(Breakable::Loop(Vec::new()));
                let konst = syntactic_const(cond);
                let body_in = if konst == Some(0) {
                    Vec::new()
                } else {
                    vec![head]
                };
                let body_out = self.stmt(body, body_in);
                self.connect(&body_out, head);
                self.continues.pop();
                let mut out = self.pop_breakable();
                if !matches!(konst, Some(v) if v != 0) {
                    out.push(head);
                }
                out
            }
            StmtKind::DoWhile { body, cond } => {
                let entry = self.node(Action::Join, s.span);
                self.connect(&frontier, entry);
                let tail = self.node(Action::Branch(cond), cond.span);
                self.continues.push(tail);
                self.breakables.push(Breakable::Loop(Vec::new()));
                let body_out = self.stmt(body, vec![entry]);
                self.connect(&body_out, tail);
                let konst = syntactic_const(cond);
                if konst != Some(0) {
                    self.nodes[tail].succs.push(entry);
                }
                self.continues.pop();
                let mut out = self.pop_breakable();
                if !matches!(konst, Some(v) if v != 0) {
                    out.push(tail);
                }
                out
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut f = frontier;
                if let Some(init) = init {
                    f = match init.as_ref() {
                        ForInit::Decl(group) => self.decl_group(&group.vars, f),
                        ForInit::Expr(e) => self.chain(f, Action::Eval(e), e.span),
                    };
                }
                let konst = cond.as_ref().map_or(Some(1), syntactic_const);
                let head = match cond {
                    Some(c) => self.node(Action::Branch(c), c.span),
                    None => self.node(Action::Join, s.span),
                };
                self.connect(&f, head);
                let back = match step {
                    Some(e) => {
                        let n = self.node(Action::Eval(e), e.span);
                        self.nodes[n].succs.push(head);
                        n
                    }
                    None => head,
                };
                self.continues.push(back);
                self.breakables.push(Breakable::Loop(Vec::new()));
                let body_in = if konst == Some(0) {
                    Vec::new()
                } else {
                    vec![head]
                };
                let body_out = self.stmt(body, body_in);
                self.connect(&body_out, back);
                self.continues.pop();
                let mut out = self.pop_breakable();
                if !matches!(konst, Some(v) if v != 0) && cond.is_some() {
                    out.push(head);
                }
                out
            }
            StmtKind::Switch { cond, body } => {
                let head = self.node(Action::Eval(cond), cond.span);
                self.connect(&frontier, head);
                self.switches.push(SwitchCtx {
                    cases: Vec::new(),
                    default: None,
                });
                self.breakables.push(Breakable::Switch(Vec::new()));
                // Statements before the first `case` are unreachable per C.
                let body_out = self.stmt(body, Vec::new());
                let breaks = self.pop_breakable();
                let ctx = self.switches.pop().expect("switch context");
                for &c in &ctx.cases {
                    self.nodes[head].succs.push(c);
                }
                let mut out = body_out;
                match ctx.default {
                    Some(d) => self.nodes[head].succs.push(d),
                    None => out.push(head),
                }
                out.extend(breaks);
                out
            }
            StmtKind::Case { stmt, .. } => {
                let arm = self.node(Action::Join, s.span);
                self.connect(&frontier, arm);
                if let Some(ctx) = self.switches.last_mut() {
                    ctx.cases.push(arm);
                }
                self.stmt(stmt, vec![arm])
            }
            StmtKind::Default { stmt } => {
                let arm = self.node(Action::Join, s.span);
                self.connect(&frontier, arm);
                if let Some(ctx) = self.switches.last_mut() {
                    ctx.default = Some(arm);
                }
                self.stmt(stmt, vec![arm])
            }
            StmtKind::Label { name, stmt, .. } => {
                let target = self.node(Action::Join, s.span);
                self.connect(&frontier, target);
                self.labels.insert(name.clone(), target);
                self.stmt(stmt, vec![target])
            }
            StmtKind::Goto { name, .. } => {
                let n = self.chain(frontier, Action::Jump, s.span);
                self.gotos.push((name.clone(), n[0]));
                Vec::new()
            }
            StmtKind::Break => {
                let n = self.chain(frontier, Action::Jump, s.span);
                if let Some(b) = self.breakables.last_mut() {
                    b.ends().push(n[0]);
                }
                Vec::new()
            }
            StmtKind::Continue => {
                let n = self.chain(frontier, Action::Jump, s.span);
                if let Some(&target) = self.continues.last() {
                    self.nodes[n[0]].succs.push(target);
                }
                Vec::new()
            }
            StmtKind::Return(e) => {
                let n = self.chain(frontier, Action::Return(e.as_ref()), s.span);
                self.nodes[n[0]].succs.push(1);
                Vec::new()
            }
        }
    }
}
