//! Fixture corpus shared by the crate's tests and the `exp_analyze`
//! bench gate: programs with one seeded UB defect each (the analyzer
//! must flag 100% of them with the expected analysis) and known-clean
//! programs (the analyzer must stay silent on every one).

/// Programs with exactly one seeded `Ub`-severity defect:
/// `(name, expected_analysis, source)`.
pub const UB_FIXTURES: &[(&str, &str, &str)] = &[
    (
        "uninit-simple",
        "uninit-read",
        "int f(void) { int x; return x + 1; }\n",
    ),
    (
        "uninit-expr",
        "uninit-read",
        "int f(void) { int a; int b = a * 2; return b; }\n",
    ),
    (
        "uninit-pointer",
        "uninit-read",
        "int f(void) { int *p; return *p; }\n",
    ),
    (
        "uninit-one-branch",
        "uninit-read",
        "int f(int c) { int x; if (c) { return x; } return 0; }\n",
    ),
    (
        "div-zero-literal",
        "div-by-zero",
        "int f(int a) { return a / 0; }\n",
    ),
    (
        "div-zero-var",
        "div-by-zero",
        "int f(int a) { int d = 0; return a / d; }\n",
    ),
    (
        "mod-zero-folded",
        "div-by-zero",
        "int f(int a) { int m = 5 - 5; return a % m; }\n",
    ),
    (
        "oob-read",
        "oob-index",
        "int f(void) { int a[4]; a[1] = 2; return a[7]; }\n",
    ),
    (
        "oob-global",
        "oob-index",
        "int g[3];\nint f(void) { return g[3]; }\n",
    ),
    (
        "oob-write",
        "oob-index",
        "int f(void) { int a[2]; int i = 5; a[i] = 1; return 0; }\n",
    ),
    (
        "null-deref-read",
        "null-deref",
        "int f(void) { int *p = 0; return *p; }\n",
    ),
    (
        "null-deref-arrow",
        "null-deref",
        "struct S { int v; };\nint f(void) { struct S *p = 0; return p->v; }\n",
    ),
    (
        "null-deref-write",
        "null-deref",
        "void f(void) { int *p = 0; *p = 3; }\n",
    ),
    (
        "null-deref-index",
        "null-deref",
        "int f(void) { int *p = 0; return p[2]; }\n",
    ),
    (
        "infinite-while",
        "infinite-loop",
        "int f(void) { int x = 0; while (1) { x = x + 1; } return x; }\n",
    ),
    (
        "infinite-for",
        "infinite-loop",
        "int f(void) { for (;;) { } return 1; }\n",
    ),
];

/// Programs with a `Lint`-severity defect: `(name, expected_analysis,
/// source)`. These must be flagged, but must *not* gate a mutant.
pub const LINT_FIXTURES: &[(&str, &str, &str)] = &[
    (
        "maybe-uninit",
        "possible-uninit-read",
        "int f(int c) { int x; if (c) { x = 1; } return x; }\n",
    ),
    (
        "maybe-uninit-loop",
        "possible-uninit-read",
        "int f(int n) { int s; for (int i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n",
    ),
    (
        "unreachable-after-return",
        "unreachable-code",
        "int f(void) { return 1; return 2; }\n",
    ),
    (
        "unreachable-if-zero",
        "unreachable-code",
        "int f(void) { if (0) { return 5; } return 1; }\n",
    ),
];

/// Known-good programs: the analyzer must report **zero** findings of any
/// severity on every one of these. `(name, source)`.
pub const CLEAN_FIXTURES: &[(&str, &str)] = &[
    ("add", "int add(int a, int b) { return a + b; }\n"),
    (
        "locals",
        "int f(void) { int x = 3; int y = x * 2; return x + y; }\n",
    ),
    (
        "for-sum",
        "int sum(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n",
    ),
    (
        "while-true-break",
        "int f(void) { int i = 0; while (1) { i = i + 1; if (i > 10) { break; } } return i; }\n",
    ),
    (
        "guarded-div",
        "int divide(int a, int b) { if (b != 0) { return a / b; } return 0; }\n",
    ),
    (
        "reassigned-divisor",
        "int f(void) { int d = 0; d = 7; return 10 / d; }\n",
    ),
    (
        "pointer-to-local",
        "int f(void) { int x = 5; int *p = &x; return *p; }\n",
    ),
    (
        "array-walk",
        "int f(void) { int a[4]; int t = 0; for (int i = 0; i < 4; i = i + 1) { a[i] = i; t = t + a[i]; } return t; }\n",
    ),
    (
        "switch-cases",
        "int f(int c) { int r = 0; switch (c) { case 1: r = 1; break; case 2: r = 2; break; default: r = 3; } return r; }\n",
    ),
    (
        "do-while",
        "int f(void) { int i = 0; do { i = i + 1; } while (i < 3); return i; }\n",
    ),
    (
        "goto-loop",
        "int f(int n) { int s = 0; loop: s = s + n; n = n - 1; if (n > 0) { goto loop; } return s; }\n",
    ),
    (
        "struct-members",
        "struct P { int x; int y; };\nint f(void) { struct P p; p.x = 1; p.y = 2; return p.x + p.y; }\n",
    ),
    (
        "typedef-use",
        "typedef int i32;\ni32 twice(i32 v) { return v * 2; }\n",
    ),
    (
        "string-walk",
        "int len(void) { char *s = \"hi\"; int n = 0; while (s[n] != 0) { n = n + 1; } return n; }\n",
    ),
    (
        "guarded-null",
        "int f(int *p) { if (p) { return *p; } return -1; }\n",
    ),
    (
        "volatile-spin",
        "volatile int ready;\nint f(void) { while (ready == 0) { } return ready; }\n",
    ),
];
