//! Fixture corpus shared by the crate's tests and the `exp_analyze` /
//! `exp_interproc` bench gates: programs with one seeded UB defect each
//! (the analyzer must flag 100% of them with the expected analysis) and
//! known-clean programs (the analyzer must stay silent on every one).
//! The `INTERPROC_*` sets seed their defect *across a call boundary*, so
//! every hit requires a function summary — the intraprocedural analyzer
//! misses all of them.

/// Programs with exactly one seeded `Ub`-severity defect:
/// `(name, expected_analysis, source)`.
pub const UB_FIXTURES: &[(&str, &str, &str)] = &[
    (
        "uninit-simple",
        "uninit-read",
        "int f(void) { int x; return x + 1; }\n",
    ),
    (
        "uninit-expr",
        "uninit-read",
        "int f(void) { int a; int b = a * 2; return b; }\n",
    ),
    (
        "uninit-pointer",
        "uninit-read",
        "int f(void) { int *p; return *p; }\n",
    ),
    (
        "uninit-one-branch",
        "uninit-read",
        "int f(int c) { int x; if (c) { return x; } return 0; }\n",
    ),
    (
        "div-zero-literal",
        "div-by-zero",
        "int f(int a) { return a / 0; }\n",
    ),
    (
        "div-zero-var",
        "div-by-zero",
        "int f(int a) { int d = 0; return a / d; }\n",
    ),
    (
        "mod-zero-folded",
        "div-by-zero",
        "int f(int a) { int m = 5 - 5; return a % m; }\n",
    ),
    (
        "oob-read",
        "oob-index",
        "int f(void) { int a[4]; a[1] = 2; return a[7]; }\n",
    ),
    (
        "oob-global",
        "oob-index",
        "int g[3];\nint f(void) { return g[3]; }\n",
    ),
    (
        "oob-write",
        "oob-index",
        "int f(void) { int a[2]; int i = 5; a[i] = 1; return 0; }\n",
    ),
    (
        "null-deref-read",
        "null-deref",
        "int f(void) { int *p = 0; return *p; }\n",
    ),
    (
        "null-deref-arrow",
        "null-deref",
        "struct S { int v; };\nint f(void) { struct S *p = 0; return p->v; }\n",
    ),
    (
        "null-deref-write",
        "null-deref",
        "void f(void) { int *p = 0; *p = 3; }\n",
    ),
    (
        "null-deref-index",
        "null-deref",
        "int f(void) { int *p = 0; return p[2]; }\n",
    ),
    (
        "infinite-while",
        "infinite-loop",
        "int f(void) { int x = 0; while (1) { x = x + 1; } return x; }\n",
    ),
    (
        "infinite-for",
        "infinite-loop",
        "int f(void) { for (;;) { } return 1; }\n",
    ),
];

/// Programs with a `Lint`-severity defect: `(name, expected_analysis,
/// source)`. These must be flagged, but must *not* gate a mutant.
pub const LINT_FIXTURES: &[(&str, &str, &str)] = &[
    (
        "maybe-uninit",
        "possible-uninit-read",
        "int f(int c) { int x; if (c) { x = 1; } return x; }\n",
    ),
    (
        "maybe-uninit-loop",
        "possible-uninit-read",
        "int f(int n) { int s; for (int i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n",
    ),
    (
        "unreachable-after-return",
        "unreachable-code",
        "int f(void) { return 1; return 2; }\n",
    ),
    (
        "unreachable-if-zero",
        "unreachable-code",
        "int f(void) { if (0) { return 5; } return 1; }\n",
    ),
];

/// Known-good programs: the analyzer must report **zero** findings of any
/// severity on every one of these. `(name, source)`.
pub const CLEAN_FIXTURES: &[(&str, &str)] = &[
    ("add", "int add(int a, int b) { return a + b; }\n"),
    (
        "locals",
        "int f(void) { int x = 3; int y = x * 2; return x + y; }\n",
    ),
    (
        "for-sum",
        "int sum(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n",
    ),
    (
        "while-true-break",
        "int f(void) { int i = 0; while (1) { i = i + 1; if (i > 10) { break; } } return i; }\n",
    ),
    (
        "guarded-div",
        "int divide(int a, int b) { if (b != 0) { return a / b; } return 0; }\n",
    ),
    (
        "reassigned-divisor",
        "int f(void) { int d = 0; d = 7; return 10 / d; }\n",
    ),
    (
        "pointer-to-local",
        "int f(void) { int x = 5; int *p = &x; return *p; }\n",
    ),
    (
        "array-walk",
        "int f(void) { int a[4]; int t = 0; for (int i = 0; i < 4; i = i + 1) { a[i] = i; t = t + a[i]; } return t; }\n",
    ),
    (
        "switch-cases",
        "int f(int c) { int r = 0; switch (c) { case 1: r = 1; break; case 2: r = 2; break; default: r = 3; } return r; }\n",
    ),
    (
        "do-while",
        "int f(void) { int i = 0; do { i = i + 1; } while (i < 3); return i; }\n",
    ),
    (
        "goto-loop",
        "int f(int n) { int s = 0; loop: s = s + n; n = n - 1; if (n > 0) { goto loop; } return s; }\n",
    ),
    (
        "struct-members",
        "struct P { int x; int y; };\nint f(void) { struct P p; p.x = 1; p.y = 2; return p.x + p.y; }\n",
    ),
    (
        "typedef-use",
        "typedef int i32;\ni32 twice(i32 v) { return v * 2; }\n",
    ),
    (
        "string-walk",
        "int len(void) { char *s = \"hi\"; int n = 0; while (s[n] != 0) { n = n + 1; } return n; }\n",
    ),
    (
        "guarded-null",
        "int f(int *p) { if (p) { return *p; } return -1; }\n",
    ),
    (
        "volatile-spin",
        "volatile int ready;\nint f(void) { while (ready == 0) { } return ready; }\n",
    ),
];

/// Programs whose single seeded `Ub` defect only manifests **across a
/// call boundary**: `(name, expected_analysis, source)`. The
/// intraprocedural analyzer flags none of these; the summary-driven one
/// must flag all of them.
pub const INTERPROC_UB_FIXTURES: &[(&str, &str, &str)] = &[
    (
        "callee-div-param",
        "div-by-zero",
        "int div3(int a, int b) { return a / b; }\n\
         int f(int x) { return div3(x, 0); }\n",
    ),
    (
        "callee-div-chain",
        "div-by-zero",
        "int inner(int d) { return 10 / d; }\n\
         int mid(int d) { return inner(d); }\n\
         int f(void) { return mid(0); }\n",
    ),
    (
        "callee-mod-param",
        "div-by-zero",
        "int rem2(int a, int m) { return a % m; }\n\
         int f(int a) { return rem2(a, 0); }\n",
    ),
    (
        "ret-zero-div",
        "div-by-zero",
        "int zero(void) { return 0; }\n\
         int f(int a) { return a / zero(); }\n",
    ),
    (
        "ret-param-div",
        "div-by-zero",
        "int id(int v) { return v; }\n\
         int f(int a) { int d = id(0); return a / d; }\n",
    ),
    (
        "callee-idx-global",
        "oob-index",
        "int tab[4];\n\
         int get(int i) { return tab[i]; }\n\
         int f(void) { return get(9); }\n",
    ),
    (
        "callee-idx-local",
        "oob-index",
        "int get(int i) { int a[3]; a[0] = 1; return a[i]; }\n\
         int f(void) { return get(5); }\n",
    ),
    (
        "callee-idx-write",
        "oob-index",
        "int a2[2];\n\
         void put(int i) { a2[i] = 1; }\n\
         void f(void) { put(4); }\n",
    ),
    (
        "ret-const-oob",
        "oob-index",
        "int idx9(void) { return 9; }\n\
         int tab2[4];\n\
         int f(void) { return tab2[idx9()]; }\n",
    ),
    (
        "ret-null-deref",
        "null-deref",
        "int *nil(void) { return 0; }\n\
         int f(void) { return *nil(); }\n",
    ),
    (
        "ret-null-var-deref",
        "null-deref",
        "int *nil(void) { return 0; }\n\
         int f(void) { int *p = nil(); return *p; }\n",
    ),
    (
        "callee-deref-param",
        "null-deref",
        "int load(int *p) { return *p; }\n\
         int f(void) { return load(0); }\n",
    ),
    (
        "callee-deref-chain",
        "null-deref",
        "int deep(int *p) { return *p; }\n\
         int shallow(int *q) { return deep(q); }\n\
         int f(void) { return shallow(0); }\n",
    ),
    (
        "uninit-ptr-chain",
        "uninit-read",
        "int deep3(int *p) { return *p; }\n\
         int mid3(int *p) { return deep3(p); }\n\
         int f(void) { int x; return mid3(&x); }\n",
    ),
    (
        "uninit-addr-read",
        "uninit-read",
        "int peek(int *p) { return *p; }\n\
         int f(void) { int x; return peek(&x); }\n",
    ),
    (
        "uninit-rmw-callee",
        "uninit-read",
        "void acc(int *p) { *p = *p + 1; }\n\
         int f(void) { int x; acc(&x); return x; }\n",
    ),
    (
        "silent-callee-loop",
        "infinite-loop",
        "void nop(void) { }\n\
         int f(void) { int x = 0; while (1) { nop(); x = x + 1; } return x; }\n",
    ),
    (
        "silent-chain-loop",
        "infinite-loop",
        "void inner2(void) { }\n\
         void outer2(void) { inner2(); }\n\
         void f(void) { for (;;) { outer2(); } }\n",
    ),
];

/// Known-good programs exercising the same interprocedural machinery —
/// summaries must *suppress* correctly too: `(name, source)`. Zero
/// findings of any severity expected on every one.
pub const INTERPROC_CLEAN_FIXTURES: &[(&str, &str)] = &[
    (
        "writes-param-clean",
        "void init(int *p) { *p = 3; }\n\
         int f(void) { int x; init(&x); return x; }\n",
    ),
    (
        "rmw-initialized-clean",
        "void acc(int *p) { *p = *p + 1; }\n\
         int f(void) { int x = 0; acc(&x); return x; }\n",
    ),
    (
        "guarded-callee-div",
        "int div0(int a, int b) { if (b != 0) { return a / b; } return 0; }\n\
         int f(int a) { return div0(a, 0); }\n",
    ),
    (
        "observable-callee-loop",
        "volatile int tick;\n\
         void beep(void) { tick = tick + 1; }\n\
         void f(void) { while (1) { beep(); } }\n",
    ),
    (
        "prototype-callee-loop",
        "void ext(void);\n\
         void f(void) { while (1) { ext(); } }\n",
    ),
    (
        "recursive-clean",
        "int fac(int n) { if (n < 2) { return 1; } return n * fac(n - 1); }\n\
         int f(void) { return fac(5); }\n",
    ),
    (
        "ret-nonzero-div",
        "int seven(void) { return 7; }\n\
         int f(int a) { return a / seven(); }\n",
    ),
    (
        "inbounds-ret-idx",
        "int tab3[8];\n\
         int three(void) { return 3; }\n\
         int f(void) { return tab3[three()]; }\n",
    ),
    (
        "param-passthrough-clean",
        "int id2(int v) { return v; }\n\
         int f(void) { int y = id2(4); return 12 / y; }\n",
    ),
    (
        "callee-mixed-return",
        "int pick(int c) { if (c) { return 1; } return 2; }\n\
         int f(int a) { return a / pick(a); }\n",
    ),
    (
        "deref-nonnull-clean",
        "int load2(int *p) { return *p; }\n\
         int f(void) { int x = 1; return load2(&x); }\n",
    ),
    (
        "maybe-written-out-arg",
        "void maybe_set(int *p, int c) { if (c) { *p = 1; } }\n\
         int f(int c) { int x = 0; maybe_set(&x, c); return x; }\n",
    ),
    (
        "unused-ptr-arg-initialized",
        "void nop2(int *p) { }\n\
         int f(void) { int x = 2; nop2(&x); return x; }\n",
    ),
    (
        "local-shadows-fn-name",
        "int zero2(void) { return 0; }\n\
         int f(int a) { int zero2 = 1; return a / zero2; }\n",
    ),
];
