//! Finding types shared by every analysis.

use metamut_lang::fxhash::FxHasher;
use metamut_lang::Span;
use serde::Serialize;
use std::fmt;
use std::hash::{Hash, Hasher};

/// How serious a finding is.
///
/// `Ub` findings gate mutants (campaign filter, validation goal #7, the
/// reduction oracle); `Lint` findings are advisory and only surface in the
/// CLI and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// The program executes undefined behavior on at least one path (or
    /// can never make observable progress): its output is meaningless to a
    /// differential or crash oracle.
    Ub,
    /// Suspicious but well-defined: worth reporting, never worth gating.
    Lint,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Ub => write!(f, "UB"),
            Severity::Lint => write!(f, "lint"),
        }
    }
}

/// One hop of an interprocedural call chain attached to a finding: the
/// function a summary fact flowed through and the span of the relevant
/// site inside it (a call site for intermediate hops, the defect itself
/// for the last hop). The finding's own span stays at the outermost call
/// site in the reporting function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ChainLink {
    /// The function this hop lands in.
    pub function: String,
    /// Span of the call site (intermediate hops) or defect (last hop).
    pub span: Span,
}

/// One diagnostic produced by an analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Stable analysis name, e.g. `"uninit-read"` (see the README catalog).
    pub analysis: &'static str,
    /// [`Severity::Ub`] gates; [`Severity::Lint`] reports.
    pub severity: Severity,
    /// Enclosing function, or `"<global>"` for file-scope findings.
    pub function: String,
    /// Source span of the offending expression or statement.
    pub span: Span,
    /// Human-readable description (span-free, so keys survive reprints).
    pub message: String,
    /// Callee → defect path for interprocedural findings; empty for
    /// intraprocedural ones. Deliberately **not** part of [`Finding::key`]:
    /// the chain is diagnostic payload, and keying on it would make the
    /// gate's incremental and full paths disagree about identity.
    pub chain: Vec<ChainLink>,
}

impl Finding {
    /// Span-insensitive identity of a finding: two findings with the same
    /// key describe the same defect even if the source was reformatted or
    /// reprinted. This is what "introduces *new* UB" compares.
    pub fn key(&self) -> FindingKey {
        let mut h = FxHasher::default();
        self.analysis.hash(&mut h);
        self.severity.hash(&mut h);
        self.function.hash(&mut h);
        self.message.hash(&mut h);
        FindingKey(h.finish())
    }

    /// Whether this finding participates in UB gating.
    pub fn is_ub(&self) -> bool {
        self.severity == Severity::Ub
    }
}

/// Hash identity of a [`Finding`] modulo spans; see [`Finding::key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FindingKey(pub u64);

/// The span-insensitive key set of the `Ub` findings in `findings`.
pub fn ub_keys(findings: &[Finding]) -> std::collections::BTreeSet<FindingKey> {
    findings
        .iter()
        .filter(|f| f.is_ub())
        .map(Finding::key)
        .collect()
}
