//! Call graph over a translation unit's function definitions, with
//! Tarjan SCC condensation.
//!
//! Edges are syntactic: a call whose callee is a plain identifier naming
//! a function *defined with a body* in the same unit resolves to that
//! definition. Everything else — prototypes, externs, function pointers,
//! names defined more than once — is an *unknown* callee, which the
//! summary layer treats maximally conservatively (may return, observable,
//! no parameter facts). Shadowing by locals is deliberately ignored here:
//! the graph only orders summarization bottom-up, and a spurious edge
//! merely over-approximates an SCC; the analyses themselves re-resolve
//! callees against the per-function scope before using any summary.
//!
//! [`CallGraph::sccs`] lists strongly connected components in bottom-up
//! (callees-first) order — Tarjan emits an SCC only once every component
//! it can reach has already been emitted — which is exactly the order
//! per-function summaries must be computed in.

use metamut_lang::ast::{ExprKind, FunctionDef};
use metamut_lang::fxhash::FxHashMap;

use crate::analyses::{for_each_expr, walk_exprs};

/// Call graph over a slice of function definitions (all with bodies).
pub struct CallGraph {
    /// Resolved callee indices per function, deduplicated and sorted.
    pub callees: Vec<Vec<usize>>,
    /// Function index by name, for names defined exactly once. Duplicate
    /// definitions are dropped: a call to such a name stays unknown.
    pub by_name: FxHashMap<String, usize>,
    /// Strongly connected components in bottom-up (callees-first) order.
    pub sccs: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over `funcs` (each must have a body).
    pub fn build(funcs: &[&FunctionDef]) -> CallGraph {
        let mut by_name: FxHashMap<String, usize> = FxHashMap::default();
        let mut dupes: Vec<String> = Vec::new();
        for (i, f) in funcs.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                dupes.push(f.name.clone());
            }
        }
        for name in dupes {
            by_name.remove(&name);
        }
        let mut callees: Vec<Vec<usize>> = Vec::with_capacity(funcs.len());
        for f in funcs {
            let mut out: Vec<usize> = Vec::new();
            if let Some(body) = &f.body {
                for_each_expr(body, &mut |e| {
                    walk_exprs(e, &mut |sub| {
                        if let ExprKind::Call { callee, .. } = &sub.kind {
                            if let ExprKind::Ident(name) = &callee.unparenthesized().kind {
                                if let Some(&idx) = by_name.get(name.as_str()) {
                                    out.push(idx);
                                }
                            }
                        }
                    });
                });
            }
            out.sort_unstable();
            out.dedup();
            callees.push(out);
        }
        let sccs = tarjan(&callees);
        CallGraph {
            callees,
            by_name,
            sccs,
        }
    }

    /// Whether function `i` sits in a cycle (a multi-member SCC, or a
    /// direct self-call). Cyclic functions summarize against an
    /// environment that excludes their own SCC.
    pub fn in_cycle(&self, i: usize, scc: &[usize]) -> bool {
        scc.len() > 1 || self.callees[i].contains(&i)
    }
}

/// Iterative Tarjan over an adjacency list; components are emitted in
/// reverse-topological (callees-first) order.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next-child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_lang::ast::ExternalDecl;
    use metamut_lang::parse;

    fn graph_of(src: &str) -> (Vec<String>, CallGraph) {
        let ast = parse("<cg>", src).expect("parse");
        let funcs: Vec<&FunctionDef> = ast
            .unit
            .decls
            .iter()
            .filter_map(|d| match d {
                ExternalDecl::Function(f) if f.body.is_some() => Some(f),
                _ => None,
            })
            .collect();
        let names = funcs.iter().map(|f| f.name.clone()).collect();
        let cg = CallGraph::build(&funcs);
        (names, cg)
    }

    #[test]
    fn bottom_up_order_is_callees_first() {
        let (names, cg) = graph_of(
            "int c(void) { return 1; }\n\
             int b(void) { return c(); }\n\
             int a(void) { return b() + c(); }\n",
        );
        let pos = |n: &str| {
            let idx = names.iter().position(|x| x == n).unwrap();
            cg.sccs.iter().position(|s| s.contains(&idx)).unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn mutual_recursion_is_one_scc() {
        let (names, cg) = graph_of(
            "int odd(int n);\n\
             int even(int n) { return n == 0 ? 1 : odd(n - 1); }\n\
             int odd(int n) { return n == 0 ? 0 : even(n - 1); }\n\
             int top(void) { return even(4); }\n",
        );
        assert_eq!(names.len(), 3);
        let cycle = cg
            .sccs
            .iter()
            .find(|s| s.len() == 2)
            .expect("even/odd form one SCC");
        assert!(cg.in_cycle(cycle[0], cycle));
        // `top` comes after its callees.
        assert_eq!(cg.sccs.last().unwrap().len(), 1);
    }

    #[test]
    fn duplicate_names_stay_unknown() {
        let (_, cg) = graph_of(
            "int f(void) { return 1; }\n\
             int f(void) { return 2; }\n\
             int g(void) { return f(); }\n",
        );
        assert!(!cg.by_name.contains_key("f"));
        // No resolved edge from g.
        assert!(cg.callees[2].is_empty());
    }

    #[test]
    fn self_recursion_flags_cycle() {
        let (names, cg) = graph_of("int fac(int n) { return n < 2 ? 1 : n * fac(n - 1); }\n");
        let idx = names.iter().position(|x| x == "fac").unwrap();
        let scc = cg.sccs.iter().find(|s| s.contains(&idx)).unwrap();
        assert!(cg.in_cycle(idx, scc));
    }
}
