//! # metamut-analyze
//!
//! Dataflow-based UB and validity analysis over `metamut-lang` programs.
//!
//! The paper's validator asks only "does the mutant compile?"; this crate
//! adds the next question — "is the mutant a *meaningful* program?" — and
//! answers it cheaply enough to sit in the campaign hot path:
//!
//! - [`cfg`] builds a statement-level control-flow graph per function,
//!   pruning edges behind syntactically-constant conditions.
//! - [`dataflow`] is a forward worklist engine over join semilattices.
//! - [`analyses`] implements the individual checks: definite and possible
//!   uninitialized reads, division/modulo by a known zero, constant
//!   out-of-bounds indexing, null-pointer dereference of locals,
//!   unreachable code, and infinite loops without observable effects.
//! - [`callgraph`] builds the translation unit's call graph with Tarjan
//!   SCC condensation, ordering summarization bottom-up.
//! - [`summary`] condenses each function into a [`FnSummary`] — parameter
//!   demand, pointee read/write/escape effects, conditional-UB probes,
//!   return lattice, observability and termination — which call sites
//!   consume to make every check interprocedural.
//! - [`alpha`] detects no-op mutants via α-equivalence of reprints.
//! - [`gate`] packages it all as a thread-safe campaign filter with an
//!   incremental single-function fast path and content-addressed summary
//!   memoization on a shared query database.
//! - [`fixtures`] is the seeded-UB / known-clean corpus the tests and the
//!   `exp_analyze` / `exp_interproc` bench gates run against.
//!
//! Findings carry a source [`Span`](metamut_lang::Span), a [`Severity`]
//! ([`Ub`](Severity::Ub) gates mutants; [`Lint`](Severity::Lint) only
//! informs), and the name of the analysis that produced them.

#![warn(missing_docs)]

pub mod alpha;
pub mod analyses;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod findings;
pub mod fixtures;
pub mod gate;
pub mod summary;

pub use alpha::{alpha_equivalent, check_noop_mutant};
pub use analyses::{
    analyze_function, analyze_function_with, analyze_unit, analyze_unit_with, collect_globals,
    GlobalInfo,
};
pub use callgraph::CallGraph;
pub use findings::{ub_keys, ChainLink, Finding, FindingKey, Severity};
pub use gate::UbGate;
pub use summary::{summarize_unit, Chain, FnSummary, Summaries};

use metamut_lang::{parse, Diagnostics};
use std::collections::BTreeSet;

/// Parses and analyzes a whole source file, returning every finding in
/// source order. `Err` carries the parser diagnostics when the program
/// does not parse (analysis is then meaningless).
pub fn analyze_source(src: &str) -> Result<Vec<Finding>, Diagnostics> {
    let ast = parse("<analyze>", src)?;
    Ok(analyze_unit(&ast.unit))
}

/// Span-insensitive keys of every `Ub`-severity finding in `src`, or
/// `None` when `src` does not parse.
pub fn ub_keys_of(src: &str) -> Option<BTreeSet<FindingKey>> {
    analyze_source(src).ok().map(|f| ub_keys(&f))
}

/// The first `Ub` finding in `mutant` that its `parent` does not share
/// (validation goal #7). Returns `None` when the mutant parses clean,
/// only repeats UB already present in the parent, or does not parse at
/// all (goal #6 owns that case). An unparseable parent contributes an
/// empty baseline, so any mutant UB counts as new.
pub fn first_new_ub(parent: &str, mutant: &str) -> Option<Finding> {
    let findings = analyze_source(mutant).ok()?;
    let baseline = ub_keys_of(parent).unwrap_or_default();
    findings
        .into_iter()
        .find(|f| f.is_ub() && !baseline.contains(&f.key()))
}
