//! The campaign UB gate: decides — cheaply — whether a mutant introduces
//! undefined behavior its parent seed did not already have.
//!
//! Cost is the whole game here. A campaign compiles mutants through the
//! *incremental* engine (one mini-parse of the edited declaration), so a
//! gate that fully re-parses and re-analyzes every mutant would dominate
//! the iteration. The gate therefore mirrors the incremental compiler's
//! structure:
//!
//! 1. The parent seed is fully analyzed **once** and cached: per-chunk
//!    content hashes (via [`metamut_lang::split_source`]), the set of UB
//!    finding keys, its typedef names, and its [`GlobalInfo`].
//! 2. A mutant is lexed and chunk-hashed; the dirty set (the query
//!    engine's [`metamut_query::dirty_set`]) names the changed chunks. If
//!    *every* dirty chunk mini-parses to a single function definition,
//!    only those functions are re-analyzed (against the parent's globals —
//!    valid because every other chunk is byte-identical to the parent)
//!    and their verdicts are OR-ed.
//! 3. Anything else — non-function edits, parse failures of the fast
//!    path — falls back to a full parse + analyze.
//!
//! Constructed via [`UbGate::with_db`], the gate additionally memoizes
//! per-chunk analyses on a shared [`QueryDb`], so re-mutations of the same
//! function body (and re-checks from the reduction oracle) are free.
//!
//! A mutant that does not parse is **never** gated: the compiler must see
//! it and reject it so compilable-ratio accounting stays truthful.
//! Verdicts are cached per `(parent, mutant)` content hash.

use crate::analyses::{analyze_function, analyze_unit, collect_globals, GlobalInfo};
use crate::findings::{ub_keys, Finding, FindingKey};
use metamut_lang::ast::ExternalDecl;
use metamut_lang::fxhash::{FxHashMap, FxHashSet, FxHasher};
use metamut_lang::{parse, parse_with_typedefs, split_source};
use metamut_query::{dirty_set, KindId, QueryDb};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cached full analysis of one parent seed.
struct ParentInfo {
    /// Per-chunk content hashes from `split_source`, or `None` when the
    /// parent does not lex (every mutant then takes the full path).
    chunk_hashes: Option<Vec<u128>>,
    /// Span-insensitive keys of every `Ub` finding in the parent. A
    /// mutant finding matching any of these is not *new*.
    ub: BTreeSet<FindingKey>,
    /// Typedef names, so single-declaration mutants mini-parse correctly.
    typedefs: FxHashSet<String>,
    /// File-scope facts for analyzing a lone edited function.
    globals: GlobalInfo,
    /// Whether the parent parsed (if not, `ub` is empty and the baseline
    /// for "new" is the empty set).
    parsed: bool,
}

fn content_hash(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// Bumps the `analyze_findings{analysis}` counter family for one freshly
/// analyzed mutant.
fn count_findings(findings: &[Finding]) {
    let telemetry = metamut_telemetry::handle();
    if !telemetry.enabled() {
        return;
    }
    for f in findings {
        telemetry.counter_add(
            &metamut_telemetry::labeled("analyze_findings", f.analysis),
            1,
        );
    }
}

/// The gate's registered chunk-analysis kind on a shared [`QueryDb`]
/// (installed once per database via the extension store).
struct UbChunkKind(KindId);

/// Shared, thread-safe UB gate for a fuzzing campaign.
#[derive(Default)]
pub struct UbGate {
    parents: Mutex<FxHashMap<u64, Arc<ParentInfo>>>,
    verdicts: Mutex<FxHashMap<u64, bool>>,
    checked: AtomicU64,
    filtered: AtomicU64,
    fast_path: AtomicU64,
    /// Optional shared query database memoizing per-chunk analyses, keyed
    /// `(parent content hash, chunk content hash)`.
    db: Option<(Arc<QueryDb>, KindId)>,
}

impl UbGate {
    /// Creates an empty gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a gate that memoizes per-chunk analyses on `db` — pass the
    /// campaign's shared query database so repeated mutations of the same
    /// function body analyze once.
    pub fn with_db(db: Arc<QueryDb>) -> Self {
        let kind = db
            .extension(|| UbChunkKind(db.register_input("ub-chunk")))
            .0;
        UbGate {
            db: Some((db, kind)),
            ..UbGate::default()
        }
    }

    /// Gate queries so far (including verdict-cache hits).
    pub fn checked(&self) -> u64 {
        self.checked.load(Ordering::Relaxed)
    }

    /// Queries that answered "introduces new UB".
    pub fn filtered(&self) -> u64 {
        self.filtered.load(Ordering::Relaxed)
    }

    /// Fresh verdicts that took the single-function fast path.
    pub fn fast_path(&self) -> u64 {
        self.fast_path.load(Ordering::Relaxed)
    }

    /// Whether `mutant` has a `Ub` finding its parent does not.
    ///
    /// `parent = None` means the candidate has no seed lineage (e.g. a
    /// generative fuzzer); the baseline is then the empty set, so *any*
    /// UB finding gates. Unparseable mutants always return `false`.
    pub fn introduces_new_ub(&self, parent: Option<&str>, mutant: &str) -> bool {
        let telemetry = metamut_telemetry::handle();
        self.checked.fetch_add(1, Ordering::Relaxed);
        telemetry.counter_add("ub_checked", 1);

        let mut key = FxHasher::default();
        key.write_u64(parent.map_or(0, content_hash));
        key.write_u64(content_hash(mutant));
        let key = key.finish();
        if let Some(&verdict) = self.verdicts.lock().get(&key) {
            if verdict {
                self.filtered.fetch_add(1, Ordering::Relaxed);
                telemetry.counter_add("ub_filtered", 1);
            }
            return verdict;
        }

        let started = std::time::Instant::now();
        let verdict = self.decide(parent, mutant);
        if telemetry.enabled() {
            telemetry.observe("analyze_ms", started.elapsed().as_secs_f64() * 1e3);
        }
        self.verdicts.lock().insert(key, verdict);
        if verdict {
            self.filtered.fetch_add(1, Ordering::Relaxed);
            telemetry.counter_add("ub_filtered", 1);
        }
        verdict
    }

    fn decide(&self, parent: Option<&str>, mutant: &str) -> bool {
        let info = parent.map(|p| self.parent_info(p));
        let baseline: &BTreeSet<FindingKey> = match &info {
            Some(i) => &i.ub,
            None => {
                static EMPTY: std::sync::OnceLock<BTreeSet<FindingKey>> =
                    std::sync::OnceLock::new();
                EMPTY.get_or_init(BTreeSet::new)
            }
        };

        // Fast path: every edited chunk is a lone function definition, so
        // only the dirty set re-analyzes and the verdicts union. New UB
        // can only originate in an edited chunk — unedited chunks are
        // byte-identical to the parent, whose findings are the baseline.
        if let Some(i) = &info {
            if let (Some(parent_hashes), Some((_, chunks))) =
                (&i.chunk_hashes, split_source(mutant))
            {
                if i.parsed && chunks.len() == parent_hashes.len() {
                    let hashes: Vec<u128> = chunks.iter().map(|c| c.hash).collect();
                    let edited = dirty_set(parent_hashes, &hashes).unwrap_or_default();
                    if edited.is_empty() {
                        // Byte-shuffled but chunk-identical: nothing new.
                        return false;
                    }
                    let pkey = parent.map_or(0, content_hash);
                    let mut new_ub = Some(false);
                    for &c in &edited {
                        match (
                            new_ub,
                            self.fast_check(pkey, chunks[c].text(mutant), i, baseline),
                        ) {
                            (Some(acc), Some(v)) => new_ub = Some(acc || v),
                            _ => {
                                new_ub = None;
                                break;
                            }
                        }
                    }
                    if let Some(new_ub) = new_ub {
                        self.fast_path.fetch_add(1, Ordering::Relaxed);
                        return new_ub;
                    }
                }
            }
        }

        // Full path: parse and analyze the whole mutant.
        let Ok(ast) = parse("<ub-gate>", mutant) else {
            return false;
        };
        let findings = analyze_unit(&ast.unit);
        count_findings(&findings);
        let keys = ub_keys(&findings);
        !keys.is_subset(baseline)
    }

    /// Analyzes one edited chunk as a stand-alone function definition,
    /// memoized on the shared query database when one is attached.
    /// Returns `None` when the chunk is not a lone function (caller falls
    /// back to the full path).
    fn fast_check(
        &self,
        pkey: u64,
        chunk_src: &str,
        parent: &ParentInfo,
        baseline: &BTreeSet<FindingKey>,
    ) -> Option<bool> {
        if let Some((db, kind)) = &self.db {
            let key = db.intern2(pkey, content_hash(chunk_src));
            let memo = db.get_or_insert_with(*kind, key, || {
                Arc::new(Self::chunk_verdict(chunk_src, parent, baseline))
            });
            return *memo.downcast::<Option<bool>>().ok()?;
        }
        Self::chunk_verdict(chunk_src, parent, baseline)
    }

    /// The uncached per-chunk analysis behind [`UbGate::fast_check`].
    fn chunk_verdict(
        chunk_src: &str,
        parent: &ParentInfo,
        baseline: &BTreeSet<FindingKey>,
    ) -> Option<bool> {
        let ast = parse_with_typedefs("<ub-gate-chunk>", chunk_src, &parent.typedefs).ok()?;
        let [ExternalDecl::Function(f)] = &ast.unit.decls[..] else {
            return None;
        };
        f.body.as_ref()?;
        let findings = analyze_function(f, &parent.globals);
        count_findings(&findings);
        let keys = ub_keys(&findings);
        Some(!keys.is_subset(baseline))
    }

    fn parent_info(&self, parent: &str) -> Arc<ParentInfo> {
        let key = content_hash(parent);
        if let Some(info) = self.parents.lock().get(&key) {
            return Arc::clone(info);
        }
        let chunk_hashes =
            split_source(parent).map(|(_, chunks)| chunks.iter().map(|c| c.hash).collect());
        let info = match parse("<ub-gate-parent>", parent) {
            Ok(ast) => {
                let mut typedefs = FxHashSet::default();
                for d in &ast.unit.decls {
                    if let ExternalDecl::Typedef(t) = d {
                        typedefs.insert(t.name.clone());
                    }
                }
                Arc::new(ParentInfo {
                    chunk_hashes,
                    ub: ub_keys(&analyze_unit(&ast.unit)),
                    typedefs,
                    globals: collect_globals(&ast.unit),
                    parsed: true,
                })
            }
            Err(_) => Arc::new(ParentInfo {
                chunk_hashes,
                ub: BTreeSet::new(),
                typedefs: FxHashSet::default(),
                globals: GlobalInfo::default(),
                parsed: false,
            }),
        };
        self.parents.lock().insert(key, Arc::clone(&info));
        info
    }
}
