//! The campaign UB gate: decides — cheaply — whether a mutant introduces
//! undefined behavior its parent seed did not already have.
//!
//! Cost is the whole game here. A campaign compiles mutants through the
//! *incremental* engine (one mini-parse of the edited declaration), so a
//! gate that fully re-parses and re-analyzes every mutant would dominate
//! the iteration. The gate therefore mirrors the incremental compiler's
//! structure, in one of two modes:
//!
//! **Interprocedural mode** (the default). Editing one function can
//! change findings in *unedited* callers — a callee that now returns 0
//! creates a division by zero at an old call site — so per-chunk
//! verdicts are unsound here. Instead the gate splices each edited
//! chunk's mini-parsed function into the parent's declaration list and
//! re-runs the whole-unit summary analysis, with both the per-function
//! summary and the per-function UB-key set memoized in the shared
//! [`QueryDb`] under a **content-addressed summary key**: the hash of
//! (global fingerprint, function text, resolved callee summary keys),
//! computed bottom-up over the call-graph SCCs. A single-declaration
//! mutant therefore re-summarizes only the edited function and its SCC
//! ancestors (transitive callers); every other function is a memo hit —
//! observable via [`UbGate::summary_hits`] / [`UbGate::summary_recomputes`]
//! and the `analyze_summary_hits` / `analyze_summary_recomputes`
//! telemetry counters.
//!
//! **Intraprocedural mode** ([`UbGate::with_interproc`]`(false)`): the
//! PR 5 behavior, byte-for-byte. New UB can only originate in an edited
//! chunk, so each dirty chunk is analyzed as a stand-alone function
//! against the parent's globals and the verdicts are OR-ed, memoized
//! per `(parent, chunk content)` on the shared database.
//!
//! In both modes anything the fast path cannot handle — non-function
//! edits, chunk-count changes, parse failures — falls back to a full
//! parse + analyze (which in interprocedural mode still reuses the
//! summary memos). A mutant that does not parse is **never** gated: the
//! compiler must see it and reject it so compilable-ratio accounting
//! stays truthful. Verdicts are cached per `(parent, mutant)` content
//! hash.

use crate::analyses::{
    analyze_function, analyze_function_with, analyze_unit_with, collect_globals,
    summarize_function, GlobalInfo,
};
use crate::callgraph::CallGraph;
use crate::findings::{ub_keys, Finding, FindingKey};
use crate::summary::{summarize_functions, FnSummary, Summaries};
use metamut_lang::ast::{ExternalDecl, FunctionDef, TranslationUnit};
use metamut_lang::chash::{hash128, Sip128};
use metamut_lang::fxhash::{FxHashMap, FxHashSet, FxHasher};
use metamut_lang::{parse, parse_with_typedefs, split_source, Ast, DeclChunk};
use metamut_query::{dirty_set, KindId, QueryDb};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cached full analysis of one parent seed.
struct ParentInfo {
    /// Per-chunk content hashes from `split_source`, or `None` when the
    /// parent does not lex (every mutant then takes the full path).
    chunk_hashes: Option<Vec<u128>>,
    /// Span-insensitive keys of every `Ub` finding in the parent. A
    /// mutant finding matching any of these is not *new*.
    ub: BTreeSet<FindingKey>,
    /// Typedef names, so single-declaration mutants mini-parse correctly.
    typedefs: FxHashSet<String>,
    /// File-scope facts for analyzing a lone edited function.
    globals: GlobalInfo,
    /// Whether the parent parsed (if not, `ub` is empty and the baseline
    /// for "new" is the empty set).
    parsed: bool,
    /// The parent source, for slicing declaration texts (summary keys
    /// hash the exact decl text).
    src: String,
    /// The parsed parent, kept for the interprocedural splice path.
    ast: Option<Ast>,
    /// Chunk index → declaration index, when the chunk holds exactly
    /// that one declaration (the splice path's alignment).
    chunk_decl: Vec<Option<usize>>,
    /// Fingerprint of everything outside function bodies that the
    /// analyses can observe: volatile names, global array sizes, typedef
    /// names. Function-only edits preserve it.
    globals_hash: u128,
}

fn content_hash(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// Bumps the `analyze_findings{analysis}` counter family for one freshly
/// analyzed mutant.
fn count_findings(findings: &[Finding]) {
    let telemetry = metamut_telemetry::handle();
    if !telemetry.enabled() {
        return;
    }
    for f in findings {
        telemetry.counter_add(
            &metamut_telemetry::labeled("analyze_findings", f.analysis),
            1,
        );
    }
}

/// Typedef names of a unit (they change how a lone chunk parses).
fn typedef_names(unit: &TranslationUnit) -> FxHashSet<String> {
    let mut typedefs = FxHashSet::default();
    for d in &unit.decls {
        if let ExternalDecl::Typedef(t) = d {
            typedefs.insert(t.name.clone());
        }
    }
    typedefs
}

/// Content fingerprint of the analysis-visible file scope: sorted
/// volatile names, sorted `(array, size)` pairs, sorted typedef names.
/// Two units with equal fingerprints analyze any byte-identical function
/// identically, which is what licenses sharing summary memos between the
/// parent and its function-only mutants.
fn globals_fingerprint(globals: &GlobalInfo, typedefs: &FxHashSet<String>) -> u128 {
    let mut h = Sip128::default();
    let mut vol: Vec<&str> = globals.volatile.iter().map(String::as_str).collect();
    vol.sort_unstable();
    h.write_u64(vol.len() as u64);
    for v in vol {
        h.write_str(v);
    }
    let mut arrays: Vec<(&str, i128)> = globals
        .array_sizes
        .iter()
        .map(|(k, &v)| (k.as_str(), v))
        .collect();
    arrays.sort_unstable();
    h.write_u64(arrays.len() as u64);
    for (name, size) in arrays {
        h.write_str(name);
        h.write_u128(size as u128);
    }
    let mut tds: Vec<&str> = typedefs.iter().map(String::as_str).collect();
    tds.sort_unstable();
    h.write_u64(tds.len() as u64);
    for t in tds {
        h.write_str(t);
    }
    h.finish128()
}

/// Content-addressed summary keys, bottom-up over the call graph: a
/// function's key hashes the global fingerprint, its own declaration
/// text, and its resolved callees' keys — so an edit invalidates exactly
/// the edited function and its transitive callers. Members of a cyclic
/// SCC share a mix of the whole component (their summaries are computed
/// jointly) and are distinguished by their own text hash.
fn summary_keys(
    cg: &CallGraph,
    funcs: &[&FunctionDef],
    fn_hashes: &[u128],
    globals_hash: u128,
) -> Vec<u128> {
    let mut skeys = vec![0u128; funcs.len()];
    for scc in &cg.sccs {
        if scc.len() == 1 && !cg.in_cycle(scc[0], scc) {
            let i = scc[0];
            let mut h = Sip128::default();
            h.write_u128(globals_hash);
            h.write_u128(fn_hashes[i]);
            let mut deps: Vec<(&str, u128)> = cg.callees[i]
                .iter()
                .map(|&j| (funcs[j].name.as_str(), skeys[j]))
                .collect();
            deps.sort_unstable();
            deps.dedup();
            for (name, k) in deps {
                h.write_str(name);
                h.write_u128(k);
            }
            skeys[i] = h.finish128();
        } else {
            let mut mix = Sip128::default();
            mix.write_u128(globals_hash);
            let mut members: Vec<u128> = scc.iter().map(|&i| fn_hashes[i]).collect();
            members.sort_unstable();
            for m in members {
                mix.write_u128(m);
            }
            let in_scc: FxHashSet<usize> = scc.iter().copied().collect();
            let mut ext: Vec<(&str, u128)> = scc
                .iter()
                .flat_map(|&i| cg.callees[i].iter().copied())
                .filter(|j| !in_scc.contains(j))
                .map(|j| (funcs[j].name.as_str(), skeys[j]))
                .collect();
            ext.sort_unstable();
            ext.dedup();
            for (name, k) in ext {
                mix.write_str(name);
                mix.write_u128(k);
            }
            let mix = mix.finish128();
            for &i in scc {
                let mut h = Sip128::default();
                h.write_u128(mix);
                h.write_u128(fn_hashes[i]);
                skeys[i] = h.finish128();
            }
        }
    }
    skeys
}

/// The gate's registered analysis kinds on a shared [`QueryDb`]
/// (installed once per database via the extension store).
struct GateKinds {
    /// Intraprocedural per-chunk verdicts, keyed `(parent, chunk text)`.
    chunk: KindId,
    /// Per-function [`FnSummary`], keyed by content-addressed summary key.
    summary: KindId,
    /// Per-function UB finding-key set, same key as `summary`.
    fn_ub: KindId,
}

/// Shared, thread-safe UB gate for a fuzzing campaign.
pub struct UbGate {
    parents: Mutex<FxHashMap<u64, Arc<ParentInfo>>>,
    verdicts: Mutex<FxHashMap<u64, bool>>,
    checked: AtomicU64,
    filtered: AtomicU64,
    fast_path: AtomicU64,
    summary_hits: AtomicU64,
    summary_recomputes: AtomicU64,
    /// Whether call-site summary propagation is on (the default). Off
    /// reproduces the strictly intraprocedural PR 5 gate byte-for-byte.
    interproc: bool,
    /// Optional shared query database memoizing per-chunk analyses,
    /// per-function summaries, and per-function UB keys.
    db: Option<(Arc<QueryDb>, Arc<GateKinds>)>,
}

impl Default for UbGate {
    fn default() -> Self {
        UbGate {
            parents: Mutex::default(),
            verdicts: Mutex::default(),
            checked: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
            fast_path: AtomicU64::new(0),
            summary_hits: AtomicU64::new(0),
            summary_recomputes: AtomicU64::new(0),
            interproc: true,
            db: None,
        }
    }
}

impl UbGate {
    /// Creates an empty interprocedural gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a gate that memoizes analyses on `db` — pass the
    /// campaign's shared query database so repeated mutations of the same
    /// function body analyze once.
    pub fn with_db(db: Arc<QueryDb>) -> Self {
        let kinds = db.extension(|| GateKinds {
            chunk: db.register_input("ub-chunk"),
            summary: db.register_input("fn-summary"),
            fn_ub: db.register_input("fn-ub"),
        });
        UbGate {
            db: Some((db, kinds)),
            ..UbGate::default()
        }
    }

    /// Selects interprocedural (`true`, the default) or strictly
    /// intraprocedural (`false`) gating. Set it before the first query:
    /// cached parent baselines and verdicts are mode-specific.
    pub fn with_interproc(mut self, on: bool) -> Self {
        self.interproc = on;
        self
    }

    /// Gate queries so far (including verdict-cache hits).
    pub fn checked(&self) -> u64 {
        self.checked.load(Ordering::Relaxed)
    }

    /// Queries that answered "introduces new UB".
    pub fn filtered(&self) -> u64 {
        self.filtered.load(Ordering::Relaxed)
    }

    /// Fresh verdicts that took the incremental fast path.
    pub fn fast_path(&self) -> u64 {
        self.fast_path.load(Ordering::Relaxed)
    }

    /// Function-summary memo hits (interprocedural mode with a database).
    pub fn summary_hits(&self) -> u64 {
        self.summary_hits.load(Ordering::Relaxed)
    }

    /// Function summaries actually computed (memo misses).
    pub fn summary_recomputes(&self) -> u64 {
        self.summary_recomputes.load(Ordering::Relaxed)
    }

    /// Whether `mutant` has a `Ub` finding its parent does not.
    ///
    /// `parent = None` means the candidate has no seed lineage (e.g. a
    /// generative fuzzer); the baseline is then the empty set, so *any*
    /// UB finding gates. Unparseable mutants always return `false`.
    pub fn introduces_new_ub(&self, parent: Option<&str>, mutant: &str) -> bool {
        let telemetry = metamut_telemetry::handle();
        self.checked.fetch_add(1, Ordering::Relaxed);
        telemetry.counter_add("ub_checked", 1);

        let mut key = FxHasher::default();
        key.write_u64(parent.map_or(0, content_hash));
        key.write_u64(content_hash(mutant));
        let key = key.finish();
        if let Some(&verdict) = self.verdicts.lock().get(&key) {
            if verdict {
                self.filtered.fetch_add(1, Ordering::Relaxed);
                telemetry.counter_add("ub_filtered", 1);
            }
            return verdict;
        }

        let started = std::time::Instant::now();
        let verdict = self.decide(parent, mutant);
        if telemetry.enabled() {
            telemetry.observe("analyze_ms", started.elapsed().as_secs_f64() * 1e3);
        }
        self.verdicts.lock().insert(key, verdict);
        if verdict {
            self.filtered.fetch_add(1, Ordering::Relaxed);
            telemetry.counter_add("ub_filtered", 1);
        }
        verdict
    }

    fn decide(&self, parent: Option<&str>, mutant: &str) -> bool {
        let info = parent.map(|p| self.parent_info(p));
        let baseline: &BTreeSet<FindingKey> = match &info {
            Some(i) => &i.ub,
            None => {
                static EMPTY: std::sync::OnceLock<BTreeSet<FindingKey>> =
                    std::sync::OnceLock::new();
                EMPTY.get_or_init(BTreeSet::new)
            }
        };
        if self.interproc {
            self.decide_interproc(info.as_deref(), mutant, baseline)
        } else {
            self.decide_intraproc(info.as_deref(), mutant, baseline)
        }
    }

    // ------------------------------------------------------------------
    // Interprocedural mode
    // ------------------------------------------------------------------

    fn decide_interproc(
        &self,
        info: Option<&ParentInfo>,
        mutant: &str,
        baseline: &BTreeSet<FindingKey>,
    ) -> bool {
        if let Some(i) = info {
            if let Some(verdict) = self.spliced_verdict(i, mutant, baseline) {
                return verdict;
            }
        }
        let Ok(ast) = parse("<ub-gate>", mutant) else {
            return false;
        };
        let keys = self.unit_ub_keys(&ast, mutant);
        !keys.is_subset(baseline)
    }

    /// The splice fast path: every dirty chunk mini-parses to a single
    /// function definition aligned with one parent declaration, so the
    /// mutant's unit is the parent's declaration list with those
    /// functions swapped in — no full re-parse, parent globals reused
    /// (function-only edits cannot change them). The whole spliced unit
    /// is then analyzed through the summary memos: unchanged functions
    /// whose callee cone is also unchanged are cache hits.
    fn spliced_verdict(
        &self,
        parent: &ParentInfo,
        mutant: &str,
        baseline: &BTreeSet<FindingKey>,
    ) -> Option<bool> {
        let parent_hashes = parent.chunk_hashes.as_ref()?;
        let ast = parent.ast.as_ref()?;
        let (_, chunks) = split_source(mutant)?;
        if chunks.len() != parent_hashes.len() {
            return None;
        }
        let hashes: Vec<u128> = chunks.iter().map(|c| c.hash).collect();
        let edited = dirty_set(parent_hashes, &hashes)?;
        if edited.is_empty() {
            // Byte-shuffled but chunk-identical: nothing new.
            return Some(false);
        }

        // Mini-parse each edited chunk; all-or-nothing.
        let mut repl: FxHashMap<usize, (Ast, &str)> = FxHashMap::default();
        for &c in &edited {
            let d = parent.chunk_decl.get(c).copied().flatten()?;
            let ExternalDecl::Function(pf) = &ast.unit.decls[d] else {
                return None;
            };
            pf.body.as_ref()?;
            let chunk_src = chunks[c].text(mutant);
            let cast = parse_with_typedefs("<ub-gate-chunk>", chunk_src, &parent.typedefs).ok()?;
            let [ExternalDecl::Function(f)] = &cast.unit.decls[..] else {
                return None;
            };
            f.body.as_ref()?;
            repl.insert(d, (cast, chunk_src));
        }

        let mut funcs: Vec<&FunctionDef> = Vec::new();
        let mut texts: Vec<&str> = Vec::new();
        for (d, decl) in ast.unit.decls.iter().enumerate() {
            if let Some((cast, csrc)) = repl.get(&d) {
                let [ExternalDecl::Function(f)] = &cast.unit.decls[..] else {
                    unreachable!("validated above");
                };
                funcs.push(f);
                texts.push(&csrc[f.span.lo as usize..f.span.hi as usize]);
            } else if let ExternalDecl::Function(f) = decl {
                if f.body.is_some() {
                    funcs.push(f);
                    texts.push(&parent.src[f.span.lo as usize..f.span.hi as usize]);
                }
            }
        }
        let keys =
            self.analyze_functions_memo(&funcs, &texts, &parent.globals, parent.globals_hash);
        self.fast_path.fetch_add(1, Ordering::Relaxed);
        Some(!keys.is_subset(baseline))
    }

    /// Summary-driven UB keys of a fully parsed unit, routed through the
    /// memo engine so the splice path and the full path share artifacts.
    fn unit_ub_keys(&self, ast: &Ast, src: &str) -> BTreeSet<FindingKey> {
        let globals = collect_globals(&ast.unit);
        let typedefs = typedef_names(&ast.unit);
        let globals_hash = globals_fingerprint(&globals, &typedefs);
        let mut funcs: Vec<&FunctionDef> = Vec::new();
        let mut texts: Vec<&str> = Vec::new();
        for decl in &ast.unit.decls {
            if let ExternalDecl::Function(f) = decl {
                if f.body.is_some() {
                    funcs.push(f);
                    texts.push(&src[f.span.lo as usize..f.span.hi as usize]);
                }
            }
        }
        self.analyze_functions_memo(&funcs, &texts, &globals, globals_hash)
    }

    /// Bottom-up summarize-and-analyze over a function list, memoizing
    /// per-function summaries and UB-key sets under content-addressed
    /// summary keys. `texts[i]` must be the exact declaration text of
    /// `funcs[i]` — byte-identical declarations hash identically whether
    /// they came from a full parse or a spliced chunk, which is what
    /// makes the memos shareable across paths and across seeds.
    fn analyze_functions_memo(
        &self,
        funcs: &[&FunctionDef],
        texts: &[&str],
        globals: &GlobalInfo,
        globals_hash: u128,
    ) -> BTreeSet<FindingKey> {
        let Some((db, kinds)) = &self.db else {
            // No shared database: same analysis, nothing memoized.
            let env = summarize_functions(funcs, globals);
            let mut all = BTreeSet::new();
            for f in funcs {
                let findings = analyze_function_with(f, globals, &env);
                count_findings(&findings);
                all.extend(ub_keys(&findings));
            }
            return all;
        };
        let telemetry = metamut_telemetry::handle();
        let cg = CallGraph::build(funcs);
        let fn_hashes: Vec<u128> = texts.iter().map(|t| hash128(t.as_bytes())).collect();
        let skeys = summary_keys(&cg, funcs, &fn_hashes, globals_hash);
        let key_of = |skey: u128| db.intern2((skey >> 64) as u64, skey as u64);

        // Summaries, bottom-up: every SCC member computes against the
        // environment excluding its own SCC, insertion deferred (matches
        // `summarize_functions` exactly — a memoized run and a fresh run
        // must produce the same environment).
        let mut env = Summaries::default();
        for scc in &cg.sccs {
            let computed: Vec<(usize, Arc<FnSummary>)> = scc
                .iter()
                .map(|&i| {
                    let (value, hit) = db.memo_once(kinds.summary, key_of(skeys[i]), || {
                        Arc::new(summarize_function(funcs[i], globals, &env))
                    });
                    if hit {
                        self.summary_hits.fetch_add(1, Ordering::Relaxed);
                        telemetry.counter_add("analyze_summary_hits", 1);
                    } else {
                        self.summary_recomputes.fetch_add(1, Ordering::Relaxed);
                        telemetry.counter_add("analyze_summary_recomputes", 1);
                    }
                    let s = value
                        .downcast::<FnSummary>()
                        .expect("fn-summary memo holds a FnSummary");
                    (i, s)
                })
                .collect();
            for (i, s) in computed {
                if cg.by_name.get(funcs[i].name.as_str()) == Some(&i) {
                    env.insert(funcs[i].name.clone(), s);
                }
            }
        }

        // Per-function UB keys against the complete environment. The
        // summary key already covers the whole callee cone, so it is a
        // sound memo key for the findings too.
        let mut all = BTreeSet::new();
        for (i, f) in funcs.iter().enumerate() {
            let (value, _) = db.memo_once(kinds.fn_ub, key_of(skeys[i]), || {
                let findings = analyze_function_with(f, globals, &env);
                count_findings(&findings);
                Arc::new(ub_keys(&findings))
            });
            let keys = value
                .downcast::<BTreeSet<FindingKey>>()
                .expect("fn-ub memo holds a key set");
            all.extend(keys.iter().copied());
        }
        all
    }

    // ------------------------------------------------------------------
    // Intraprocedural mode (the PR 5 gate, unchanged)
    // ------------------------------------------------------------------

    fn decide_intraproc(
        &self,
        info: Option<&ParentInfo>,
        mutant: &str,
        baseline: &BTreeSet<FindingKey>,
    ) -> bool {
        // Fast path: every edited chunk is a lone function definition, so
        // only the dirty set re-analyzes and the verdicts union. New UB
        // can only originate in an edited chunk — unedited chunks are
        // byte-identical to the parent, whose findings are the baseline.
        if let Some(i) = info {
            if let (Some(parent_hashes), Some((_, chunks))) =
                (&i.chunk_hashes, split_source(mutant))
            {
                if i.parsed && chunks.len() == parent_hashes.len() {
                    let hashes: Vec<u128> = chunks.iter().map(|c| c.hash).collect();
                    let edited = dirty_set(parent_hashes, &hashes).unwrap_or_default();
                    if edited.is_empty() {
                        // Byte-shuffled but chunk-identical: nothing new.
                        return false;
                    }
                    let pkey = content_hash(&i.src);
                    let mut new_ub = Some(false);
                    for &c in &edited {
                        match (
                            new_ub,
                            self.fast_check(pkey, chunks[c].text(mutant), i, baseline),
                        ) {
                            (Some(acc), Some(v)) => new_ub = Some(acc || v),
                            _ => {
                                new_ub = None;
                                break;
                            }
                        }
                    }
                    if let Some(new_ub) = new_ub {
                        self.fast_path.fetch_add(1, Ordering::Relaxed);
                        return new_ub;
                    }
                }
            }
        }

        // Full path: parse and analyze the whole mutant.
        let Ok(ast) = parse("<ub-gate>", mutant) else {
            return false;
        };
        let findings = analyze_unit_with(&ast.unit, &Summaries::default());
        count_findings(&findings);
        let keys = ub_keys(&findings);
        !keys.is_subset(baseline)
    }

    /// Analyzes one edited chunk as a stand-alone function definition,
    /// memoized on the shared query database when one is attached.
    /// Returns `None` when the chunk is not a lone function (caller falls
    /// back to the full path).
    fn fast_check(
        &self,
        pkey: u64,
        chunk_src: &str,
        parent: &ParentInfo,
        baseline: &BTreeSet<FindingKey>,
    ) -> Option<bool> {
        if let Some((db, kinds)) = &self.db {
            let key = db.intern2(pkey, content_hash(chunk_src));
            let memo = db.get_or_insert_with(kinds.chunk, key, || {
                Arc::new(Self::chunk_verdict(chunk_src, parent, baseline))
            });
            return *memo.downcast::<Option<bool>>().ok()?;
        }
        Self::chunk_verdict(chunk_src, parent, baseline)
    }

    /// The uncached per-chunk analysis behind [`UbGate::fast_check`].
    fn chunk_verdict(
        chunk_src: &str,
        parent: &ParentInfo,
        baseline: &BTreeSet<FindingKey>,
    ) -> Option<bool> {
        let ast = parse_with_typedefs("<ub-gate-chunk>", chunk_src, &parent.typedefs).ok()?;
        let [ExternalDecl::Function(f)] = &ast.unit.decls[..] else {
            return None;
        };
        f.body.as_ref()?;
        let findings = analyze_function(f, &parent.globals);
        count_findings(&findings);
        let keys = ub_keys(&findings);
        Some(!keys.is_subset(baseline))
    }

    // ------------------------------------------------------------------
    // Parent baselines
    // ------------------------------------------------------------------

    fn parent_info(&self, parent: &str) -> Arc<ParentInfo> {
        let key = content_hash(parent);
        if let Some(info) = self.parents.lock().get(&key) {
            return Arc::clone(info);
        }
        let split = split_source(parent);
        let chunk_hashes: Option<Vec<u128>> = split
            .as_ref()
            .map(|(_, chunks)| chunks.iter().map(|c| c.hash).collect());
        let info = match parse("<ub-gate-parent>", parent) {
            Ok(ast) => {
                let typedefs = typedef_names(&ast.unit);
                let globals = collect_globals(&ast.unit);
                let globals_hash = globals_fingerprint(&globals, &typedefs);
                let chunk_decl = split
                    .as_ref()
                    .map(|(_, chunks)| align_chunks(chunks, &ast.unit.decls))
                    .unwrap_or_default();
                // Interprocedural baselines run through the memo engine:
                // analyzing the parent pre-warms the summary store, so
                // the first mutant only pays for its own edit.
                let ub = if self.interproc {
                    self.unit_ub_keys(&ast, parent)
                } else {
                    ub_keys(&analyze_unit_with(&ast.unit, &Summaries::default()))
                };
                Arc::new(ParentInfo {
                    chunk_hashes,
                    ub,
                    typedefs,
                    globals,
                    parsed: true,
                    src: parent.to_owned(),
                    ast: Some(ast),
                    chunk_decl,
                    globals_hash,
                })
            }
            Err(_) => Arc::new(ParentInfo {
                chunk_hashes,
                ub: BTreeSet::new(),
                typedefs: FxHashSet::default(),
                globals: GlobalInfo::default(),
                parsed: false,
                src: parent.to_owned(),
                ast: None,
                chunk_decl: Vec::new(),
                globals_hash: 0,
            }),
        };
        self.parents.lock().insert(key, Arc::clone(&info));
        info
    }
}

/// Maps each chunk to the unique declaration it contains (`None` when a
/// chunk holds zero or several declarations, or a declaration straddles
/// a chunk boundary). Both lists are in source order, so one forward
/// pass aligns them.
fn align_chunks(chunks: &[DeclChunk], decls: &[ExternalDecl]) -> Vec<Option<usize>> {
    let mut map = vec![None; chunks.len()];
    let mut d = 0;
    for (c, chunk) in chunks.iter().enumerate() {
        let mut inside = 0;
        let mut only = None;
        while d < decls.len() && decls[d].span().hi <= chunk.span.hi {
            if decls[d].span().lo >= chunk.span.lo {
                inside += 1;
                only = Some(d);
            }
            d += 1;
        }
        if inside == 1 {
            map[c] = only;
        }
    }
    map
}
