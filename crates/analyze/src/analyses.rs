//! The analysis suite: uninitialized reads, constant-lattice UB checks
//! (division by zero, out-of-bounds constant indexing, null-pointer
//! dereference), unreachable code, and infinite loops without side
//! effects.
//!
//! Everything here is parse-only — no sema required — and deliberately
//! conservative: a finding must survive reformatting (keys are
//! span-insensitive) and the clean-corpus gate (`exp_analyze` enforces
//! zero findings on known-good programs). Precision tricks that trade
//! false positives for recall are out of bounds; see the per-analysis
//! notes for the deliberate imprecision.
//!
//! Every pass is parameterized by a [`Summaries`] environment. With the
//! empty environment (the default) all callees are unknown and the
//! analyses are exactly intraprocedural; with an environment produced by
//! [`crate::summary::summarize_unit`], call sites consume callee facts —
//! parameter demands, pointee read/write effects, conditional-UB probes,
//! return constants, observability and termination — making all six
//! checks interprocedural without any inlining. The same walkers also
//! *produce* summaries: run with a [`Probe`] attached and parameters
//! seeded symbolic, they record which parameters are demanded, divided
//! by, dereferenced, or used as array indices.

use crate::cfg::{syntactic_const, Action, Cfg};
use crate::dataflow::{forward, Lattice};
use crate::findings::{ChainLink, Finding, Severity};
use crate::summary::{Chain, FnSummary, Summaries};
use metamut_lang::ast::{
    BinaryOp, BlockItem, Expr, ExprKind, ExternalDecl, ForInit, FunctionDef, Initializer, Stmt,
    StmtKind, Storage, TranslationUnit, TySyn, UnaryOp, VarDecl,
};
use metamut_lang::fxhash::{FxHashMap, FxHashSet};
use metamut_lang::Span;
use std::collections::BTreeMap;

/// File-scope facts every function analysis needs: which globals are
/// volatile (observable side-effect channel for the infinite-loop check)
/// and the constant sizes of global arrays (for the indexing check).
#[derive(Debug, Clone, Default)]
pub struct GlobalInfo {
    /// Names of file-scope variables declared `volatile`.
    pub volatile: FxHashSet<String>,
    /// First-dimension sizes of file-scope arrays with constant extents.
    pub array_sizes: FxHashMap<String, i128>,
}

/// Collects [`GlobalInfo`] from a translation unit's file-scope decls.
pub fn collect_globals(unit: &TranslationUnit) -> GlobalInfo {
    let mut info = GlobalInfo::default();
    for decl in &unit.decls {
        if let ExternalDecl::Vars(group) = decl {
            for v in &group.vars {
                if ty_is_volatile(&v.ty) {
                    info.volatile.insert(v.name.clone());
                }
                if let TySyn::Array {
                    size: Some(size), ..
                } = &v.ty
                {
                    if let Some(n) = syntactic_const(size) {
                        info.array_sizes.insert(v.name.clone(), n);
                    }
                }
            }
        }
    }
    info
}

fn ty_is_volatile(ty: &TySyn) -> bool {
    match ty {
        TySyn::Base { quals, .. } => quals.is_volatile,
        TySyn::Pointer { pointee, quals } => quals.is_volatile || ty_is_volatile(pointee),
        TySyn::Array { elem, .. } => ty_is_volatile(elem),
        TySyn::Function { .. } => false,
    }
}

/// Analyzes every function definition of `unit` **interprocedurally**:
/// summarizes the unit bottom-up over its call graph, then analyzes each
/// function against that environment. Findings in source order.
pub fn analyze_unit(unit: &TranslationUnit) -> Vec<Finding> {
    let globals = collect_globals(unit);
    let summaries = crate::summary::summarize_unit(unit, &globals);
    analyze_unit_inner(unit, &globals, &summaries)
}

/// Analyzes every function definition of `unit` against a caller-chosen
/// summary environment. Pass `&Summaries::default()` for the strictly
/// intraprocedural behavior (every callee unknown).
pub fn analyze_unit_with(unit: &TranslationUnit, summaries: &Summaries) -> Vec<Finding> {
    let globals = collect_globals(unit);
    analyze_unit_inner(unit, &globals, summaries)
}

fn analyze_unit_inner(
    unit: &TranslationUnit,
    globals: &GlobalInfo,
    summaries: &Summaries,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for decl in &unit.decls {
        if let ExternalDecl::Function(f) = decl {
            if f.body.is_some() {
                findings.extend(analyze_function_with(f, globals, summaries));
            }
        }
    }
    findings
}

/// How a local is classified for tracking purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum VarKind {
    Scalar,
    Pointer,
    Array(Option<i128>),
    Other,
}

fn var_kind(ty: &TySyn) -> VarKind {
    match ty {
        // Only arithmetic types are "scalars" for tracking: aggregates
        // are written member-wise (which the flat map can't see), and
        // typedef names may alias aggregates.
        TySyn::Base { spec, .. } if spec.is_arithmetic() => VarKind::Scalar,
        TySyn::Base { .. } => VarKind::Other,
        TySyn::Pointer { .. } => VarKind::Pointer,
        TySyn::Array { size, .. } => VarKind::Array(size.as_deref().and_then(syntactic_const)),
        TySyn::Function { .. } => VarKind::Other,
    }
}

/// Per-function facts shared by all passes.
struct FnInfo<'a> {
    func: &'a str,
    /// Flat name → kind map over locals and parameters. Names declared
    /// more than once (shadowing) are excluded from *all* tracking — the
    /// flow-insensitive map can't tell the scopes apart, and a missed
    /// finding is always preferred over a false one.
    kinds: FxHashMap<String, VarKind>,
    /// Locals whose address is taken anywhere in the body: writable
    /// through pointers, so never tracked. `&x` arguments to a known
    /// callee whose matching pointer parameter does not escape are
    /// exempt — their pointee effects are modeled at the call site.
    address_taken: FxHashSet<String>,
    /// Volatile names visible in the body (locals and globals).
    volatile: FxHashSet<String>,
    /// Array sizes: globals overlaid with locals.
    array_sizes: FxHashMap<String, i128>,
    /// Callee summary environment (empty = intraprocedural).
    summaries: &'a Summaries,
}

impl FnInfo<'_> {
    fn trackable(&self, name: &str) -> Option<VarKind> {
        if self.address_taken.contains(name) || self.volatile.contains(name) {
            return None;
        }
        match self.kinds.get(name) {
            Some(k @ (VarKind::Scalar | VarKind::Pointer)) => Some(*k),
            _ => None,
        }
    }

    /// Resolves a call's callee expression to a summarized function: a
    /// plain identifier, not shadowed by any local or parameter, with a
    /// summary in the environment. Anything else is unknown.
    fn callee<'e, 's>(&'s self, callee: &'e Expr) -> Option<(&'e str, &'s FnSummary)> {
        if let ExprKind::Ident(name) = &callee.unparenthesized().kind {
            if !self.kinds.contains_key(name.as_str()) {
                if let Some(s) = self.summaries.get(name) {
                    return Some((name.as_str(), s.as_ref()));
                }
            }
        }
        None
    }

    fn finding(
        &self,
        analysis: &'static str,
        severity: Severity,
        span: Span,
        msg: String,
    ) -> Finding {
        Finding {
            analysis,
            severity,
            function: self.func.to_owned(),
            span,
            message: msg,
            chain: Vec::new(),
        }
    }
}

/// Builds the CFG and shared per-function facts (name kinds, sanctioned
/// address-taking, volatiles, array sizes). Returns `None` for
/// prototypes.
fn fn_context<'a>(
    fun: &'a FunctionDef,
    globals: &GlobalInfo,
    summaries: &'a Summaries,
) -> Option<(Cfg<'a>, FnInfo<'a>)> {
    let cfg = Cfg::build(fun)?;
    let body = fun.body.as_ref().expect("CFG implies a body");

    // -- prepass: classify every name the body can mention ---------------
    let mut kinds: FxHashMap<String, VarKind> = FxHashMap::default();
    let mut dupes: FxHashSet<String> = FxHashSet::default();
    let mut volatile = globals.volatile.clone();
    let mut array_sizes = globals.array_sizes.clone();
    let mut note_decl = |name: &str, ty: &TySyn, vol_extra: bool| {
        if kinds.insert(name.to_owned(), var_kind(ty)).is_some() {
            dupes.insert(name.to_owned());
        }
        if vol_extra || ty_is_volatile(ty) {
            volatile.insert(name.to_owned());
        }
        if let VarKind::Array(Some(n)) = var_kind(ty) {
            array_sizes.insert(name.to_owned(), n);
        }
    };
    for p in &fun.params {
        if let Some(name) = &p.name {
            note_decl(name, &p.ty, false);
        }
    }
    for_each_decl(body, &mut |v| note_decl(&v.name, &v.ty, false));
    for name in &dupes {
        kinds.remove(name);
    }

    // `&x` passed straight to a known callee whose pointer parameter does
    // not escape is *sanctioned*: the callee's pointee effects are fully
    // modeled at the call site, so taking the address there must not
    // untrack `x`.
    let sanctioned = collect_sanctioned(body, &kinds, summaries);
    let mut address_taken = FxHashSet::default();
    for_each_expr(body, &mut |e| {
        collect_address_taken(e, &sanctioned, &mut address_taken);
    });

    let info = FnInfo {
        func: &fun.name,
        kinds,
        address_taken,
        volatile,
        array_sizes,
        summaries,
    };
    Some((cfg, info))
}

/// Spans of `&ident` expressions appearing directly as an argument to a
/// known callee whose matching pointer parameter does not escape.
fn collect_sanctioned(
    body: &Stmt,
    kinds: &FxHashMap<String, VarKind>,
    summaries: &Summaries,
) -> Vec<Span> {
    let mut out = Vec::new();
    if summaries.is_empty() {
        return out;
    }
    for_each_expr(body, &mut |e| {
        walk_exprs(e, &mut |sub| {
            let ExprKind::Call { callee, args } = &sub.kind else {
                return;
            };
            let ExprKind::Ident(gname) = &callee.unparenthesized().kind else {
                return;
            };
            if kinds.contains_key(gname.as_str()) {
                return;
            }
            let Some(g) = summaries.get(gname) else {
                return;
            };
            for (j, a) in args.iter().enumerate() {
                if j >= g.ptr_escapes.len() || g.ptr_escapes[j] {
                    continue;
                }
                let inner = a.unparenthesized();
                if let ExprKind::Unary {
                    op: UnaryOp::AddrOf,
                    operand,
                } = &inner.kind
                {
                    if matches!(operand.unparenthesized().kind, ExprKind::Ident(_)) {
                        out.push(inner.span);
                    }
                }
            }
        });
    });
    out
}

/// Runs the full per-function suite **intraprocedurally** (empty summary
/// environment: every callee unknown).
pub fn analyze_function(fun: &FunctionDef, globals: &GlobalInfo) -> Vec<Finding> {
    analyze_function_with(fun, globals, &Summaries::default())
}

/// Runs the full per-function suite against a summary environment.
pub fn analyze_function_with(
    fun: &FunctionDef,
    globals: &GlobalInfo,
    summaries: &Summaries,
) -> Vec<Finding> {
    let Some((cfg, info)) = fn_context(fun, globals, summaries) else {
        return Vec::new();
    };
    let body = fun.body.as_ref().expect("CFG implies a body");
    let live = compute_live(&cfg, &info);

    let mut findings = Vec::new();
    uninit_flow(
        &cfg,
        &info,
        &live,
        BTreeMap::new(),
        Some(&mut findings),
        None,
    );
    const_flow(&cfg, fun, &info, &live, Some(&mut findings), None);
    unreachable_pass(&cfg, &info, &live, &mut findings);
    infinite_loop_pass(body, &info, &mut findings);
    findings.sort_by_key(|f| (f.span.lo, f.span.hi, f.analysis));
    findings.dedup();
    findings
}

// ======================================================================
// Liveness under no-return calls
// ======================================================================

/// Nodes reachable from entry when nodes that *definitely* evaluate a
/// call to a known no-return callee keep none of their successors. With
/// an empty summary environment this is exactly [`Cfg::reachable`].
fn compute_live(cfg: &Cfg<'_>, info: &FnInfo<'_>) -> Vec<bool> {
    let cut: Vec<bool> = cfg
        .nodes
        .iter()
        .map(|n| match n.action {
            Action::Decl(v) => v
                .init
                .as_ref()
                .is_some_and(|init| init_calls_noreturn(init, info)),
            Action::Eval(e) | Action::Branch(e) => calls_noreturn(e, info),
            Action::Return(Some(e)) => calls_noreturn(e, info),
            _ => false,
        })
        .collect();
    let mut live = vec![false; cfg.nodes.len()];
    let mut stack = vec![cfg.entry];
    live[cfg.entry] = true;
    while let Some(n) = stack.pop() {
        if cut[n] {
            continue;
        }
        for &s in &cfg.nodes[n].succs {
            if !live[s] {
                live[s] = true;
                stack.push(s);
            }
        }
    }
    live
}

/// Whether evaluating `e` *unconditionally* calls a known callee that
/// cannot return. Conditional positions (`?:` arms, short-circuit right
/// sides, `sizeof` operands) are skipped.
fn calls_noreturn(e: &Expr, info: &FnInfo<'_>) -> bool {
    match &e.kind {
        ExprKind::IntLit { .. }
        | ExprKind::FloatLit { .. }
        | ExprKind::CharLit { .. }
        | ExprKind::StrLit { .. }
        | ExprKind::Ident(_)
        | ExprKind::SizeofExpr(_)
        | ExprKind::SizeofType(_) => false,
        ExprKind::Paren(inner) => calls_noreturn(inner, info),
        ExprKind::Unary { op, operand } => match op {
            UnaryOp::AddrOf if matches!(operand.unparenthesized().kind, ExprKind::Ident(_)) => {
                false
            }
            _ => calls_noreturn(operand, info),
        },
        ExprKind::Binary { op, lhs, rhs } => {
            calls_noreturn(lhs, info) || (!op.is_logical() && calls_noreturn(rhs, info))
        }
        ExprKind::Assign { lhs, rhs, .. } => calls_noreturn(rhs, info) || calls_noreturn(lhs, info),
        ExprKind::Cond { cond, .. } => calls_noreturn(cond, info),
        ExprKind::Call { callee, args } => {
            let callee_eval = match &callee.unparenthesized().kind {
                ExprKind::Ident(_) => false,
                _ => calls_noreturn(callee, info),
            };
            callee_eval
                || args.iter().any(|a| calls_noreturn(a, info))
                || info.callee(callee).is_some_and(|(_, g)| !g.may_return)
        }
        ExprKind::Index { base, index } => {
            calls_noreturn(base, info) || calls_noreturn(index, info)
        }
        ExprKind::Member { base, .. } => calls_noreturn(base, info),
        ExprKind::Cast { expr, .. } => calls_noreturn(expr, info),
        ExprKind::CompoundLit { init, .. } => init_calls_noreturn(init, info),
        ExprKind::Comma { lhs, rhs } => calls_noreturn(lhs, info) || calls_noreturn(rhs, info),
    }
}

fn init_calls_noreturn(init: &Initializer, info: &FnInfo<'_>) -> bool {
    match init {
        Initializer::Expr(e) => calls_noreturn(e, info),
        Initializer::List { items, .. } => items.iter().any(|i| init_calls_noreturn(i, info)),
    }
}

// ======================================================================
// Summary probes
// ======================================================================

/// Facts recorded about a function's *own parameters* while its body is
/// walked with parameters seeded symbolic. Chains are in "this function"
/// coordinates: the first link's span lies in the summarized function.
struct Probe {
    func: String,
    /// Trackable parameter name → position (value demand).
    param_of: FxHashMap<String, usize>,
    /// Pseudo pointee key (`"*name"`) → position, for non-escaping
    /// pointer parameters.
    pseudo_of: FxHashMap<String, usize>,
    /// Tracked kind per position (type-guards the UB probes).
    param_kinds: Vec<Option<VarKind>>,
    demands: Vec<Option<Chain>>,
    ptr_reads: Vec<Option<Chain>>,
    div_params: Vec<Option<Chain>>,
    deref_params: Vec<Option<Chain>>,
    idx_params: Vec<Option<(String, i128, Chain)>>,
}

impl Probe {
    fn new(fun: &FunctionDef, info: &FnInfo<'_>, ptr_escapes: &[bool]) -> Probe {
        let n = fun.params.len();
        let mut p = Probe {
            func: fun.name.clone(),
            param_of: FxHashMap::default(),
            pseudo_of: FxHashMap::default(),
            param_kinds: vec![None; n],
            demands: vec![None; n],
            ptr_reads: vec![None; n],
            div_params: vec![None; n],
            deref_params: vec![None; n],
            idx_params: vec![None; n],
        };
        for (j, param) in fun.params.iter().enumerate() {
            let Some(name) = &param.name else { continue };
            let Some(kind) = info.trackable(name) else {
                continue;
            };
            p.param_kinds[j] = Some(kind);
            p.param_of.insert(name.clone(), j);
            if kind == VarKind::Pointer && !ptr_escapes[j] {
                p.pseudo_of.insert(format!("*{name}"), j);
            }
        }
        p
    }

    fn compose(&self, span: Span, deeper: Option<&Chain>) -> Chain {
        let mut c = vec![ChainLink {
            function: self.func.clone(),
            span,
        }];
        if let Some(d) = deeper {
            c.extend(d.iter().cloned());
        }
        c
    }

    /// Records a definite uninitialized read of a seeded name — a value
    /// demand for parameter names, a pointee read for pseudo keys.
    fn record_read(&mut self, name: &str, span: Span, deeper: Option<&Chain>) {
        if let Some(&j) = self.param_of.get(name) {
            if self.demands[j].is_none() {
                self.demands[j] = Some(self.compose(span, deeper));
            }
        } else if let Some(&j) = self.pseudo_of.get(name) {
            if self.ptr_reads[j].is_none() {
                self.ptr_reads[j] = Some(self.compose(span, deeper));
            }
        }
    }

    fn record_div(&mut self, k: usize, span: Span, deeper: Option<&Chain>) {
        if self.param_kinds.get(k).copied().flatten() == Some(VarKind::Scalar)
            && self.div_params[k].is_none()
        {
            self.div_params[k] = Some(self.compose(span, deeper));
        }
    }

    fn record_deref(&mut self, k: usize, span: Span, deeper: Option<&Chain>) {
        if self.param_kinds.get(k).copied().flatten() == Some(VarKind::Pointer)
            && self.deref_params[k].is_none()
        {
            self.deref_params[k] = Some(self.compose(span, deeper));
        }
    }

    fn record_idx(&mut self, k: usize, arr: &str, size: i128, span: Span, deeper: Option<&Chain>) {
        if self.param_kinds.get(k).copied().flatten() == Some(VarKind::Scalar)
            && self.idx_params[k].is_none()
        {
            self.idx_params[k] = Some((arr.to_owned(), size, self.compose(span, deeper)));
        }
    }
}

// ======================================================================
// Uninitialized-read analysis
// ======================================================================

/// Three-point initialization lattice per variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    Uninit,
    Maybe,
    Init,
}

impl Tri {
    fn join(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::Maybe
        }
    }
}

/// Variable → initialization state. `BTreeMap` keeps joins and equality
/// deterministic; a missing key means "untracked" and joins as `Init`.
/// Pseudo keys `"*name"` track the pointee of a non-escaping pointer
/// parameter during summarization.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InitMap(BTreeMap<String, Tri>);

impl Lattice for InitMap {
    fn join_with(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in &other.0 {
            let joined = match self.0.get(k) {
                Some(cur) => cur.join(*v),
                None => Tri::Init.join(*v),
            };
            if self.0.get(k) != Some(&joined) {
                self.0.insert(k.clone(), joined);
                changed = true;
            }
        }
        let other_map = &other.0;
        for (k, v) in self.0.iter_mut() {
            if !other_map.contains_key(k) {
                let joined = v.join(Tri::Init);
                if *v != joined {
                    *v = joined;
                    changed = true;
                }
            }
        }
        changed
    }
}

struct UninitWalk<'i, 'f> {
    info: &'i FnInfo<'i>,
    st: BTreeMap<String, Tri>,
    sink: Option<&'f mut Vec<Finding>>,
    probe: Option<&'f mut Probe>,
}

impl UninitWalk<'_, '_> {
    fn read(&mut self, name: &str, span: Span, guarded: bool) {
        let Some(&tri) = self.st.get(name) else {
            return;
        };
        if tri != Tri::Init {
            if tri == Tri::Uninit && !guarded {
                if let Some(probe) = self.probe.as_deref_mut() {
                    probe.record_read(name, span, None);
                }
            }
            if self.sink.is_some() {
                let f = if tri == Tri::Uninit && !guarded {
                    self.info.finding(
                        "uninit-read",
                        Severity::Ub,
                        span,
                        format!("read of uninitialized variable `{name}`"),
                    )
                } else {
                    self.info.finding(
                        "possible-uninit-read",
                        Severity::Lint,
                        span,
                        format!("variable `{name}` may be read before it is initialized"),
                    )
                };
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.push(f);
                }
            }
            // One report per defect: promote after the first read so a
            // cascade of uses yields a single finding (and the transfer
            // stays monotone — the promoted value is constant `Init`).
            self.st.insert(name.to_owned(), Tri::Init);
        }
    }

    fn write(&mut self, name: &str) {
        if self.info.trackable(name).is_some() {
            self.st.insert(name.to_owned(), Tri::Init);
        }
    }

    fn decl(&mut self, v: &VarDecl, guarded: bool) {
        if let Some(init) = &v.init {
            self.init_reads(init, guarded);
        }
        if self.info.trackable(&v.name).is_none() {
            self.st.remove(&v.name);
            return;
        }
        let state = if v.init.is_some() || v.storage == Storage::Static {
            Tri::Init
        } else {
            Tri::Uninit
        };
        self.st.insert(v.name.clone(), state);
    }

    fn init_reads(&mut self, init: &Initializer, guarded: bool) {
        match init {
            Initializer::Expr(e) => self.expr(e, guarded),
            Initializer::List { items, .. } => {
                for item in items {
                    self.init_reads(item, guarded);
                }
            }
        }
    }

    /// Reads and writes of one expression, in evaluation order.
    fn expr(&mut self, e: &Expr, guarded: bool) {
        match &e.kind {
            ExprKind::IntLit { .. }
            | ExprKind::FloatLit { .. }
            | ExprKind::CharLit { .. }
            | ExprKind::StrLit { .. }
            | ExprKind::SizeofExpr(_)
            | ExprKind::SizeofType(_) => {}
            ExprKind::Ident(name) => self.read(name, e.span, guarded),
            ExprKind::Paren(inner) => self.expr(inner, guarded),
            ExprKind::Unary { op, operand } => match op {
                UnaryOp::AddrOf => {
                    // `&x` doesn't read `x`'s value (and address-taken
                    // names are untracked anyway); `&a[i]` still reads `i`.
                    if !matches!(operand.unparenthesized().kind, ExprKind::Ident(_)) {
                        self.expr(operand, guarded);
                    }
                }
                UnaryOp::Deref => {
                    self.expr(operand, guarded);
                    self.pointee_read_site(operand, e.span, guarded);
                }
                _ if op.is_inc_dec() => {
                    if let ExprKind::Ident(name) = &operand.unparenthesized().kind {
                        self.read(name, operand.span, guarded);
                        self.write(&name.clone());
                    } else {
                        self.expr(operand, guarded);
                    }
                }
                _ => self.expr(operand, guarded),
            },
            ExprKind::Binary { op, lhs, rhs } => {
                self.expr(lhs, guarded);
                // The RHS of `&&`/`||` may never execute: an uninit read
                // there is only *possible*.
                self.expr(rhs, guarded || op.is_logical());
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr(rhs, guarded);
                if let ExprKind::Ident(name) = &lhs.unparenthesized().kind {
                    let name = name.clone();
                    if op.is_some() {
                        self.read(&name, lhs.span, guarded);
                    }
                    self.write(&name);
                } else {
                    self.write_target(lhs, guarded, op.is_some());
                }
            }
            ExprKind::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr(cond, guarded);
                self.expr(then_expr, true);
                self.expr(else_expr, true);
            }
            ExprKind::Call { callee, args } => {
                // A plain-identifier callee is a function designator, not
                // a variable read — unless it names a tracked local
                // (a function pointer).
                match &callee.unparenthesized().kind {
                    ExprKind::Ident(name) if !self.info.kinds.contains_key(name) => {}
                    _ => self.expr(callee, guarded),
                }
                let info = self.info;
                let known = info.callee(callee);
                for (j, a) in args.iter().enumerate() {
                    if let Some((gname, g)) = known {
                        if j < g.params.len() && self.call_arg(gname, g, j, a, guarded) {
                            continue;
                        }
                    }
                    self.expr(a, guarded);
                }
            }
            ExprKind::Index { base, index } => {
                self.expr(index, guarded);
                self.base_read(base, guarded);
                self.pointee_read_site(base, e.span, guarded);
            }
            ExprKind::Member { base, arrow, .. } => {
                if *arrow {
                    self.expr(base, guarded);
                } else {
                    self.base_read(base, guarded);
                }
            }
            ExprKind::Cast { expr, .. } => self.expr(expr, guarded),
            ExprKind::CompoundLit { init, .. } => self.init_reads(init, guarded),
            ExprKind::Comma { lhs, rhs } => {
                self.expr(lhs, guarded);
                self.expr(rhs, guarded);
            }
        }
    }

    /// Call-site transfer for one argument of a known callee, consuming
    /// the callee's summary. Returns `true` when the argument is fully
    /// handled (the default evaluation walk must not run).
    fn call_arg(&mut self, gname: &str, g: &FnSummary, j: usize, a: &Expr, guarded: bool) -> bool {
        let inner = a.unparenthesized();
        match &inner.kind {
            // `&x` out-argument to a non-escaping pointer parameter:
            // model the callee's pointee read/write against `x` itself.
            ExprKind::Unary {
                op: UnaryOp::AddrOf,
                operand,
            } => {
                if let ExprKind::Ident(x) = &operand.unparenthesized().kind {
                    if !g.ptr_escapes[j] && self.info.trackable(x).is_some() {
                        let x = x.clone();
                        if let Some(chain) = &g.ptr_reads[j] {
                            self.pointee_read_via(gname, &x, inner.span, chain, guarded);
                        }
                        if g.ptr_writes[j] {
                            self.st.insert(x, Tri::Init);
                        } else if let Some(&t) = self.st.get(&x) {
                            // Maybe-written by the callee.
                            self.st.insert(x, t.join(Tri::Init));
                        }
                        return true;
                    }
                }
                false
            }
            ExprKind::Ident(x) => {
                // By-value demand: the read happens here (argument
                // evaluation), but a known callee read lets the finding
                // carry a chain to where the value is actually used.
                if !guarded && self.st.get(x.as_str()) == Some(&Tri::Uninit) {
                    if let Some(chain) = &g.demands[j] {
                        let x = x.clone();
                        if let Some(probe) = self.probe.as_deref_mut() {
                            probe.record_read(&x, inner.span, Some(chain));
                        }
                        if self.sink.is_some() {
                            let mut f = self.info.finding(
                                "uninit-read",
                                Severity::Ub,
                                inner.span,
                                format!("read of uninitialized variable `{x}`"),
                            );
                            f.chain = chain.clone();
                            if let Some(sink) = self.sink.as_deref_mut() {
                                sink.push(f);
                            }
                        }
                        self.st.insert(x, Tri::Init);
                    }
                }
                // Straight-through pointer parameter (summarization
                // only: pseudo keys exist only with a seeded entry).
                let pseudo = format!("*{x}");
                if self.st.contains_key(pseudo.as_str()) && !g.ptr_escapes[j] {
                    if let Some(chain) = &g.ptr_reads[j] {
                        if self.st.get(pseudo.as_str()) == Some(&Tri::Uninit) && !guarded {
                            if let Some(probe) = self.probe.as_deref_mut() {
                                probe.record_read(&pseudo, inner.span, Some(chain));
                            }
                        }
                        self.st.insert(pseudo.clone(), Tri::Init);
                    }
                    if g.ptr_writes[j] {
                        self.st.insert(pseudo, Tri::Init);
                    } else if let Some(&t) = self.st.get(pseudo.as_str()) {
                        self.st.insert(pseudo, t.join(Tri::Init));
                    }
                }
                // The default walk still evaluates (reads) `x` itself.
                false
            }
            _ => false,
        }
    }

    /// A read of `x`'s storage performed *inside* callee `gname` through
    /// a sanctioned `&x` argument. Mirrors [`Self::read`], with a
    /// chain-carrying message naming the callee.
    fn pointee_read_via(&mut self, gname: &str, x: &str, span: Span, chain: &Chain, guarded: bool) {
        let Some(&tri) = self.st.get(x) else {
            return;
        };
        if tri == Tri::Init {
            return;
        }
        if tri == Tri::Uninit && !guarded {
            if let Some(probe) = self.probe.as_deref_mut() {
                probe.record_read(x, span, Some(chain));
            }
        }
        if self.sink.is_some() {
            let mut f = if tri == Tri::Uninit && !guarded {
                self.info.finding(
                    "uninit-read",
                    Severity::Ub,
                    span,
                    format!("`{x}` is read by `{gname}` before it is initialized"),
                )
            } else {
                self.info.finding(
                    "possible-uninit-read",
                    Severity::Lint,
                    span,
                    format!("`{x}` may be read by `{gname}` before it is initialized"),
                )
            };
            f.chain = chain.clone();
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.push(f);
            }
        }
        self.st.insert(x.to_owned(), Tri::Init);
    }

    /// A read through `*p` / `p[i]` of the pseudo pointee key, active
    /// only while summarizing (pseudo keys never enter a caller's map).
    fn pointee_read_site(&mut self, ptr: &Expr, span: Span, guarded: bool) {
        if let ExprKind::Ident(p) = &ptr.unparenthesized().kind {
            let pseudo = format!("*{p}");
            if self.st.contains_key(pseudo.as_str()) {
                self.read(&pseudo, span, guarded);
            }
        }
    }

    /// A write through `*p` / `p[i]` of the pseudo pointee key; compound
    /// assignments read first.
    fn pointee_write_site(&mut self, ptr: &Expr, span: Span, guarded: bool, compound: bool) {
        if let ExprKind::Ident(p) = &ptr.unparenthesized().kind {
            let pseudo = format!("*{p}");
            if self.st.contains_key(pseudo.as_str()) {
                if compound {
                    self.read(&pseudo, span, guarded);
                }
                self.st.insert(pseudo, Tri::Init);
            }
        }
    }

    /// A base expression in a place where an *array* designator would not
    /// be a value read (`a[i]`, `s.f`) but a pointer or anything more
    /// complex still is.
    fn base_read(&mut self, base: &Expr, guarded: bool) {
        match &base.unparenthesized().kind {
            ExprKind::Ident(name) => {
                if matches!(self.info.kinds.get(name), Some(VarKind::Pointer)) {
                    self.read(&name.clone(), base.span, guarded);
                }
            }
            _ => self.expr(base, guarded),
        }
    }

    /// Evaluation effects of a non-identifier assignment target: the
    /// stored-to location isn't read, but every address computation is.
    fn write_target(&mut self, lhs: &Expr, guarded: bool, compound: bool) {
        match &lhs.unparenthesized().kind {
            ExprKind::Ident(_) => {}
            ExprKind::Index { base, index } => {
                self.expr(index, guarded);
                self.base_read(base, guarded);
                self.pointee_write_site(base, lhs.span, guarded, compound);
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                operand,
            } => {
                self.expr(operand, guarded);
                self.pointee_write_site(operand, lhs.span, guarded, compound);
            }
            ExprKind::Member { base, arrow, .. } => {
                if *arrow {
                    self.expr(base, guarded);
                } else {
                    self.write_target(base, guarded, compound);
                }
            }
            _ => self.expr(lhs, guarded),
        }
    }
}

/// Runs the uninitialized-read dataflow with a chosen entry state.
/// Returns the exit node's in-state (the summarization caller inspects
/// pseudo keys to derive definite-write facts); `None` when the exit is
/// unreachable.
fn uninit_flow(
    cfg: &Cfg<'_>,
    info: &FnInfo<'_>,
    live: &[bool],
    entry: BTreeMap<String, Tri>,
    mut findings: Option<&mut Vec<Finding>>,
    mut probe: Option<&mut Probe>,
) -> Option<BTreeMap<String, Tri>> {
    let apply = |node: usize,
                 st: &InitMap,
                 sink: Option<&mut Vec<Finding>>,
                 probe: Option<&mut Probe>|
     -> InitMap {
        let mut w = UninitWalk {
            info,
            st: st.0.clone(),
            sink,
            probe,
        };
        match cfg.nodes[node].action {
            Action::Decl(v) => w.decl(v, false),
            Action::Eval(e) | Action::Branch(e) => w.expr(e, false),
            Action::Return(Some(e)) => w.expr(e, false),
            _ => {}
        }
        InitMap(w.st)
    };
    let in_states = forward(cfg, InitMap(entry), |node, st| apply(node, st, None, None));
    for (node, st) in in_states.iter().enumerate() {
        if !live[node] {
            continue;
        }
        if let Some(st) = st {
            apply(node, st, findings.as_deref_mut(), probe.as_deref_mut());
        }
    }
    in_states.into_iter().nth(cfg.exit).flatten().map(|m| m.0)
}

// ======================================================================
// Constant-propagation checks: div/mod by zero, OOB indexing, null deref
// ======================================================================

/// A tracked value: a known constant (pointers use `0` for null) or the
/// still-unmodified value of the enclosing function's parameter `k`.
/// Symbolic parameter values never fire findings — they fire *probes*,
/// which become findings in callers that pin the argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CVal {
    Const(i128),
    Param(usize),
}

/// Variable → known value. Join is set intersection with value
/// agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ConstMap(BTreeMap<String, CVal>);

impl Lattice for ConstMap {
    fn join_with(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.retain(|k, v| other.0.get(k) == Some(v));
        before != self.0.len()
    }
}

struct ConstWalk<'i, 'f> {
    info: &'i FnInfo<'i>,
    st: BTreeMap<String, CVal>,
    sink: Option<&'f mut Vec<Finding>>,
    probe: Option<&'f mut Probe>,
}

impl ConstWalk<'_, '_> {
    fn eval(&self, e: &Expr) -> Option<CVal> {
        match &e.kind {
            ExprKind::IntLit { value, .. } => Some(CVal::Const(*value)),
            ExprKind::CharLit { value } => Some(CVal::Const(*value as i128)),
            ExprKind::Ident(name) => self.st.get(name).copied(),
            ExprKind::Paren(inner) => self.eval(inner),
            ExprKind::Unary { op, operand } => {
                let v = self.eval(operand)?;
                match (op, v) {
                    (UnaryOp::Plus, v) => Some(v),
                    (UnaryOp::Minus, CVal::Const(v)) => v.checked_neg().map(CVal::Const),
                    (UnaryOp::Not, CVal::Const(v)) => Some(CVal::Const((v == 0) as i128)),
                    (UnaryOp::BitNot, CVal::Const(v)) => Some(CVal::Const(!v)),
                    _ => None,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => match (self.eval(lhs)?, self.eval(rhs)?) {
                (CVal::Const(l), CVal::Const(r)) => {
                    crate::cfg::eval_binary(*op, l, r).map(CVal::Const)
                }
                _ => None,
            },
            ExprKind::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                let CVal::Const(c) = self.eval(cond)? else {
                    return None;
                };
                if c != 0 {
                    self.eval(then_expr)
                } else {
                    self.eval(else_expr)
                }
            }
            // A known callee's constant or pass-through return folds.
            // Safe to evaluate without walking: tracked variables cannot
            // be mutated by a call (sanctioned `&x` out-args are killed
            // by the call's own transfer before later facts are used).
            ExprKind::Call { callee, args } => {
                let (_, g) = self.info.callee(callee)?;
                if let Some(c) = g.returns_const {
                    Some(CVal::Const(c))
                } else if let Some(i) = g.returns_param {
                    args.get(i).and_then(|a| self.eval(a))
                } else {
                    None
                }
            }
            // Casts may narrow and sizeof is platform-shaped: modeling
            // either risks a false positive, so neither folds.
            _ => None,
        }
    }

    fn emit(&mut self, analysis: &'static str, span: Span, msg: String, chain: Chain) {
        if self.sink.is_some() {
            let mut f = self.info.finding(analysis, Severity::Ub, span, msg);
            f.chain = chain;
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.push(f);
            }
        }
    }

    fn set(&mut self, name: &str, val: Option<CVal>) {
        if self.info.trackable(name).is_none() {
            return;
        }
        match val {
            Some(v) => {
                self.st.insert(name.to_owned(), v);
            }
            None => {
                self.st.remove(name);
            }
        }
    }

    fn decl(&mut self, v: &VarDecl) {
        match &v.init {
            Some(Initializer::Expr(e)) => {
                self.expr(e, false);
                let val = self.eval(e);
                self.set(&v.name, val);
            }
            Some(Initializer::List { items, .. }) => {
                for item in items {
                    self.init_effects(item);
                }
                self.set(&v.name, None);
            }
            None => {
                // Statics are zero-initialized; automatics are unknown.
                let val = (v.storage == Storage::Static).then_some(CVal::Const(0));
                self.set(&v.name, val);
            }
        }
    }

    fn init_effects(&mut self, init: &Initializer) {
        match init {
            Initializer::Expr(e) => self.expr(e, false),
            Initializer::List { items, .. } => {
                for i in items {
                    self.init_effects(i);
                }
            }
        }
    }

    fn div_check(&mut self, op: BinaryOp, rhs: &Expr, span: Span, guarded: bool) {
        if guarded {
            return;
        }
        match self.eval(rhs) {
            Some(CVal::Const(0)) => {
                let what = if op == BinaryOp::Div {
                    "division"
                } else {
                    "modulo"
                };
                self.emit(
                    "div-by-zero",
                    span,
                    format!("{what} by zero: the divisor is always 0"),
                    Vec::new(),
                );
            }
            Some(CVal::Param(k)) => {
                if let Some(probe) = self.probe.as_deref_mut() {
                    probe.record_div(k, span, None);
                }
            }
            _ => {}
        }
    }

    /// Checks and effects of one expression, in evaluation order. In
    /// `guarded` position (a `?:` arm, a short-circuit RHS) the walk
    /// still applies writes but reports nothing: whether the arm executes
    /// is exactly what the guard decides, and the lattice carries no
    /// relational facts to decide it with.
    fn expr(&mut self, e: &Expr, guarded: bool) {
        match &e.kind {
            ExprKind::IntLit { .. }
            | ExprKind::FloatLit { .. }
            | ExprKind::CharLit { .. }
            | ExprKind::StrLit { .. }
            | ExprKind::SizeofExpr(_)
            | ExprKind::SizeofType(_)
            | ExprKind::Ident(_) => {}
            ExprKind::Paren(inner) => self.expr(inner, guarded),
            ExprKind::Unary { op, operand } => match op {
                UnaryOp::Deref => {
                    self.expr(operand, guarded);
                    self.null_check(operand, e.span, guarded);
                }
                UnaryOp::AddrOf => {
                    if !matches!(operand.unparenthesized().kind, ExprKind::Ident(_)) {
                        self.expr(operand, guarded);
                    }
                }
                _ if op.is_inc_dec() => {
                    if let ExprKind::Ident(name) = &operand.unparenthesized().kind {
                        let name = name.clone();
                        let delta = if matches!(op, UnaryOp::PreInc | UnaryOp::PostInc) {
                            1
                        } else {
                            -1
                        };
                        let val = match self.st.get(&name) {
                            Some(CVal::Const(v)) => v.checked_add(delta).map(CVal::Const),
                            _ => None,
                        };
                        self.set(&name, val);
                    } else {
                        self.expr(operand, guarded);
                    }
                }
                _ => self.expr(operand, guarded),
            },
            ExprKind::Binary { op, lhs, rhs } => {
                self.expr(lhs, guarded);
                if op.is_logical() {
                    // Vars tested by the LHS may be refined inside the
                    // RHS (`p && *p`): drop them before walking it.
                    let saved = self.kill_mentioned(lhs);
                    self.expr(rhs, true);
                    self.restore(saved);
                } else {
                    self.expr(rhs, guarded);
                    if matches!(op, BinaryOp::Div | BinaryOp::Rem) {
                        self.div_check(*op, rhs, e.span, guarded);
                    }
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr(rhs, guarded);
                if let ExprKind::Ident(name) = &lhs.unparenthesized().kind {
                    let name = name.clone();
                    let val = match op {
                        None => self.eval(rhs),
                        Some(bop) => {
                            if matches!(bop, BinaryOp::Div | BinaryOp::Rem) {
                                self.div_check(*bop, rhs, e.span, guarded);
                            }
                            match (self.st.get(&name).copied(), self.eval(rhs)) {
                                (Some(CVal::Const(l)), Some(CVal::Const(r))) => {
                                    crate::cfg::eval_binary(*bop, l, r).map(CVal::Const)
                                }
                                _ => None,
                            }
                        }
                    };
                    self.set(&name, val);
                } else {
                    self.write_target(lhs, guarded);
                }
            }
            ExprKind::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr(cond, guarded);
                let saved = self.kill_mentioned(cond);
                self.expr(then_expr, true);
                self.expr(else_expr, true);
                self.restore(saved);
            }
            ExprKind::Call { callee, args } => {
                match &callee.unparenthesized().kind {
                    ExprKind::Ident(_) => {}
                    _ => self.expr(callee, guarded),
                }
                let info = self.info;
                let known = info.callee(callee);
                for (j, a) in args.iter().enumerate() {
                    self.expr(a, guarded);
                    if let Some((gname, g)) = known {
                        if j < g.params.len() {
                            self.call_arg_checks(gname, g, j, a, e.span, guarded);
                        }
                    }
                }
                if let Some((_, g)) = known {
                    // A non-escaping `&x` out-arg may be written through:
                    // the callee can change `x`, so constant facts die.
                    for (j, a) in args.iter().enumerate() {
                        if j >= g.ptr_escapes.len() || g.ptr_escapes[j] {
                            continue;
                        }
                        if let ExprKind::Unary {
                            op: UnaryOp::AddrOf,
                            operand,
                        } = &a.unparenthesized().kind
                        {
                            if let ExprKind::Ident(x) = &operand.unparenthesized().kind {
                                self.st.remove(x.as_str());
                            }
                        }
                    }
                }
            }
            ExprKind::Index { base, index } => {
                self.expr(index, guarded);
                self.expr_base(base, guarded);
                self.index_check(base, index, e.span, guarded);
            }
            ExprKind::Member { base, arrow, .. } => {
                if *arrow {
                    self.expr(base, guarded);
                    self.null_check(base, e.span, guarded);
                } else {
                    self.expr_base(base, guarded);
                }
            }
            ExprKind::Cast { expr, .. } => self.expr(expr, guarded),
            ExprKind::CompoundLit { init, .. } => self.init_effects(init),
            ExprKind::Comma { lhs, rhs } => {
                self.expr(lhs, guarded);
                self.expr(rhs, guarded);
            }
        }
    }

    /// Consumes a known callee's conditional-UB probes against one
    /// argument: a pinned bad constant fires a finding at the call site
    /// (with the callee's chain); a still-symbolic own parameter
    /// propagates the probe outward with this call prepended.
    fn call_arg_checks(
        &mut self,
        gname: &str,
        g: &FnSummary,
        j: usize,
        a: &Expr,
        call_span: Span,
        guarded: bool,
    ) {
        if guarded {
            return;
        }
        let v = self.eval(a);
        let n = j + 1;
        if let Some(chain) = &g.div_params[j] {
            match v {
                Some(CVal::Const(0)) => {
                    self.emit(
                        "div-by-zero",
                        call_span,
                        format!("call to `{gname}` divides by argument {n}, which is always 0"),
                        chain.clone(),
                    );
                }
                Some(CVal::Param(k)) => {
                    if let Some(probe) = self.probe.as_deref_mut() {
                        probe.record_div(k, call_span, Some(chain));
                    }
                }
                _ => {}
            }
        }
        if let Some(chain) = &g.deref_params[j] {
            match v {
                Some(CVal::Const(0)) => {
                    self.emit(
                        "null-deref",
                        call_span,
                        format!(
                            "call to `{gname}` dereferences argument {n}, which is always null"
                        ),
                        chain.clone(),
                    );
                }
                Some(CVal::Param(k)) => {
                    if let Some(probe) = self.probe.as_deref_mut() {
                        probe.record_deref(k, call_span, Some(chain));
                    }
                }
                _ => {}
            }
        }
        if let Some((arr, size, chain)) = &g.idx_params[j] {
            match v {
                Some(CVal::Const(i)) if i < 0 || i >= *size => {
                    self.emit(
                        "oob-index",
                        call_span,
                        format!(
                            "call to `{gname}` indexes array `{arr}` of {size} elements with \
                             {i} (argument {n})"
                        ),
                        chain.clone(),
                    );
                }
                Some(CVal::Param(k)) => {
                    if let Some(probe) = self.probe.as_deref_mut() {
                        probe.record_idx(k, arr, *size, call_span, Some(chain));
                    }
                }
                _ => {}
            }
        }
    }

    fn expr_base(&mut self, base: &Expr, guarded: bool) {
        if !matches!(base.unparenthesized().kind, ExprKind::Ident(_)) {
            self.expr(base, guarded);
        }
    }

    fn null_check(&mut self, pointer: &Expr, span: Span, guarded: bool) {
        if guarded {
            return;
        }
        let inner = pointer.unparenthesized();
        match &inner.kind {
            ExprKind::Ident(name) => {
                if matches!(self.info.kinds.get(name), Some(VarKind::Pointer)) {
                    match self.st.get(name) {
                        Some(CVal::Const(0)) => {
                            let name = name.clone();
                            self.emit(
                                "null-deref",
                                span,
                                format!("dereference of null pointer `{name}`"),
                                Vec::new(),
                            );
                        }
                        Some(&CVal::Param(k)) => {
                            if let Some(probe) = self.probe.as_deref_mut() {
                                probe.record_deref(k, span, None);
                            }
                        }
                        _ => {}
                    }
                }
            }
            // `*f()` where the callee provably returns a null pointer.
            ExprKind::Call { callee, .. } => {
                let info = self.info;
                let Some((gname, g)) = info.callee(callee) else {
                    return;
                };
                if !g.ret_is_pointer {
                    return;
                }
                match self.eval(inner) {
                    Some(CVal::Const(0)) => {
                        let gname = gname.to_owned();
                        self.emit(
                            "null-deref",
                            span,
                            format!("dereference of null pointer returned by `{gname}`"),
                            Vec::new(),
                        );
                    }
                    Some(CVal::Param(k)) => {
                        if let Some(probe) = self.probe.as_deref_mut() {
                            probe.record_deref(k, span, None);
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn index_check(&mut self, base: &Expr, index: &Expr, span: Span, guarded: bool) {
        if guarded {
            return;
        }
        let ExprKind::Ident(name) = &base.unparenthesized().kind else {
            return;
        };
        if matches!(self.info.kinds.get(name), Some(VarKind::Pointer)) {
            self.null_check(base, span, guarded);
            return;
        }
        let Some(&size) = self.info.array_sizes.get(name) else {
            return;
        };
        match self.eval(index) {
            Some(CVal::Const(i)) if i < 0 || i >= size => {
                let name = name.clone();
                self.emit(
                    "oob-index",
                    span,
                    format!("index {i} is out of bounds for array `{name}` of {size} elements"),
                    Vec::new(),
                );
            }
            Some(CVal::Param(k)) => {
                let name = name.clone();
                if let Some(probe) = self.probe.as_deref_mut() {
                    probe.record_idx(k, &name, size, span, None);
                }
            }
            _ => {}
        }
    }

    fn write_target(&mut self, lhs: &Expr, guarded: bool) {
        match &lhs.unparenthesized().kind {
            ExprKind::Ident(_) => {}
            ExprKind::Index { base, index } => {
                self.expr(index, guarded);
                self.expr_base(base, guarded);
                self.index_check(base, index, lhs.span, guarded);
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                operand,
            } => {
                self.expr(operand, guarded);
                self.null_check(operand, lhs.span, guarded);
            }
            ExprKind::Member { base, arrow, .. } => {
                if *arrow {
                    self.expr(base, guarded);
                    self.null_check(base, lhs.span, guarded);
                } else {
                    self.write_target(base, guarded);
                }
            }
            _ => self.expr(lhs, guarded),
        }
    }

    /// Drops every tracked variable mentioned in `e` from the state,
    /// returning the removed entries for [`Self::restore`].
    fn kill_mentioned(&mut self, e: &Expr) -> Vec<(String, CVal)> {
        let mut names = FxHashSet::default();
        collect_idents(e, &mut names);
        let mut saved = Vec::new();
        for n in names {
            if let Some(v) = self.st.remove(&n) {
                saved.push((n, v));
            }
        }
        saved
    }

    fn restore(&mut self, saved: Vec<(String, CVal)>) {
        for (n, v) in saved {
            // Writes inside the guarded region win over the saved value.
            self.st.entry(n).or_insert(v);
        }
    }
}

/// Entry state for the constant pass: every trackable parameter starts
/// as its own symbolic [`CVal::Param`]. Symbolic values never fire
/// findings directly, so the seeding is invisible intraprocedurally —
/// it exists to detect parameter flow into UB sites (probes) and
/// pass-through returns.
fn const_entry(fun: &FunctionDef, info: &FnInfo<'_>) -> BTreeMap<String, CVal> {
    let mut entry = BTreeMap::new();
    for (j, p) in fun.params.iter().enumerate() {
        if let Some(name) = &p.name {
            if info.trackable(name).is_some() {
                entry.insert(name.clone(), CVal::Param(j));
            }
        }
    }
    entry
}

/// Runs the constant dataflow; returns the per-node in-states (the
/// summarization caller evaluates live `return` expressions against
/// them).
fn const_flow(
    cfg: &Cfg<'_>,
    fun: &FunctionDef,
    info: &FnInfo<'_>,
    live: &[bool],
    mut findings: Option<&mut Vec<Finding>>,
    mut probe: Option<&mut Probe>,
) -> Vec<Option<ConstMap>> {
    let apply = |node: usize,
                 st: &ConstMap,
                 sink: Option<&mut Vec<Finding>>,
                 probe: Option<&mut Probe>|
     -> ConstMap {
        let mut w = ConstWalk {
            info,
            st: st.0.clone(),
            sink,
            probe,
        };
        match cfg.nodes[node].action {
            Action::Decl(v) => w.decl(v),
            Action::Eval(e) => w.expr(e, false),
            Action::Branch(e) => {
                w.expr(e, false);
                // Path-insensitive refinement: a branch *distinguishes*
                // the values it tests, so constancy of any mentioned
                // variable no longer holds uniformly on the out-edges.
                // Dropping them trades recall for zero guarded false
                // positives (`if (x != 0) y = 5 / x;`).
                let _ = w.kill_mentioned(e);
            }
            Action::Return(Some(e)) => w.expr(e, false),
            _ => {}
        }
        ConstMap(w.st)
    };
    let in_states = forward(cfg, ConstMap(const_entry(fun, info)), |node, st| {
        apply(node, st, None, None)
    });
    for (node, st) in in_states.iter().enumerate() {
        if !live[node] {
            continue;
        }
        if let Some(st) = st {
            apply(node, st, findings.as_deref_mut(), probe.as_deref_mut());
        }
    }
    in_states
}

// ======================================================================
// Unreachable code
// ======================================================================

fn unreachable_pass(cfg: &Cfg<'_>, info: &FnInfo<'_>, live: &[bool], findings: &mut Vec<Finding>) {
    let mut dead: Vec<Span> = cfg
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| !live[*i] && n.action.is_source())
        .map(|(_, n)| n.span)
        .collect();
    if dead.is_empty() {
        return;
    }
    dead.sort_by_key(|s| (s.lo, s.hi));
    let count = dead.len();
    let plural = if count == 1 { "" } else { "s" };
    findings.push(info.finding(
        "unreachable-code",
        Severity::Lint,
        dead[0],
        format!("unreachable code: {count} statement{plural} can never execute"),
    ));
}

// ======================================================================
// Infinite loops without side effects
// ======================================================================

fn infinite_loop_pass(body: &Stmt, info: &FnInfo<'_>, findings: &mut Vec<Finding>) {
    walk_stmts(body, &mut |s| {
        let (cond, loop_body) = match &s.kind {
            StmtKind::While { cond, body } => (Some(cond), body),
            StmtKind::DoWhile { body, cond } => (Some(cond), body),
            StmtKind::For { cond, body, .. } => (cond.as_ref(), body),
            _ => return,
        };
        let const_true = match cond {
            None => true,
            Some(c) => matches!(syntactic_const(c), Some(v) if v != 0),
        };
        if const_true && !makes_progress(loop_body, info, true) {
            findings.push(
                info.finding(
                    "infinite-loop",
                    Severity::Ub,
                    s.span,
                    "infinite loop with a constant-true condition and no observable side effects"
                        .to_owned(),
                ),
            );
        }
    });
}

/// Whether executing `s` could let a constant-true loop terminate or be
/// observed: a call (to an unknown, observable, or no-return callee — a
/// summarized pure callee that returns is **not** progress), a volatile
/// access, a `return`, a `goto`, or — when `breakable` (not inside a
/// nested loop or switch) — a `break`.
fn makes_progress(s: &Stmt, info: &FnInfo<'_>, breakable: bool) -> bool {
    let expr_has_progress = |e: &Expr| -> bool {
        let mut found = false;
        walk_exprs(e, &mut |sub| match &sub.kind {
            ExprKind::Call { callee, .. } => match info.callee(callee) {
                Some((_, g)) => {
                    if g.observable || !g.may_return {
                        found = true;
                    }
                }
                None => found = true,
            },
            ExprKind::Ident(name) if info.volatile.contains(name) => found = true,
            _ => {}
        });
        found
    };
    let init_has_progress = |init: &Initializer| -> bool {
        let mut stack = vec![init];
        while let Some(i) = stack.pop() {
            match i {
                Initializer::Expr(e) => {
                    if expr_has_progress(e) {
                        return true;
                    }
                }
                Initializer::List { items, .. } => stack.extend(items.iter()),
            }
        }
        false
    };
    match &s.kind {
        StmtKind::Compound(items) => items.iter().any(|item| match item {
            BlockItem::Decl(group) => group
                .vars
                .iter()
                .any(|v| v.init.as_ref().is_some_and(init_has_progress)),
            BlockItem::Stmt(st) => makes_progress(st, info, breakable),
        }),
        StmtKind::Expr(e) => expr_has_progress(e),
        StmtKind::Null => false,
        StmtKind::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            expr_has_progress(cond)
                || makes_progress(then_stmt, info, breakable)
                || else_stmt
                    .as_ref()
                    .is_some_and(|e| makes_progress(e, info, breakable))
        }
        StmtKind::While { cond, body } => {
            expr_has_progress(cond) || makes_progress(body, info, false)
        }
        StmtKind::DoWhile { body, cond } => {
            expr_has_progress(cond) || makes_progress(body, info, false)
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            init.as_ref().is_some_and(|i| match i.as_ref() {
                ForInit::Decl(group) => group
                    .vars
                    .iter()
                    .any(|v| v.init.as_ref().is_some_and(init_has_progress)),
                ForInit::Expr(e) => expr_has_progress(e),
            }) || cond.as_ref().is_some_and(&expr_has_progress)
                || step.as_ref().is_some_and(&expr_has_progress)
                || makes_progress(body, info, false)
        }
        StmtKind::Switch { cond, body } => {
            expr_has_progress(cond) || makes_progress(body, info, false)
        }
        StmtKind::Case { stmt, .. } | StmtKind::Default { stmt } | StmtKind::Label { stmt, .. } => {
            makes_progress(stmt, info, breakable)
        }
        // A goto can leave the loop; resolving whether its target is
        // inside would need label analysis, so assume it escapes.
        StmtKind::Goto { .. } => true,
        StmtKind::Break => breakable,
        StmtKind::Continue => false,
        StmtKind::Return(_) => true,
    }
}

// ======================================================================
// Summarization
// ======================================================================

/// Summarizes one function definition against an environment of
/// already-summarized callees. Functions without a body (or that fail
/// CFG construction) get the fully conservative summary.
pub(crate) fn summarize_function(
    fun: &FunctionDef,
    globals: &GlobalInfo,
    env: &Summaries,
) -> FnSummary {
    let n = fun.params.len();
    let mut s = FnSummary {
        params: fun.params.iter().map(|p| p.name.clone()).collect(),
        demands: vec![None; n],
        ptr_reads: vec![None; n],
        ptr_writes: vec![false; n],
        ptr_escapes: vec![true; n],
        div_params: vec![None; n],
        deref_params: vec![None; n],
        idx_params: vec![None; n],
        returns_const: None,
        returns_param: None,
        ret_is_pointer: fun.ret_ty.is_pointer(),
        observable: true,
        may_return: true,
    };
    let Some((cfg, info)) = fn_context(fun, globals, env) else {
        return s;
    };
    let body = fun.body.as_ref().expect("CFG implies a body");

    // Escape analysis: a pointer parameter keeps pointee facts only when
    // every occurrence of its name is a sanctioned pointee access.
    for (j, p) in fun.params.iter().enumerate() {
        if let Some(name) = &p.name {
            if info.trackable(name) == Some(VarKind::Pointer) {
                s.ptr_escapes[j] = param_escapes(body, name, &info);
            }
        }
    }

    let live = compute_live(&cfg, &info);
    s.may_return = live[cfg.exit];
    s.observable = is_observable(body, &info);

    let mut probe = Probe::new(fun, &info, &s.ptr_escapes);

    // Demand pass: parameters (and pointee pseudo keys) seeded Uninit.
    let mut entry = BTreeMap::new();
    for name in probe.param_of.keys().chain(probe.pseudo_of.keys()) {
        entry.insert(name.clone(), Tri::Uninit);
    }
    let exit_state = uninit_flow(&cfg, &info, &live, entry, None, Some(&mut probe));
    if let Some(exit_state) = exit_state {
        for (pseudo, &j) in &probe.pseudo_of {
            // `Init` at exit means every path that *returns* initialized
            // (or already consumed) the pointee — sound to suppress
            // caller-side reads after the call, exactly as the
            // intraprocedural promote-after-first-read rule would.
            if exit_state.get(pseudo.as_str()) == Some(&Tri::Init) {
                s.ptr_writes[j] = true;
            }
        }
    }

    // Probe pass: parameters seeded symbolic; also yields return facts.
    let in_states = const_flow(&cfg, fun, &info, &live, None, Some(&mut probe));
    collect_returns(&cfg, &info, &live, &in_states, &mut s);

    s.demands = probe.demands;
    s.ptr_reads = probe.ptr_reads;
    s.div_params = probe.div_params;
    s.deref_params = probe.deref_params;
    s.idx_params = probe.idx_params;
    s
}

/// Whether pointer parameter `name` escapes the summary's view: any
/// occurrence outside a direct dereference, index base, or non-escaping
/// argument position of a known callee.
fn param_escapes(body: &Stmt, name: &str, info: &FnInfo<'_>) -> bool {
    let mut sanctioned: Vec<Span> = Vec::new();
    for_each_expr(body, &mut |e| {
        walk_exprs(e, &mut |sub| match &sub.kind {
            ExprKind::Unary {
                op: UnaryOp::Deref,
                operand,
            } => {
                let inner = operand.unparenthesized();
                if matches!(&inner.kind, ExprKind::Ident(n) if n == name) {
                    sanctioned.push(inner.span);
                }
            }
            ExprKind::Index { base, .. } => {
                let inner = base.unparenthesized();
                if matches!(&inner.kind, ExprKind::Ident(n) if n == name) {
                    sanctioned.push(inner.span);
                }
            }
            ExprKind::Call { callee, args } => {
                let Some((_, h)) = info.callee(callee) else {
                    return;
                };
                for (j, a) in args.iter().enumerate() {
                    if j >= h.ptr_escapes.len() || h.ptr_escapes[j] {
                        continue;
                    }
                    let inner = a.unparenthesized();
                    if matches!(&inner.kind, ExprKind::Ident(n) if n == name) {
                        sanctioned.push(inner.span);
                    }
                }
            }
            _ => {}
        });
    });
    let mut escapes = false;
    for_each_expr(body, &mut |e| {
        walk_exprs(e, &mut |sub| {
            if let ExprKind::Ident(n) = &sub.kind {
                if n == name && !sanctioned.contains(&sub.span) {
                    escapes = true;
                }
            }
        });
    });
    escapes
}

/// Whether executing the body can be observed: a volatile access or a
/// call to anything unknown or itself observable, anywhere in the body
/// (reachability is deliberately ignored — conservative).
fn is_observable(body: &Stmt, info: &FnInfo<'_>) -> bool {
    let mut obs = false;
    for_each_expr(body, &mut |e| {
        walk_exprs(e, &mut |sub| match &sub.kind {
            ExprKind::Ident(name) if info.volatile.contains(name) => obs = true,
            ExprKind::Call { callee, .. } => match info.callee(callee) {
                Some((_, g)) => {
                    if g.observable {
                        obs = true;
                    }
                }
                None => obs = true,
            },
            _ => {}
        });
    });
    obs
}

/// Derives the return lattice from the constant pass's in-states: every
/// live `return e;` must evaluate to the same constant (or the same
/// unmodified parameter), with no `return;` and no live fall-off-the-end.
fn collect_returns(
    cfg: &Cfg<'_>,
    info: &FnInfo<'_>,
    live: &[bool],
    in_states: &[Option<ConstMap>],
    s: &mut FnSummary,
) {
    let mut vals: Vec<CVal> = Vec::new();
    for (idx, node) in cfg.nodes.iter().enumerate() {
        if !live[idx] {
            continue;
        }
        match node.action {
            Action::Return(Some(e)) => {
                let Some(st) = &in_states[idx] else { return };
                let w = ConstWalk {
                    info,
                    st: st.0.clone(),
                    sink: None,
                    probe: None,
                };
                match w.eval(e) {
                    Some(v) => vals.push(v),
                    None => return,
                }
            }
            Action::Return(None) => return,
            Action::Exit => {}
            // A live non-return edge into the exit is a fall-off.
            _ => {
                if node.succs.contains(&cfg.exit) {
                    return;
                }
            }
        }
    }
    let Some((&first, rest)) = vals.split_first() else {
        return;
    };
    if rest.iter().any(|&v| v != first) {
        return;
    }
    match first {
        CVal::Const(c) => s.returns_const = Some(c),
        CVal::Param(k) => s.returns_param = Some(k),
    }
}

// ======================================================================
// AST walking helpers
// ======================================================================

fn collect_address_taken(e: &Expr, sanctioned: &[Span], out: &mut FxHashSet<String>) {
    walk_exprs(e, &mut |sub| {
        if let ExprKind::Unary {
            op: UnaryOp::AddrOf,
            operand,
        } = &sub.kind
        {
            if sanctioned.contains(&sub.span) {
                return;
            }
            if let ExprKind::Ident(name) = &operand.unparenthesized().kind {
                out.insert(name.clone());
            }
        }
    });
}

fn collect_idents(e: &Expr, out: &mut FxHashSet<String>) {
    walk_exprs(e, &mut |sub| {
        if let ExprKind::Ident(name) = &sub.kind {
            out.insert(name.clone());
        }
    });
}

/// Calls `f` on `e` and every sub-expression (including unevaluated
/// `sizeof` operands — callers that care filter themselves).
pub(crate) fn walk_exprs(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::IntLit { .. }
        | ExprKind::FloatLit { .. }
        | ExprKind::CharLit { .. }
        | ExprKind::StrLit { .. }
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_) => {}
        ExprKind::Unary { operand, .. } => walk_exprs(operand, f),
        ExprKind::Binary { lhs, rhs, .. }
        | ExprKind::Assign { lhs, rhs, .. }
        | ExprKind::Comma { lhs, rhs } => {
            walk_exprs(lhs, f);
            walk_exprs(rhs, f);
        }
        ExprKind::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            walk_exprs(cond, f);
            walk_exprs(then_expr, f);
            walk_exprs(else_expr, f);
        }
        ExprKind::Call { callee, args } => {
            walk_exprs(callee, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        ExprKind::Index { base, index } => {
            walk_exprs(base, f);
            walk_exprs(index, f);
        }
        ExprKind::Member { base, .. } => walk_exprs(base, f),
        ExprKind::Cast { expr, .. } => walk_exprs(expr, f),
        ExprKind::CompoundLit { init, .. } => walk_init_exprs(init, f),
        ExprKind::SizeofExpr(inner) => walk_exprs(inner, f),
        ExprKind::Paren(inner) => walk_exprs(inner, f),
    }
}

fn walk_init_exprs(init: &Initializer, f: &mut impl FnMut(&Expr)) {
    match init {
        Initializer::Expr(e) => walk_exprs(e, f),
        Initializer::List { items, .. } => {
            for i in items {
                walk_init_exprs(i, f);
            }
        }
    }
}

/// Calls `f` on `s` and every nested statement.
fn walk_stmts(s: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(s);
    match &s.kind {
        StmtKind::Compound(items) => {
            for item in items {
                if let BlockItem::Stmt(st) = item {
                    walk_stmts(st, f);
                }
            }
        }
        StmtKind::If {
            then_stmt,
            else_stmt,
            ..
        } => {
            walk_stmts(then_stmt, f);
            if let Some(e) = else_stmt {
                walk_stmts(e, f);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. }
        | StmtKind::Switch { body, .. } => walk_stmts(body, f),
        StmtKind::Case { stmt, .. } | StmtKind::Default { stmt } | StmtKind::Label { stmt, .. } => {
            walk_stmts(stmt, f)
        }
        _ => {}
    }
}

/// Calls `f` on every [`VarDecl`] in `s` (block decls and `for` inits).
fn for_each_decl(s: &Stmt, f: &mut impl FnMut(&VarDecl)) {
    walk_stmts(s, &mut |st| match &st.kind {
        StmtKind::Compound(items) => {
            for item in items {
                if let BlockItem::Decl(group) = item {
                    for v in &group.vars {
                        f(v);
                    }
                }
            }
        }
        StmtKind::For {
            init: Some(init), ..
        } => {
            if let ForInit::Decl(group) = init.as_ref() {
                for v in &group.vars {
                    f(v);
                }
            }
        }
        _ => {}
    });
}

/// Calls `f` on every top-level expression in `s`, including declaration
/// initializers.
pub(crate) fn for_each_expr(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    fn on_decl(v: &VarDecl, f: &mut impl FnMut(&Expr)) {
        if let Some(init) = &v.init {
            walk_init_exprs(init, f);
        }
    }
    walk_stmts(s, &mut |st| match &st.kind {
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => f(e),
        StmtKind::If { cond, .. }
        | StmtKind::While { cond, .. }
        | StmtKind::DoWhile { cond, .. }
        | StmtKind::Switch { cond, .. }
        | StmtKind::Case { expr: cond, .. } => f(cond),
        StmtKind::For {
            init, cond, step, ..
        } => {
            if let Some(init) = init {
                match init.as_ref() {
                    ForInit::Decl(group) => {
                        for v in &group.vars {
                            on_decl(v, f);
                        }
                    }
                    ForInit::Expr(e) => f(e),
                }
            }
            if let Some(c) = cond {
                f(c);
            }
            if let Some(st) = step {
                f(st);
            }
        }
        StmtKind::Compound(items) => {
            for item in items {
                if let BlockItem::Decl(group) = item {
                    for v in &group.vars {
                        on_decl(v, f);
                    }
                }
            }
        }
        _ => {}
    });
}
