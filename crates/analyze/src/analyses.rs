//! The analysis suite: uninitialized reads, constant-lattice UB checks
//! (division by zero, out-of-bounds constant indexing, null-pointer
//! dereference), unreachable code, and infinite loops without side
//! effects.
//!
//! Everything here is parse-only — no sema required — and deliberately
//! conservative: a finding must survive reformatting (keys are
//! span-insensitive) and the clean-corpus gate (`exp_analyze` enforces
//! zero findings on known-good programs). Precision tricks that trade
//! false positives for recall are out of bounds; see the per-analysis
//! notes for the deliberate imprecision.

use crate::cfg::{syntactic_const, Action, Cfg};
use crate::dataflow::{forward, Lattice};
use crate::findings::{Finding, Severity};
use metamut_lang::ast::{
    BinaryOp, BlockItem, Expr, ExprKind, ExternalDecl, ForInit, FunctionDef, Initializer, Stmt,
    StmtKind, Storage, TranslationUnit, TySyn, UnaryOp, VarDecl,
};
use metamut_lang::fxhash::{FxHashMap, FxHashSet};
use metamut_lang::Span;
use std::collections::BTreeMap;

/// File-scope facts every function analysis needs: which globals are
/// volatile (observable side-effect channel for the infinite-loop check)
/// and the constant sizes of global arrays (for the indexing check).
#[derive(Debug, Clone, Default)]
pub struct GlobalInfo {
    /// Names of file-scope variables declared `volatile`.
    pub volatile: FxHashSet<String>,
    /// First-dimension sizes of file-scope arrays with constant extents.
    pub array_sizes: FxHashMap<String, i128>,
}

/// Collects [`GlobalInfo`] from a translation unit's file-scope decls.
pub fn collect_globals(unit: &TranslationUnit) -> GlobalInfo {
    let mut info = GlobalInfo::default();
    for decl in &unit.decls {
        if let ExternalDecl::Vars(group) = decl {
            for v in &group.vars {
                if ty_is_volatile(&v.ty) {
                    info.volatile.insert(v.name.clone());
                }
                if let TySyn::Array {
                    size: Some(size), ..
                } = &v.ty
                {
                    if let Some(n) = syntactic_const(size) {
                        info.array_sizes.insert(v.name.clone(), n);
                    }
                }
            }
        }
    }
    info
}

fn ty_is_volatile(ty: &TySyn) -> bool {
    match ty {
        TySyn::Base { quals, .. } => quals.is_volatile,
        TySyn::Pointer { pointee, quals } => quals.is_volatile || ty_is_volatile(pointee),
        TySyn::Array { elem, .. } => ty_is_volatile(elem),
        TySyn::Function { .. } => false,
    }
}

/// Analyzes every function definition of `unit`, findings in source order.
pub fn analyze_unit(unit: &TranslationUnit) -> Vec<Finding> {
    let globals = collect_globals(unit);
    let mut findings = Vec::new();
    for decl in &unit.decls {
        if let ExternalDecl::Function(f) = decl {
            if f.body.is_some() {
                findings.extend(analyze_function(f, &globals));
            }
        }
    }
    findings
}

/// How a local is classified for tracking purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum VarKind {
    Scalar,
    Pointer,
    Array(Option<i128>),
    Other,
}

fn var_kind(ty: &TySyn) -> VarKind {
    match ty {
        // Only arithmetic types are "scalars" for tracking: aggregates
        // are written member-wise (which the flat map can't see), and
        // typedef names may alias aggregates.
        TySyn::Base { spec, .. } if spec.is_arithmetic() => VarKind::Scalar,
        TySyn::Base { .. } => VarKind::Other,
        TySyn::Pointer { .. } => VarKind::Pointer,
        TySyn::Array { size, .. } => VarKind::Array(size.as_deref().and_then(syntactic_const)),
        TySyn::Function { .. } => VarKind::Other,
    }
}

/// Per-function facts shared by all passes.
struct FnInfo<'a> {
    func: &'a str,
    /// Flat name → kind map over locals and parameters. Names declared
    /// more than once (shadowing) are excluded from *all* tracking — the
    /// flow-insensitive map can't tell the scopes apart, and a missed
    /// finding is always preferred over a false one.
    kinds: FxHashMap<String, VarKind>,
    /// Locals whose address is taken anywhere in the body: writable
    /// through pointers, so never tracked.
    address_taken: FxHashSet<String>,
    /// Volatile names visible in the body (locals and globals).
    volatile: FxHashSet<String>,
    /// Array sizes: globals overlaid with locals.
    array_sizes: FxHashMap<String, i128>,
}

impl FnInfo<'_> {
    fn trackable(&self, name: &str) -> Option<VarKind> {
        if self.address_taken.contains(name) || self.volatile.contains(name) {
            return None;
        }
        match self.kinds.get(name) {
            Some(k @ (VarKind::Scalar | VarKind::Pointer)) => Some(*k),
            _ => None,
        }
    }

    fn finding(
        &self,
        analysis: &'static str,
        severity: Severity,
        span: Span,
        msg: String,
    ) -> Finding {
        Finding {
            analysis,
            severity,
            function: self.func.to_owned(),
            span,
            message: msg,
        }
    }
}

/// Runs the full per-function suite.
pub fn analyze_function(fun: &FunctionDef, globals: &GlobalInfo) -> Vec<Finding> {
    let Some(cfg) = Cfg::build(fun) else {
        return Vec::new();
    };
    let body = fun.body.as_ref().expect("CFG implies a body");

    // -- prepass: classify every name the body can mention ---------------
    let mut kinds: FxHashMap<String, VarKind> = FxHashMap::default();
    let mut dupes: FxHashSet<String> = FxHashSet::default();
    let mut volatile = globals.volatile.clone();
    let mut array_sizes = globals.array_sizes.clone();
    let mut note_decl = |name: &str, ty: &TySyn, vol_extra: bool| {
        if kinds.insert(name.to_owned(), var_kind(ty)).is_some() {
            dupes.insert(name.to_owned());
        }
        if vol_extra || ty_is_volatile(ty) {
            volatile.insert(name.to_owned());
        }
        if let VarKind::Array(Some(n)) = var_kind(ty) {
            array_sizes.insert(name.to_owned(), n);
        }
    };
    for p in &fun.params {
        if let Some(name) = &p.name {
            note_decl(name, &p.ty, false);
        }
    }
    for_each_decl(body, &mut |v| note_decl(&v.name, &v.ty, false));
    for name in &dupes {
        kinds.remove(name);
    }

    let mut address_taken = FxHashSet::default();
    for_each_expr(body, &mut |e| collect_address_taken(e, &mut address_taken));

    let info = FnInfo {
        func: &fun.name,
        kinds,
        address_taken,
        volatile,
        array_sizes,
    };

    let mut findings = Vec::new();
    uninit_pass(&cfg, &info, &mut findings);
    const_pass(&cfg, &info, &mut findings);
    unreachable_pass(&cfg, &info, &mut findings);
    infinite_loop_pass(body, &info, &mut findings);
    findings.sort_by_key(|f| (f.span.lo, f.span.hi, f.analysis));
    findings.dedup();
    findings
}

// ======================================================================
// Uninitialized-read analysis
// ======================================================================

/// Three-point initialization lattice per variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    Uninit,
    Maybe,
    Init,
}

impl Tri {
    fn join(self, other: Tri) -> Tri {
        if self == other {
            self
        } else {
            Tri::Maybe
        }
    }
}

/// Variable → initialization state. `BTreeMap` keeps joins and equality
/// deterministic; a missing key means "untracked" and joins as `Init`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InitMap(BTreeMap<String, Tri>);

impl Lattice for InitMap {
    fn join_with(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in &other.0 {
            let joined = match self.0.get(k) {
                Some(cur) => cur.join(*v),
                None => Tri::Init.join(*v),
            };
            if self.0.get(k) != Some(&joined) {
                self.0.insert(k.clone(), joined);
                changed = true;
            }
        }
        let other_map = &other.0;
        for (k, v) in self.0.iter_mut() {
            if !other_map.contains_key(k) {
                let joined = v.join(Tri::Init);
                if *v != joined {
                    *v = joined;
                    changed = true;
                }
            }
        }
        changed
    }
}

struct UninitWalk<'i, 'f> {
    info: &'i FnInfo<'i>,
    st: BTreeMap<String, Tri>,
    sink: Option<&'f mut Vec<Finding>>,
}

impl UninitWalk<'_, '_> {
    fn read(&mut self, name: &str, span: Span, guarded: bool) {
        let Some(&tri) = self.st.get(name) else {
            return;
        };
        if tri != Tri::Init {
            if self.sink.is_some() {
                let f = if tri == Tri::Uninit && !guarded {
                    self.info.finding(
                        "uninit-read",
                        Severity::Ub,
                        span,
                        format!("read of uninitialized variable `{name}`"),
                    )
                } else {
                    self.info.finding(
                        "possible-uninit-read",
                        Severity::Lint,
                        span,
                        format!("variable `{name}` may be read before it is initialized"),
                    )
                };
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.push(f);
                }
            }
            // One report per defect: promote after the first read so a
            // cascade of uses yields a single finding (and the transfer
            // stays monotone — the promoted value is constant `Init`).
            self.st.insert(name.to_owned(), Tri::Init);
        }
    }

    fn write(&mut self, name: &str) {
        if self.info.trackable(name).is_some() {
            self.st.insert(name.to_owned(), Tri::Init);
        }
    }

    fn decl(&mut self, v: &VarDecl, guarded: bool) {
        if let Some(init) = &v.init {
            self.init_reads(init, guarded);
        }
        if self.info.trackable(&v.name).is_none() {
            self.st.remove(&v.name);
            return;
        }
        let state = if v.init.is_some() || v.storage == Storage::Static {
            Tri::Init
        } else {
            Tri::Uninit
        };
        self.st.insert(v.name.clone(), state);
    }

    fn init_reads(&mut self, init: &Initializer, guarded: bool) {
        match init {
            Initializer::Expr(e) => self.expr(e, guarded),
            Initializer::List { items, .. } => {
                for item in items {
                    self.init_reads(item, guarded);
                }
            }
        }
    }

    /// Reads and writes of one expression, in evaluation order.
    fn expr(&mut self, e: &Expr, guarded: bool) {
        match &e.kind {
            ExprKind::IntLit { .. }
            | ExprKind::FloatLit { .. }
            | ExprKind::CharLit { .. }
            | ExprKind::StrLit { .. }
            | ExprKind::SizeofExpr(_)
            | ExprKind::SizeofType(_) => {}
            ExprKind::Ident(name) => self.read(name, e.span, guarded),
            ExprKind::Paren(inner) => self.expr(inner, guarded),
            ExprKind::Unary { op, operand } => match op {
                UnaryOp::AddrOf => {
                    // `&x` doesn't read `x`'s value (and address-taken
                    // names are untracked anyway); `&a[i]` still reads `i`.
                    if !matches!(operand.unparenthesized().kind, ExprKind::Ident(_)) {
                        self.expr(operand, guarded);
                    }
                }
                _ if op.is_inc_dec() => {
                    if let ExprKind::Ident(name) = &operand.unparenthesized().kind {
                        self.read(name, operand.span, guarded);
                        self.write(&name.clone());
                    } else {
                        self.expr(operand, guarded);
                    }
                }
                _ => self.expr(operand, guarded),
            },
            ExprKind::Binary { op, lhs, rhs } => {
                self.expr(lhs, guarded);
                // The RHS of `&&`/`||` may never execute: an uninit read
                // there is only *possible*.
                self.expr(rhs, guarded || op.is_logical());
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr(rhs, guarded);
                if let ExprKind::Ident(name) = &lhs.unparenthesized().kind {
                    let name = name.clone();
                    if op.is_some() {
                        self.read(&name, lhs.span, guarded);
                    }
                    self.write(&name);
                } else {
                    self.write_target(lhs, guarded);
                }
            }
            ExprKind::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr(cond, guarded);
                self.expr(then_expr, true);
                self.expr(else_expr, true);
            }
            ExprKind::Call { callee, args } => {
                // A plain-identifier callee is a function designator, not
                // a variable read — unless it names a tracked local
                // (a function pointer).
                match &callee.unparenthesized().kind {
                    ExprKind::Ident(name) if !self.info.kinds.contains_key(name) => {}
                    _ => self.expr(callee, guarded),
                }
                for a in args {
                    self.expr(a, guarded);
                }
            }
            ExprKind::Index { base, index } => {
                self.expr(index, guarded);
                self.base_read(base, guarded);
            }
            ExprKind::Member { base, arrow, .. } => {
                if *arrow {
                    self.expr(base, guarded);
                } else {
                    self.base_read(base, guarded);
                }
            }
            ExprKind::Cast { expr, .. } => self.expr(expr, guarded),
            ExprKind::CompoundLit { init, .. } => self.init_reads(init, guarded),
            ExprKind::Comma { lhs, rhs } => {
                self.expr(lhs, guarded);
                self.expr(rhs, guarded);
            }
        }
    }

    /// A base expression in a place where an *array* designator would not
    /// be a value read (`a[i]`, `s.f`) but a pointer or anything more
    /// complex still is.
    fn base_read(&mut self, base: &Expr, guarded: bool) {
        match &base.unparenthesized().kind {
            ExprKind::Ident(name) => {
                if matches!(self.info.kinds.get(name), Some(VarKind::Pointer)) {
                    self.read(&name.clone(), base.span, guarded);
                }
            }
            _ => self.expr(base, guarded),
        }
    }

    /// Evaluation effects of a non-identifier assignment target: the
    /// stored-to location isn't read, but every address computation is.
    fn write_target(&mut self, lhs: &Expr, guarded: bool) {
        match &lhs.unparenthesized().kind {
            ExprKind::Ident(_) => {}
            ExprKind::Index { base, index } => {
                self.expr(index, guarded);
                self.base_read(base, guarded);
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                operand,
            } => self.expr(operand, guarded),
            ExprKind::Member { base, arrow, .. } => {
                if *arrow {
                    self.expr(base, guarded);
                } else {
                    self.write_target(base, guarded);
                }
            }
            _ => self.expr(lhs, guarded),
        }
    }
}

fn uninit_pass(cfg: &Cfg<'_>, info: &FnInfo<'_>, findings: &mut Vec<Finding>) {
    let entry = InitMap(BTreeMap::new());
    let apply = |node: usize, st: &InitMap, sink: Option<&mut Vec<Finding>>, info: &FnInfo<'_>| {
        let mut w = UninitWalk {
            info,
            st: st.0.clone(),
            sink,
        };
        match cfg.nodes[node].action {
            Action::Decl(v) => w.decl(v, false),
            Action::Eval(e) | Action::Branch(e) => w.expr(e, false),
            Action::Return(Some(e)) => w.expr(e, false),
            _ => {}
        }
        InitMap(w.st)
    };
    let in_states = forward(cfg, entry, |node, st| apply(node, st, None, info));
    for (node, st) in in_states.iter().enumerate() {
        if let Some(st) = st {
            apply(node, st, Some(findings), info);
        }
    }
}

// ======================================================================
// Constant-propagation checks: div/mod by zero, OOB indexing, null deref
// ======================================================================

/// Variable → known constant value (pointers use `0` for null). Join is
/// set intersection with value agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ConstMap(BTreeMap<String, i128>);

impl Lattice for ConstMap {
    fn join_with(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.retain(|k, v| other.0.get(k) == Some(v));
        before != self.0.len()
    }
}

struct ConstWalk<'i, 'f> {
    info: &'i FnInfo<'i>,
    st: BTreeMap<String, i128>,
    sink: Option<&'f mut Vec<Finding>>,
}

impl ConstWalk<'_, '_> {
    fn eval(&self, e: &Expr) -> Option<i128> {
        match &e.kind {
            ExprKind::IntLit { value, .. } => Some(*value),
            ExprKind::CharLit { value } => Some(*value as i128),
            ExprKind::Ident(name) => self.st.get(name).copied(),
            ExprKind::Paren(inner) => self.eval(inner),
            ExprKind::Unary { op, operand } => {
                let v = self.eval(operand)?;
                match op {
                    UnaryOp::Plus => Some(v),
                    UnaryOp::Minus => v.checked_neg(),
                    UnaryOp::Not => Some((v == 0) as i128),
                    UnaryOp::BitNot => Some(!v),
                    _ => None,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                crate::cfg::eval_binary(*op, l, r)
            }
            ExprKind::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.eval(cond)?;
                if c != 0 {
                    self.eval(then_expr)
                } else {
                    self.eval(else_expr)
                }
            }
            // Casts may narrow and sizeof is platform-shaped: modeling
            // either risks a false positive, so neither folds.
            _ => None,
        }
    }

    fn emit(&mut self, analysis: &'static str, span: Span, msg: String) {
        if self.sink.is_some() {
            let f = self.info.finding(analysis, Severity::Ub, span, msg);
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.push(f);
            }
        }
    }

    fn set(&mut self, name: &str, val: Option<i128>) {
        if self.info.trackable(name).is_none() {
            return;
        }
        match val {
            Some(v) => {
                self.st.insert(name.to_owned(), v);
            }
            None => {
                self.st.remove(name);
            }
        }
    }

    fn decl(&mut self, v: &VarDecl) {
        match &v.init {
            Some(Initializer::Expr(e)) => {
                self.expr(e, false);
                let val = self.eval(e);
                self.set(&v.name, val);
            }
            Some(Initializer::List { items, .. }) => {
                for item in items {
                    self.init_effects(item);
                }
                self.set(&v.name, None);
            }
            None => {
                // Statics are zero-initialized; automatics are unknown.
                let val = (v.storage == Storage::Static).then_some(0);
                self.set(&v.name, val);
            }
        }
    }

    fn init_effects(&mut self, init: &Initializer) {
        match init {
            Initializer::Expr(e) => self.expr(e, false),
            Initializer::List { items, .. } => {
                for i in items {
                    self.init_effects(i);
                }
            }
        }
    }

    /// Checks and effects of one expression, in evaluation order. In
    /// `guarded` position (a `?:` arm, a short-circuit RHS) the walk
    /// still applies writes but reports nothing: whether the arm executes
    /// is exactly what the guard decides, and the lattice carries no
    /// relational facts to decide it with.
    fn expr(&mut self, e: &Expr, guarded: bool) {
        match &e.kind {
            ExprKind::IntLit { .. }
            | ExprKind::FloatLit { .. }
            | ExprKind::CharLit { .. }
            | ExprKind::StrLit { .. }
            | ExprKind::SizeofExpr(_)
            | ExprKind::SizeofType(_)
            | ExprKind::Ident(_) => {}
            ExprKind::Paren(inner) => self.expr(inner, guarded),
            ExprKind::Unary { op, operand } => match op {
                UnaryOp::Deref => {
                    self.expr(operand, guarded);
                    self.null_check(operand, e.span, guarded);
                }
                UnaryOp::AddrOf => {
                    if !matches!(operand.unparenthesized().kind, ExprKind::Ident(_)) {
                        self.expr(operand, guarded);
                    }
                }
                _ if op.is_inc_dec() => {
                    if let ExprKind::Ident(name) = &operand.unparenthesized().kind {
                        let name = name.clone();
                        let delta = if matches!(op, UnaryOp::PreInc | UnaryOp::PostInc) {
                            1
                        } else {
                            -1
                        };
                        let val = self.st.get(&name).and_then(|v| v.checked_add(delta));
                        self.set(&name, val);
                    } else {
                        self.expr(operand, guarded);
                    }
                }
                _ => self.expr(operand, guarded),
            },
            ExprKind::Binary { op, lhs, rhs } => {
                self.expr(lhs, guarded);
                if op.is_logical() {
                    // Vars tested by the LHS may be refined inside the
                    // RHS (`p && *p`): drop them before walking it.
                    let saved = self.kill_mentioned(lhs);
                    self.expr(rhs, true);
                    self.restore(saved);
                } else {
                    self.expr(rhs, guarded);
                    if matches!(op, BinaryOp::Div | BinaryOp::Rem) && self.eval(rhs) == Some(0) {
                        let what = if *op == BinaryOp::Div {
                            "division"
                        } else {
                            "modulo"
                        };
                        if !guarded {
                            self.emit(
                                "div-by-zero",
                                e.span,
                                format!("{what} by zero: the divisor is always 0"),
                            );
                        }
                    }
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr(rhs, guarded);
                if let ExprKind::Ident(name) = &lhs.unparenthesized().kind {
                    let name = name.clone();
                    let val = match op {
                        None => self.eval(rhs),
                        Some(bop) => {
                            if matches!(bop, BinaryOp::Div | BinaryOp::Rem)
                                && self.eval(rhs) == Some(0)
                                && !guarded
                            {
                                let what = if *bop == BinaryOp::Div {
                                    "division"
                                } else {
                                    "modulo"
                                };
                                self.emit(
                                    "div-by-zero",
                                    e.span,
                                    format!("{what} by zero: the divisor is always 0"),
                                );
                            }
                            match (self.st.get(&name).copied(), self.eval(rhs)) {
                                (Some(l), Some(r)) => crate::cfg::eval_binary(*bop, l, r),
                                _ => None,
                            }
                        }
                    };
                    self.set(&name, val);
                } else {
                    self.write_target(lhs, guarded);
                }
            }
            ExprKind::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr(cond, guarded);
                let saved = self.kill_mentioned(cond);
                self.expr(then_expr, true);
                self.expr(else_expr, true);
                self.restore(saved);
            }
            ExprKind::Call { callee, args } => {
                match &callee.unparenthesized().kind {
                    ExprKind::Ident(_) => {}
                    _ => self.expr(callee, guarded),
                }
                for a in args {
                    self.expr(a, guarded);
                }
            }
            ExprKind::Index { base, index } => {
                self.expr(index, guarded);
                self.expr_base(base, guarded);
                self.index_check(base, index, e.span, guarded);
            }
            ExprKind::Member { base, arrow, .. } => {
                if *arrow {
                    self.expr(base, guarded);
                    self.null_check(base, e.span, guarded);
                } else {
                    self.expr_base(base, guarded);
                }
            }
            ExprKind::Cast { expr, .. } => self.expr(expr, guarded),
            ExprKind::CompoundLit { init, .. } => self.init_effects(init),
            ExprKind::Comma { lhs, rhs } => {
                self.expr(lhs, guarded);
                self.expr(rhs, guarded);
            }
        }
    }

    fn expr_base(&mut self, base: &Expr, guarded: bool) {
        if !matches!(base.unparenthesized().kind, ExprKind::Ident(_)) {
            self.expr(base, guarded);
        }
    }

    fn null_check(&mut self, pointer: &Expr, span: Span, guarded: bool) {
        if guarded {
            return;
        }
        if let ExprKind::Ident(name) = &pointer.unparenthesized().kind {
            if matches!(self.info.kinds.get(name), Some(VarKind::Pointer))
                && self.st.get(name) == Some(&0)
            {
                let name = name.clone();
                self.emit(
                    "null-deref",
                    span,
                    format!("dereference of null pointer `{name}`"),
                );
            }
        }
    }

    fn index_check(&mut self, base: &Expr, index: &Expr, span: Span, guarded: bool) {
        if guarded {
            return;
        }
        let ExprKind::Ident(name) = &base.unparenthesized().kind else {
            return;
        };
        if matches!(self.info.kinds.get(name), Some(VarKind::Pointer)) {
            self.null_check(base, span, guarded);
            return;
        }
        let Some(&size) = self.info.array_sizes.get(name) else {
            return;
        };
        let Some(i) = self.eval(index) else {
            return;
        };
        if i < 0 || i >= size {
            let name = name.clone();
            self.emit(
                "oob-index",
                span,
                format!("index {i} is out of bounds for array `{name}` of {size} elements"),
            );
        }
    }

    fn write_target(&mut self, lhs: &Expr, guarded: bool) {
        match &lhs.unparenthesized().kind {
            ExprKind::Ident(_) => {}
            ExprKind::Index { base, index } => {
                self.expr(index, guarded);
                self.expr_base(base, guarded);
                self.index_check(base, index, lhs.span, guarded);
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                operand,
            } => {
                self.expr(operand, guarded);
                self.null_check(operand, lhs.span, guarded);
            }
            ExprKind::Member { base, arrow, .. } => {
                if *arrow {
                    self.expr(base, guarded);
                    self.null_check(base, lhs.span, guarded);
                } else {
                    self.write_target(base, guarded);
                }
            }
            _ => self.expr(lhs, guarded),
        }
    }

    /// Drops every tracked variable mentioned in `e` from the state,
    /// returning the removed entries for [`Self::restore`].
    fn kill_mentioned(&mut self, e: &Expr) -> Vec<(String, i128)> {
        let mut names = FxHashSet::default();
        collect_idents(e, &mut names);
        let mut saved = Vec::new();
        for n in names {
            if let Some(v) = self.st.remove(&n) {
                saved.push((n, v));
            }
        }
        saved
    }

    fn restore(&mut self, saved: Vec<(String, i128)>) {
        for (n, v) in saved {
            // Writes inside the guarded region win over the saved value.
            self.st.entry(n).or_insert(v);
        }
    }
}

fn const_pass(cfg: &Cfg<'_>, info: &FnInfo<'_>, findings: &mut Vec<Finding>) {
    let apply = |node: usize, st: &ConstMap, sink: Option<&mut Vec<Finding>>, info: &FnInfo<'_>| {
        let mut w = ConstWalk {
            info,
            st: st.0.clone(),
            sink,
        };
        match cfg.nodes[node].action {
            Action::Decl(v) => w.decl(v),
            Action::Eval(e) => w.expr(e, false),
            Action::Branch(e) => {
                w.expr(e, false);
                // Path-insensitive refinement: a branch *distinguishes*
                // the values it tests, so constancy of any mentioned
                // variable no longer holds uniformly on the out-edges.
                // Dropping them trades recall for zero guarded false
                // positives (`if (x != 0) y = 5 / x;`).
                let _ = w.kill_mentioned(e);
            }
            Action::Return(Some(e)) => w.expr(e, false),
            _ => {}
        }
        ConstMap(w.st)
    };
    let in_states = forward(cfg, ConstMap(BTreeMap::new()), |node, st| {
        apply(node, st, None, info)
    });
    for (node, st) in in_states.iter().enumerate() {
        if let Some(st) = st {
            apply(node, st, Some(findings), info);
        }
    }
}

// ======================================================================
// Unreachable code
// ======================================================================

fn unreachable_pass(cfg: &Cfg<'_>, info: &FnInfo<'_>, findings: &mut Vec<Finding>) {
    let reach = cfg.reachable();
    let mut dead: Vec<Span> = cfg
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| !reach[*i] && n.action.is_source())
        .map(|(_, n)| n.span)
        .collect();
    if dead.is_empty() {
        return;
    }
    dead.sort_by_key(|s| (s.lo, s.hi));
    let count = dead.len();
    let plural = if count == 1 { "" } else { "s" };
    findings.push(info.finding(
        "unreachable-code",
        Severity::Lint,
        dead[0],
        format!("unreachable code: {count} statement{plural} can never execute"),
    ));
}

// ======================================================================
// Infinite loops without side effects
// ======================================================================

fn infinite_loop_pass(body: &Stmt, info: &FnInfo<'_>, findings: &mut Vec<Finding>) {
    walk_stmts(body, &mut |s| {
        let (cond, loop_body) = match &s.kind {
            StmtKind::While { cond, body } => (Some(cond), body),
            StmtKind::DoWhile { body, cond } => (Some(cond), body),
            StmtKind::For { cond, body, .. } => (cond.as_ref(), body),
            _ => return,
        };
        let const_true = match cond {
            None => true,
            Some(c) => matches!(syntactic_const(c), Some(v) if v != 0),
        };
        if const_true && !makes_progress(loop_body, info, true) {
            findings.push(
                info.finding(
                    "infinite-loop",
                    Severity::Ub,
                    s.span,
                    "infinite loop with a constant-true condition and no observable side effects"
                        .to_owned(),
                ),
            );
        }
    });
}

/// Whether executing `s` could let a constant-true loop terminate or be
/// observed: a call, a volatile access, a `return`, a `goto`, or — when
/// `breakable` (not inside a nested loop or switch) — a `break`.
fn makes_progress(s: &Stmt, info: &FnInfo<'_>, breakable: bool) -> bool {
    let expr_has_progress = |e: &Expr| -> bool {
        let mut found = false;
        walk_exprs(e, &mut |sub| match &sub.kind {
            ExprKind::Call { .. } => found = true,
            ExprKind::Ident(name) if info.volatile.contains(name) => found = true,
            _ => {}
        });
        found
    };
    let init_has_progress = |init: &Initializer| -> bool {
        let mut stack = vec![init];
        while let Some(i) = stack.pop() {
            match i {
                Initializer::Expr(e) => {
                    if expr_has_progress(e) {
                        return true;
                    }
                }
                Initializer::List { items, .. } => stack.extend(items.iter()),
            }
        }
        false
    };
    match &s.kind {
        StmtKind::Compound(items) => items.iter().any(|item| match item {
            BlockItem::Decl(group) => group
                .vars
                .iter()
                .any(|v| v.init.as_ref().is_some_and(init_has_progress)),
            BlockItem::Stmt(st) => makes_progress(st, info, breakable),
        }),
        StmtKind::Expr(e) => expr_has_progress(e),
        StmtKind::Null => false,
        StmtKind::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            expr_has_progress(cond)
                || makes_progress(then_stmt, info, breakable)
                || else_stmt
                    .as_ref()
                    .is_some_and(|e| makes_progress(e, info, breakable))
        }
        StmtKind::While { cond, body } => {
            expr_has_progress(cond) || makes_progress(body, info, false)
        }
        StmtKind::DoWhile { body, cond } => {
            expr_has_progress(cond) || makes_progress(body, info, false)
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            init.as_ref().is_some_and(|i| match i.as_ref() {
                ForInit::Decl(group) => group
                    .vars
                    .iter()
                    .any(|v| v.init.as_ref().is_some_and(init_has_progress)),
                ForInit::Expr(e) => expr_has_progress(e),
            }) || cond.as_ref().is_some_and(&expr_has_progress)
                || step.as_ref().is_some_and(&expr_has_progress)
                || makes_progress(body, info, false)
        }
        StmtKind::Switch { cond, body } => {
            expr_has_progress(cond) || makes_progress(body, info, false)
        }
        StmtKind::Case { stmt, .. } | StmtKind::Default { stmt } | StmtKind::Label { stmt, .. } => {
            makes_progress(stmt, info, breakable)
        }
        // A goto can leave the loop; resolving whether its target is
        // inside would need label analysis, so assume it escapes.
        StmtKind::Goto { .. } => true,
        StmtKind::Break => breakable,
        StmtKind::Continue => false,
        StmtKind::Return(_) => true,
    }
}

// ======================================================================
// AST walking helpers
// ======================================================================

fn collect_address_taken(e: &Expr, out: &mut FxHashSet<String>) {
    walk_exprs(e, &mut |sub| {
        if let ExprKind::Unary {
            op: UnaryOp::AddrOf,
            operand,
        } = &sub.kind
        {
            if let ExprKind::Ident(name) = &operand.unparenthesized().kind {
                out.insert(name.clone());
            }
        }
    });
}

fn collect_idents(e: &Expr, out: &mut FxHashSet<String>) {
    walk_exprs(e, &mut |sub| {
        if let ExprKind::Ident(name) = &sub.kind {
            out.insert(name.clone());
        }
    });
}

/// Calls `f` on `e` and every sub-expression (including unevaluated
/// `sizeof` operands — callers that care filter themselves).
fn walk_exprs(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::IntLit { .. }
        | ExprKind::FloatLit { .. }
        | ExprKind::CharLit { .. }
        | ExprKind::StrLit { .. }
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_) => {}
        ExprKind::Unary { operand, .. } => walk_exprs(operand, f),
        ExprKind::Binary { lhs, rhs, .. }
        | ExprKind::Assign { lhs, rhs, .. }
        | ExprKind::Comma { lhs, rhs } => {
            walk_exprs(lhs, f);
            walk_exprs(rhs, f);
        }
        ExprKind::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            walk_exprs(cond, f);
            walk_exprs(then_expr, f);
            walk_exprs(else_expr, f);
        }
        ExprKind::Call { callee, args } => {
            walk_exprs(callee, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        ExprKind::Index { base, index } => {
            walk_exprs(base, f);
            walk_exprs(index, f);
        }
        ExprKind::Member { base, .. } => walk_exprs(base, f),
        ExprKind::Cast { expr, .. } => walk_exprs(expr, f),
        ExprKind::CompoundLit { init, .. } => walk_init_exprs(init, f),
        ExprKind::SizeofExpr(inner) => walk_exprs(inner, f),
        ExprKind::Paren(inner) => walk_exprs(inner, f),
    }
}

fn walk_init_exprs(init: &Initializer, f: &mut impl FnMut(&Expr)) {
    match init {
        Initializer::Expr(e) => walk_exprs(e, f),
        Initializer::List { items, .. } => {
            for i in items {
                walk_init_exprs(i, f);
            }
        }
    }
}

/// Calls `f` on `s` and every nested statement.
fn walk_stmts(s: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(s);
    match &s.kind {
        StmtKind::Compound(items) => {
            for item in items {
                if let BlockItem::Stmt(st) = item {
                    walk_stmts(st, f);
                }
            }
        }
        StmtKind::If {
            then_stmt,
            else_stmt,
            ..
        } => {
            walk_stmts(then_stmt, f);
            if let Some(e) = else_stmt {
                walk_stmts(e, f);
            }
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. }
        | StmtKind::Switch { body, .. } => walk_stmts(body, f),
        StmtKind::Case { stmt, .. } | StmtKind::Default { stmt } | StmtKind::Label { stmt, .. } => {
            walk_stmts(stmt, f)
        }
        _ => {}
    }
}

/// Calls `f` on every [`VarDecl`] in `s` (block decls and `for` inits).
fn for_each_decl(s: &Stmt, f: &mut impl FnMut(&VarDecl)) {
    walk_stmts(s, &mut |st| match &st.kind {
        StmtKind::Compound(items) => {
            for item in items {
                if let BlockItem::Decl(group) = item {
                    for v in &group.vars {
                        f(v);
                    }
                }
            }
        }
        StmtKind::For {
            init: Some(init), ..
        } => {
            if let ForInit::Decl(group) = init.as_ref() {
                for v in &group.vars {
                    f(v);
                }
            }
        }
        _ => {}
    });
}

/// Calls `f` on every top-level expression in `s`, including declaration
/// initializers.
fn for_each_expr(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    fn on_decl(v: &VarDecl, f: &mut impl FnMut(&Expr)) {
        if let Some(init) = &v.init {
            walk_init_exprs(init, f);
        }
    }
    walk_stmts(s, &mut |st| match &st.kind {
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => f(e),
        StmtKind::If { cond, .. }
        | StmtKind::While { cond, .. }
        | StmtKind::DoWhile { cond, .. }
        | StmtKind::Switch { cond, .. }
        | StmtKind::Case { expr: cond, .. } => f(cond),
        StmtKind::For {
            init, cond, step, ..
        } => {
            if let Some(init) = init {
                match init.as_ref() {
                    ForInit::Decl(group) => {
                        for v in &group.vars {
                            on_decl(v, f);
                        }
                    }
                    ForInit::Expr(e) => f(e),
                }
            }
            if let Some(c) = cond {
                f(c);
            }
            if let Some(st) = step {
                f(st);
            }
        }
        StmtKind::Compound(items) => {
            for item in items {
                if let BlockItem::Decl(group) = item {
                    for v in &group.vars {
                        on_decl(v, f);
                    }
                }
            }
        }
        _ => {}
    });
}
