//! Experiment: campaign engine throughput (execs/second).
//!
//! Measures the legacy serial engine — per-attempt parent re-parsing, no
//! mutant dedup — against the current engine (parsed-AST seed cache +
//! dedup cache) at several worker counts, and records the speedups in
//! `BENCH_throughput.json` at the repository root.
//!
//! The enforced gate scales with the hardware, because the two speedup
//! sources are different claims: on a host with ≥ 4 cores the parallel
//! engine must clear 2× the legacy execs/second by 4 workers (cache +
//! dedup + real parallelism); on a single-core host threads can only
//! timeslice, so the gate is the serial-efficiency floor of 1.25× that
//! cache + dedup deliver per core. Both the measured speedups and the
//! host's `available_parallelism` are recorded so the committed JSON says
//! which gate it cleared.
//!
//! Usage: `exp_throughput [--iterations N] [--seed N] [--repeats N]
//! [--smoke]`. `--smoke` shrinks the budget and skips the assertion so
//! CI can exercise the binary in seconds.

use metamut_bench::{render_table, ExpOptions};
use metamut_fuzzing::campaign::{run_campaign, CampaignConfig};
use metamut_fuzzing::corpus::seed_corpus;
use metamut_fuzzing::mucfuzz::MuCFuzz;
use metamut_fuzzing::parallel::run_parallel_campaign;
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct EngineRow {
    engine: String,
    workers: usize,
    execs: usize,
    elapsed_s: f64,
    execs_per_sec: f64,
    speedup_vs_legacy: f64,
    dedup_hit_rate_pct: Option<f64>,
}

#[derive(Serialize)]
struct ThroughputReport {
    iterations: usize,
    seed: u64,
    repeats: usize,
    available_parallelism: usize,
    gate: String,
    best_speedup_at_4_workers: f64,
    best_speedup_any_workers: f64,
    rows: Vec<EngineRow>,
    note: String,
}

fn main() {
    let opts = ExpOptions::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut repeats = 3usize;
    let args: Vec<String> = std::env::args().collect();
    for i in 1..args.len() {
        if args[i] == "--repeats" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                repeats = v;
            }
        }
    }
    let iterations = if smoke {
        opts.iterations.min(200)
    } else {
        opts.iterations
    };
    println!(
        "== Engine throughput ({iterations} iterations, best of {repeats} runs, seed {}) ==\n",
        opts.seed
    );

    let seeds: Vec<String> = seed_corpus().iter().map(|s| s.to_string()).collect();
    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let reg = Arc::new(metamut_mutators::full_registry());

    // Best-of-N wall time: the minimum is the least-noisy estimator for a
    // deterministic workload on a shared machine.
    let time_best = |run: &mut dyn FnMut() -> Option<f64>| -> (f64, Option<f64>) {
        let mut best = f64::INFINITY;
        let mut hit_rate = None;
        for _ in 0..repeats {
            let started = Instant::now();
            hit_rate = run();
            best = best.min(started.elapsed().as_secs_f64());
        }
        (best, hit_rate)
    };

    // Legacy baseline: re-parse the parent on every mutation attempt,
    // recompile every duplicate mutant.
    let (legacy_s, _) = time_best(&mut || {
        let mut fuzzer =
            MuCFuzz::new("uCFuzz.s", reg.clone(), seeds.iter().cloned()).parse_cache(false);
        let cfg = CampaignConfig {
            iterations,
            seed: opts.seed,
            sample_every: iterations,
            dedup: false,
            ..Default::default()
        };
        run_campaign(&mut fuzzer, &compiler, &cfg);
        None
    });
    let legacy_rate = iterations as f64 / legacy_s;
    let mut rows = vec![EngineRow {
        engine: "legacy (no AST cache, no dedup)".into(),
        workers: 1,
        execs: iterations,
        elapsed_s: legacy_s,
        execs_per_sec: legacy_rate,
        speedup_vs_legacy: 1.0,
        dedup_hit_rate_pct: None,
    }];

    for workers in [1usize, 2, 4, 8] {
        let (elapsed, hit_rate) = time_best(&mut || {
            let cfg = CampaignConfig {
                iterations,
                seed: opts.seed,
                sample_every: iterations,
                workers,
                dedup: true,
                ..Default::default()
            };
            let report = run_parallel_campaign(
                &seeds,
                |_w, shard| MuCFuzz::new("uCFuzz.s", reg.clone(), shard),
                &compiler,
                &cfg,
            );
            report.dedup.map(|d| 100.0 * d.hit_rate())
        });
        let rate = iterations as f64 / elapsed;
        rows.push(EngineRow {
            engine: "cached+dedup".into(),
            workers,
            execs: iterations,
            elapsed_s: elapsed,
            execs_per_sec: rate,
            speedup_vs_legacy: rate / legacy_rate,
            dedup_hit_rate_pct: hit_rate,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                r.workers.to_string(),
                format!("{:.0}", r.execs_per_sec),
                format!("{:.2}x", r.speedup_vs_legacy),
                r.dedup_hit_rate_pct
                    .map(|h| format!("{h:.1}%"))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Engine", "Workers", "Execs/s", "Speedup", "Dedup hits"],
            &table
        )
    );

    let at_4 = rows
        .iter()
        .filter(|r| r.engine != "legacy (no AST cache, no dedup)" && r.workers >= 4)
        .map(|r| r.speedup_vs_legacy)
        .fold(0.0f64, f64::max);
    let best = rows
        .iter()
        .filter(|r| r.engine != "legacy (no AST cache, no dedup)")
        .map(|r| r.speedup_vs_legacy)
        .fold(0.0f64, f64::max);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // On ≥4 cores, workers compile in parallel and the full 2× claim is
    // testable at 4 workers. A single-core host can only demonstrate the
    // per-exec efficiency of the cache + dedup path, which is measured
    // cleanly at 1 worker — extra threads just timeslice and pay exchange
    // costs there, and those rows are recorded but not gated on.
    let (gated, gate_min, gate): (f64, f64, String) = if cores >= 4 {
        (
            at_4,
            2.0,
            format!("parallel: >=2.0x at 4 workers ({cores} cores)"),
        )
    } else {
        (
            best,
            1.25,
            format!("serial-efficiency: >=1.25x at best worker count ({cores} core(s))"),
        )
    };
    let report = ThroughputReport {
        iterations,
        seed: opts.seed,
        repeats,
        available_parallelism: cores,
        gate: gate.clone(),
        best_speedup_at_4_workers: at_4,
        best_speedup_any_workers: best,
        rows,
        note: "execs/s over a MuCFuzz.s campaign (full registry) vs GCC -O2; legacy = \
               per-attempt re-parse + no dedup; best-of-N wall time"
            .into(),
    };

    // The committed evidence lives at the repository root, next to the
    // README that cites it; smoke runs park their miniature report in
    // `target/` so CI never dirties the tree.
    let path = if smoke {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        std::fs::create_dir_all(&dir).expect("create target/experiments");
        dir.join("BENCH_throughput_smoke.json")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json")
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize throughput report");
    std::fs::write(&path, json + "\n").expect("write BENCH_throughput.json");
    println!("report written to {}", path.display());

    if smoke {
        println!("(smoke run: gate skipped)");
    } else {
        assert!(
            gated >= gate_min,
            "cached engine reached only {gated:.2}x of legacy throughput (gate: {gate})"
        );
        println!("gate ok: {gated:.2}x >= {gate_min:.2}x — {gate}");
    }
    metamut_bench::finish();
}
