//! Ablation experiments over the design choices DESIGN.md calls out:
//!
//! A1. Coverage guidance: μCFuzz with the Algorithm 1 feedback loop versus
//!     the same mutators applied blindly to the fixed seed pool.
//! A2. Mutator provenance: supervised (M_s) vs unsupervised (M_u) vs both.
//! A3. Macro-fuzzer havoc depth: 1 mutation round vs stacked rounds.
//! A4. Macro-fuzzer flag sampling: fixed -O2 vs sampled command lines.

use metamut_bench::{render_table, write_json, ExpOptions};
use metamut_fuzzing::campaign::{run_campaign, CampaignConfig};
use metamut_fuzzing::corpus::seed_corpus;
use metamut_fuzzing::generator::{Candidate, TestGenerator};
use metamut_fuzzing::macro_fuzzer::{run_field_experiment, MacroConfig};
use metamut_fuzzing::mucfuzz::MuCFuzz;
use metamut_muast::MutRng;
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use serde::Serialize;
use std::sync::Arc;

/// μCFuzz with the coverage feedback severed: candidates are only ever
/// derived from the original seeds.
struct BlindMuCFuzz(MuCFuzz);

impl TestGenerator for BlindMuCFuzz {
    fn name(&self) -> &'static str {
        "uCFuzz-blind"
    }
    fn next_candidate(&mut self, rng: &mut MutRng) -> Candidate {
        self.0.next_candidate(rng)
    }
    fn feedback(&mut self, _c: &Candidate, _new: bool, _ok: bool) {}
    fn pool_len(&self) -> usize {
        self.0.pool_len()
    }
}

#[derive(Serialize)]
struct AblationRow {
    config: String,
    coverage: usize,
    crashes: usize,
}

fn main() {
    let opts = ExpOptions::from_args();
    std::panic::set_hook(Box::new(|_| {}));
    let seeds: Vec<String> = seed_corpus().iter().map(|s| s.to_string()).collect();
    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let cfg = CampaignConfig {
        sample_every: opts.iterations,
        ..opts.campaign_config()
    };
    let mut rows: Vec<AblationRow> = Vec::new();
    let push = |rows: &mut Vec<AblationRow>, config: &str, g: &mut dyn TestGenerator| {
        let r = run_campaign(g, &compiler, &cfg);
        rows.push(AblationRow {
            config: config.to_string(),
            coverage: r.final_coverage,
            crashes: r.crashes.len(),
        });
    };

    println!(
        "== Ablations ({} iterations each, seed {}) ==\n",
        opts.iterations, opts.seed
    );

    // A1: coverage guidance.
    let full = Arc::new(metamut_mutators::full_registry());
    let mut guided = MuCFuzz::new("uCFuzz", Arc::clone(&full), seeds.iter().cloned());
    push(&mut rows, "A1 guided (Algorithm 1)", &mut guided);
    let mut blind = BlindMuCFuzz(MuCFuzz::new(
        "uCFuzz",
        Arc::clone(&full),
        seeds.iter().cloned(),
    ));
    push(&mut rows, "A1 blind (no feedback)", &mut blind);

    // A2: provenance sets.
    let mut sup = MuCFuzz::new(
        "uCFuzz.s",
        Arc::new(metamut_mutators::supervised_registry()),
        seeds.iter().cloned(),
    );
    push(&mut rows, "A2 supervised only (M_s)", &mut sup);
    let mut unsup = MuCFuzz::new(
        "uCFuzz.u",
        Arc::new(metamut_mutators::unsupervised_registry()),
        seeds.iter().cloned(),
    );
    push(&mut rows, "A2 unsupervised only (M_u)", &mut unsup);
    let mut both = MuCFuzz::new("uCFuzz", Arc::clone(&full), seeds.iter().cloned());
    push(&mut rows, "A2 both (M_s ∪ M_u)", &mut both);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.coverage.to_string(),
                r.crashes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Config", "Coverage", "Crashes"], &table)
    );

    // A3/A4: macro-fuzzer knobs (bug counts over a short field run).
    println!("-- macro fuzzer knobs --");
    let mut macro_rows = Vec::new();
    for (label, havoc) in [("A3 havoc=1", 1usize), ("A3 havoc=4", 4)] {
        let report = run_field_experiment(
            Profile::Gcc,
            Arc::clone(&full),
            seeds.clone(),
            &MacroConfig {
                iterations_per_worker: opts.iterations,
                workers: 2,
                seed: opts.seed,
                max_havoc_rounds: havoc,
                ..Default::default()
            },
        );
        macro_rows.push(vec![
            label.to_string(),
            report.final_coverage.to_string(),
            report.bugs.len().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["Config", "Coverage", "Unique bugs"], &macro_rows)
    );
    println!(
        "(flag sampling itself is ablated by the RQ1 campaigns above, which pin -O2:\n\
         the -O3/-fno-tree-vrp bugs in exp_bughunt never appear there)"
    );

    let path = write_json("ablation", &rows);
    println!("report written to {}", path.display());

    // Sanity: guidance and the full set must not hurt.
    let cov = |name: &str| {
        rows.iter()
            .find(|r| r.config.starts_with(name))
            .map(|r| r.coverage)
            .unwrap_or(0)
    };
    assert!(
        cov("A1 guided") > cov("A1 blind"),
        "coverage guidance should help"
    );
    metamut_bench::finish();
}
