//! Experiment: observatory instrumentation overhead and end-to-end
//! artifact validation.
//!
//! Measures the overhead of the full observatory stack (span tree
//! recording, time-series sampling, metrics) against telemetry-off on
//! the exp_throughput workload (MuCFuzz.s, full registry, GCC -O2), and
//! gates the slowdown at ≤ 3%.
//!
//! The overhead leg runs with **one worker**: a single-worker campaign
//! is deterministic, so the baseline and instrumented runs mutate and
//! compile bit-identical programs and the measured delta is pure
//! instrumentation cost. (With two or more workers the iteration
//! schedule feeds back into corpus evolution, and the two legs diverge
//! into genuinely different workloads — that divergence is several
//! percent either way, swamping the signal being gated.) The two
//! configurations are also interleaved round-robin so machine-speed
//! drift cannot bias whichever side runs later.
//!
//! A separate two-worker instrumented campaign then produces the
//! artifacts, which are validated the way a consumer would use them:
//!
//! - the Chrome trace round-trips through a JSON parser and every
//!   iteration span nests inside its shard span, which nests inside the
//!   single campaign span;
//! - the time-series parses back and is monotone in iterations;
//! - a [`StatusServer`] bound on a loopback port serves valid Prometheus
//!   text on `/metrics` while a campaign is running;
//! - `metamut::report::campaign_report` renders an attribution table
//!   whose percentages sum to 100 ± 1.
//!
//! Artifacts (`trace.json`, `timeseries.jsonl`, `report.md`) land in
//! `target/experiments/`; the measured overhead is committed to
//! `BENCH_observatory.json` at the repository root.
//!
//! Usage: `exp_observatory [--iterations N] [--seed N] [--repeats N]
//! [--smoke]`. `--smoke` shrinks the budget and skips the overhead gate
//! (sub-second runs are all noise) while still validating every artifact.
//!
//! [`StatusServer`]: metamut_telemetry::StatusServer

use metamut_bench::ExpOptions;
use metamut_fuzzing::campaign::CampaignConfig;
use metamut_fuzzing::corpus::seed_corpus;
use metamut_fuzzing::mucfuzz::MuCFuzz;
use metamut_fuzzing::parallel::run_parallel_campaign_with;
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use metamut_telemetry::Telemetry;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Worker count for the artifact-producing campaign: two shards give the
/// trace a real tree (campaign → 2 shards → iterations) without
/// demanding many cores from CI runners. The overhead measurement runs
/// with one worker — see the module docs.
const WORKERS: usize = 2;

#[derive(Serialize)]
struct ObservatoryReport {
    iterations: usize,
    seed: u64,
    repeats: usize,
    workers: usize,
    available_parallelism: usize,
    baseline_s: f64,
    instrumented_s: f64,
    overhead_pct: f64,
    gate: String,
    trace_spans: usize,
    series_points: usize,
    metrics_bytes: usize,
    attribution_percent_sum: f64,
    note: String,
}

/// Builds the instrumented pipeline: everything the observatory can
/// record, recording.
fn observatory_telemetry() -> Telemetry {
    let t = Telemetry::new();
    t.spans().set_recording(true);
    t.series().set_enabled(true);
    t
}

fn run_workload(
    seeds: &[String],
    reg: &Arc<metamut_muast::registry::MutatorRegistry>,
    compiler: &Compiler,
    cfg: &CampaignConfig,
    telemetry: Telemetry,
) {
    run_parallel_campaign_with(
        seeds,
        |_w, shard| MuCFuzz::new("uCFuzz.s", reg.clone(), shard),
        compiler,
        cfg,
        telemetry,
    );
}

fn main() {
    let opts = ExpOptions::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut repeats = 5usize;
    let args: Vec<String> = std::env::args().collect();
    for i in 1..args.len() {
        if args[i] == "--repeats" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                repeats = v;
            }
        }
    }
    let iterations = if smoke {
        opts.iterations.min(200)
    } else {
        // Long enough that per-run constant costs (thread spawn, ring
        // allocation) vanish into the per-iteration signal.
        opts.iterations.max(8000)
    };
    println!(
        "== Observatory overhead ({iterations} iterations, 1 worker, best of {repeats} interleaved runs, seed {}; artifacts from a {WORKERS}-worker campaign) ==\n",
        opts.seed
    );

    let seeds: Vec<String> = seed_corpus().iter().map(|s| s.to_string()).collect();
    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let reg = Arc::new(metamut_mutators::full_registry());
    let cfg = CampaignConfig {
        iterations,
        seed: opts.seed,
        sample_every: (iterations / 24).max(1),
        workers: WORKERS,
        dedup: true,
        ..Default::default()
    };
    // Overhead leg: one worker, so both configurations do bit-identical
    // mutation/compilation work (see the module docs).
    let overhead_cfg = CampaignConfig {
        workers: 1,
        ..cfg.clone()
    };

    // Best-of-N wall time with the two configurations interleaved
    // round-robin: the minimum is the least-noisy estimator for a
    // deterministic workload, and pairing the runs means machine-speed
    // drift (thermal, noisy neighbors) hits baseline and instrumented
    // alike instead of biasing whichever block ran second.
    let time_once = |telemetry: Telemetry| -> f64 {
        let started = Instant::now();
        run_workload(&seeds, &reg, &compiler, &overhead_cfg, telemetry);
        started.elapsed().as_secs_f64()
    };
    let mut baseline_s = f64::INFINITY;
    let mut instrumented_s = f64::INFINITY;
    for _ in 0..repeats {
        baseline_s = baseline_s.min(time_once(Telemetry::disabled()));
        instrumented_s = instrumented_s.min(time_once(observatory_telemetry()));
    }
    let overhead_pct = 100.0 * (instrumented_s / baseline_s - 1.0);
    println!("baseline     : {baseline_s:>8.3} s");
    println!("instrumented : {instrumented_s:>8.3} s");
    println!("overhead     : {overhead_pct:>+7.2} %\n");

    // ---- One more instrumented run whose artifacts we keep ----
    let telemetry = observatory_telemetry();
    run_workload(&seeds, &reg, &compiler, &cfg, telemetry.clone());

    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&out_dir).expect("create target/experiments");

    // The Chrome trace must round-trip through a JSON parser with
    // properly nested spans.
    let trace = telemetry.spans().chrome_trace_json();
    std::fs::write(out_dir.join("trace.json"), &trace).expect("write trace.json");
    let doc: serde_json::Value = serde_json::from_str(&trace).expect("trace round-trips as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array")
        .clone();
    let arg_u64 = |e: &serde_json::Value, key: &str| {
        e.get("args")
            .and_then(|a| a.get(key))
            .and_then(|v| v.as_u64())
    };
    let named = |name: &str| {
        events
            .iter()
            .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some(name))
            .cloned()
            .collect::<Vec<_>>()
    };
    let campaigns = named("campaign");
    let shards = named("shard");
    let iterations_spans = named("iteration");
    assert_eq!(campaigns.len(), 1, "one campaign root span");
    assert_eq!(shards.len(), WORKERS, "one shard span per worker");
    assert!(!iterations_spans.is_empty(), "iteration spans recorded");
    let interval = |e: &serde_json::Value| {
        (
            e.get("ts").and_then(|v| v.as_u64()).expect("ts"),
            e.get("dur").and_then(|v| v.as_u64()).expect("dur"),
        )
    };
    let (c_ts, c_dur) = interval(&campaigns[0]);
    let campaign_id = arg_u64(&campaigns[0], "id").expect("campaign id");
    for shard in &shards {
        assert_eq!(
            arg_u64(shard, "parent"),
            Some(campaign_id),
            "shard parented to the campaign"
        );
        let (s_ts, s_dur) = interval(shard);
        assert!(
            c_ts <= s_ts && s_ts + s_dur <= c_ts + c_dur,
            "shard nests in campaign"
        );
    }
    for it in &iterations_spans {
        let parent = arg_u64(it, "parent").expect("iteration parent");
        let shard = shards
            .iter()
            .find(|s| arg_u64(s, "id") == Some(parent))
            .expect("iteration parented to a shard");
        let (s_ts, s_dur) = interval(shard);
        let (i_ts, i_dur) = interval(it);
        assert!(
            s_ts <= i_ts && i_ts + i_dur <= s_ts + s_dur,
            "iteration nests in shard"
        );
    }
    println!(
        "trace ok: {} events, 1 campaign / {} shards / {} iterations, all nested",
        events.len(),
        shards.len(),
        iterations_spans.len()
    );

    // The time-series parses back and is monotone in iterations.
    let series_jsonl = telemetry.series().to_jsonl();
    std::fs::write(out_dir.join("timeseries.jsonl"), &series_jsonl)
        .expect("write timeseries.jsonl");
    let points = metamut_telemetry::parse_jsonl(&series_jsonl);
    assert!(!points.is_empty(), "series sampled");
    for w in points.windows(2) {
        assert!(w[1].iteration >= w[0].iteration, "series monotone");
    }
    println!("series ok: {} points, monotone in iterations", points.len());

    // A status server on a loopback port serves valid Prometheus text on
    // /metrics while a campaign is running against the same pipeline.
    let live = observatory_telemetry();
    let server =
        metamut_telemetry::StatusServer::bind("127.0.0.1:0", live.clone()).expect("bind status");
    let addr = server.local_addr().to_string();
    let metrics_body = std::thread::scope(|scope| {
        let campaign = scope.spawn(|| run_workload(&seeds, &reg, &compiler, &cfg, live.clone()));
        let mut body = String::new();
        // Poll until the campaign ends; keep the last live payload.
        loop {
            let done = campaign.is_finished();
            match metamut_telemetry::fetch(&addr, "/metrics") {
                Ok(b) if !b.is_empty() => body = b,
                _ => {}
            }
            if done {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        campaign.join().expect("campaign thread");
        body
    });
    drop(server);
    assert!(
        metrics_body
            .lines()
            .any(|l| l.starts_with("# TYPE metamut_")),
        "/metrics is Prometheus text: {metrics_body:.200}"
    );
    assert!(
        metrics_body.contains("metamut_fuzz_execs"),
        "/metrics exposes campaign counters"
    );
    println!(
        "/metrics ok: {} bytes of Prometheus text from {addr}",
        metrics_body.len()
    );

    // The markdown report joins snapshot + series, and its attribution
    // percentages sum to 100 ± 1.
    let snapshot = telemetry.snapshot();
    let report_md = metamut::report::campaign_report(&snapshot, &points, None);
    std::fs::write(out_dir.join("report.md"), &report_md).expect("write report.md");
    let percent_sum: f64 = report_md
        .lines()
        .skip_while(|l| !l.starts_with("| stage |"))
        .take_while(|l| l.starts_with('|'))
        .filter_map(|l| {
            let cell = l.rsplit('|').nth(1)?.trim();
            cell.strip_suffix('%')?.trim().parse::<f64>().ok()
        })
        .sum();
    assert!(
        (percent_sum - 100.0).abs() <= 1.0,
        "attribution sums to {percent_sum}, want 100±1\n{report_md}"
    );
    println!("report ok: attribution sums to {percent_sum:.2}%\n");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let gate = "instrumented campaign <= 3% slower than telemetry-off".to_string();
    let report = ObservatoryReport {
        iterations,
        seed: opts.seed,
        repeats,
        workers: WORKERS,
        available_parallelism: cores,
        baseline_s,
        instrumented_s,
        overhead_pct,
        gate: gate.clone(),
        trace_spans: events.len(),
        series_points: points.len(),
        metrics_bytes: metrics_body.len(),
        attribution_percent_sum: percent_sum,
        note: "exp_throughput workload (MuCFuzz.s full registry vs GCC -O2); overhead \
               measured on the deterministic 1-worker campaign (baseline = \
               Telemetry::disabled(), instrumented = spans + series + metrics recording), \
               best-of-N wall time over interleaved baseline/instrumented rounds; \
               artifacts from a separate 2-worker instrumented campaign land in \
               target/experiments/"
            .into(),
    };

    let path = if smoke {
        out_dir.join("BENCH_observatory_smoke.json")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_observatory.json")
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize observatory report");
    std::fs::write(&path, json + "\n").expect("write BENCH_observatory.json");
    println!("report written to {}", path.display());

    if smoke {
        println!("(smoke run: overhead gate skipped)");
    } else {
        assert!(
            overhead_pct <= 3.0,
            "observatory overhead {overhead_pct:+.2}% exceeds the 3% gate ({gate})"
        );
        println!("gate ok: {overhead_pct:+.2}% <= 3% — {gate}");
    }
    metamut_bench::finish();
}
