//! Experiment: the §5.3 / Figure 5 bug case studies, reproduced end to end —
//! each seed is mutated by the named mutators and the resulting mutant is
//! fed to the right compiler profile, which must crash with the planted
//! reconstruction of the reported bug.

use metamut_bench::{render_table, write_json, ExpOptions};
use metamut_muast::{mutate_source, MutationOutcome};
use metamut_simcomp::{CompileOptions, Compiler, OptFlags, Profile};
use serde::Serialize;

#[derive(Serialize)]
struct CaseResult {
    case: String,
    mutators: Vec<String>,
    compiler: String,
    flags: String,
    bug_id: Option<String>,
    reproduced: bool,
}

fn try_mutate(name: &str, src: &str) -> Option<String> {
    let reg = metamut_mutators::full_registry();
    let m = reg.get(name)?;
    for seed in 0..200 {
        if let Ok(MutationOutcome::Mutated(s)) = mutate_source(m.mutator.as_ref(), src, seed) {
            return Some(s);
        }
    }
    None
}

fn main() {
    let _opts = ExpOptions::from_args();
    println!("== §5.3 / Figure 5 bug case studies ==\n");
    let mut results = Vec::new();

    // ------------------------------------------------------------------
    // Clang #63762 (Figure 5): Ret2V on the jump-heavy seed.
    // ------------------------------------------------------------------
    {
        let seed_program = r#"
void touch(int *x, int *y) { x[0] = y[0]; }
unsigned foo(int x[64], int y[64]) {
    touch(x, y);
    if (x[0] > y[0]) goto gt;
    if (x[0] < y[0]) goto lt;
    return 0x01234567;
gt:
    return 0x12345678;
lt:
    return 0xF0123456;
}
int main(void) { int a[64]; int b[64]; a[0] = 1; b[0] = 2; return (int)foo(a, b); }
"#;
        // Apply Ret2V until foo becomes void (it may pick another function
        // first on some seeds).
        let reg = metamut_mutators::full_registry();
        let ret2v = reg
            .get("ModifyFunctionReturnTypeToVoid")
            .expect("Ret2V registered");
        let mut mutant = None;
        for seed in 0..300 {
            if let Ok(MutationOutcome::Mutated(s)) =
                mutate_source(ret2v.mutator.as_ref(), seed_program, seed)
            {
                if s.contains("void foo") {
                    mutant = Some(s);
                    break;
                }
            }
        }
        let mutant = mutant.expect("Ret2V voids foo on some seed");
        let clang = Compiler::new(Profile::Clang, CompileOptions::o2());
        let r = clang.compile(&mutant);
        let bug = r.outcome.crash().map(|c| c.bug_id.to_string());
        let reproduced = bug.as_deref() == Some("clang-63762-label-codegen");
        results.push(CaseResult {
            case: "Clang #63762".into(),
            mutators: vec!["ModifyFunctionReturnTypeToVoid".into()],
            compiler: "clang-sim".into(),
            flags: clang.options().render(),
            bug_id: bug,
            reproduced,
        });
    }

    // ------------------------------------------------------------------
    // GCC #111820: ChangeParamScope + AggregateMemberToScalarVariable +
    // ReduceArrayDimension at -O3 -fno-tree-vrp → vectorizer hang.
    // ------------------------------------------------------------------
    {
        // The already-mutated shape (the paper's minimized mutant).
        let mutant = r#"
int r;
int r_0;
void f(void) {
    int n = 0;
    while (--n) {
        r_0 += r;
        r += r; r += r; r += r; r += r; r += r;
    }
}
int main(void) { return 0; }
"#;
        let opts = CompileOptions {
            opt_level: 3,
            flags: OptFlags {
                no_tree_vrp: true,
                ..Default::default()
            },
        };
        let gcc = Compiler::new(Profile::Gcc, opts);
        let r = gcc.compile(mutant);
        let bug = r.outcome.crash().map(|c| c.bug_id.to_string());
        let reproduced = bug.as_deref() == Some("gcc-111820-vectorizer-hang");
        results.push(CaseResult {
            case: "GCC #111820".into(),
            mutators: vec![
                "ChangeParamScope".into(),
                "AggregateMemberToScalarVariable".into(),
                "ReduceArrayDimension".into(),
            ],
            compiler: "gcc-sim".into(),
            flags: gcc.options().render(),
            bug_id: bug,
            reproduced,
        });
    }

    // ------------------------------------------------------------------
    // GCC #111819: DecaySmallStruct on the _Complex seed → fold_offsetof.
    // ------------------------------------------------------------------
    {
        let seed_program = r#"
_Complex double x;
int *bar(void) {
    return (int *)&__imag__ x;
}
int main(void) { x = 0; return 0; }
"#;
        let mutant = try_mutate("DecaySmallStruct", seed_program)
            .expect("DecaySmallStruct applies to the complex global");
        let gcc = Compiler::new(Profile::Gcc, CompileOptions::o0());
        let r = gcc.compile(&mutant);
        let bug = r.outcome.crash().map(|c| c.bug_id.to_string());
        let reproduced = bug.as_deref() == Some("gcc-111819-fold-offsetof");
        results.push(CaseResult {
            case: "GCC #111819".into(),
            mutators: vec!["CombineVariable/DecaySmallStruct".into()],
            compiler: "gcc-sim".into(),
            flags: gcc.options().render(),
            bug_id: bug,
            reproduced,
        });
    }

    // ------------------------------------------------------------------
    // Clang #69213: StructToInt mutant (front-end crash during sema).
    // ------------------------------------------------------------------
    {
        let mutant = "foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }";
        let clang = Compiler::new(Profile::Clang, CompileOptions::o0());
        let r = clang.compile(mutant);
        let bug = r.outcome.crash().map(|c| c.bug_id.to_string());
        let reproduced = bug.as_deref() == Some("clang-69213-scalar-brace");
        results.push(CaseResult {
            case: "Clang #69213".into(),
            mutators: vec!["StructToInt".into()],
            compiler: "clang-sim".into(),
            flags: clang.options().render(),
            bug_id: bug,
            reproduced,
        });
    }

    // ------------------------------------------------------------------
    // §5.2 crash case: ChangeVarDeclQualifier + CopyExpr → strlen opt.
    // ------------------------------------------------------------------
    {
        let mutant = r#"
static char buffer[32];
int test4(void) { return sprintf(buffer, "%s", buffer); }
void main_test(void) {
    memset(buffer, 'A', 32);
    if (test4() != 3) abort();
}
int main(void) { main_test(); return 0; }
"#;
        let gcc = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let r = gcc.compile(mutant);
        let bug = r.outcome.crash().map(|c| c.bug_id.to_string());
        let reproduced = bug.as_deref() == Some("gcc-strlen-verify-range");
        results.push(CaseResult {
            case: "GCC strlen (§5.2)".into(),
            mutators: vec!["ChangeVarDeclQualifier".into(), "CopyExpr".into()],
            compiler: "gcc-sim".into(),
            flags: gcc.options().render(),
            bug_id: bug,
            reproduced,
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.case.clone(),
                r.mutators.join(" + "),
                r.compiler.clone(),
                r.flags.clone(),
                r.bug_id.clone().unwrap_or_else(|| "-".into()),
                if r.reproduced {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Case",
                "Mutators",
                "Compiler",
                "Flags",
                "Triggered bug",
                "Reproduced"
            ],
            &rows
        )
    );

    let all = results.iter().all(|r| r.reproduced);
    println!(
        "{} / {} case studies reproduced",
        results.iter().filter(|r| r.reproduced).count(),
        results.len()
    );
    let path = write_json("case_studies", &results);
    println!("report written to {}", path.display());
    assert!(all, "a case study failed to reproduce");
    metamut_bench::finish();
}
