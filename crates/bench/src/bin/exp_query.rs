//! Experiment: the demand-driven query engine vs the PR 4 baseline path
//! vs cold compilation.
//!
//! PR 4's `Baseline` fast path handled exactly one edited declaration and
//! bailed to a cold compile for anything else. The query engine
//! (`metamut_simcomp::query`) memoizes the per-declaration pipeline as
//! red-green queries over a shared database, so a k-declaration mutant
//! recomputes k pipelines and validates the rest green. This bin measures
//! all three engines on campaign-shaped workloads — single-declaration
//! mutants (PR 4's home turf) and 3-declaration mutants (where the
//! baseline path collapses to cold) — cross-checking every query result
//! against its cold compile and recording everything in
//! `BENCH_query.json` at the repository root.
//!
//! Enforced gates: the query engine clears **3×** cold throughput on
//! 1-declaration mutants and **2×** on 3-declaration mutants, with
//! **zero** cross-check mismatches and a 100% fast-path rate everywhere.
//! Query timings include the one-time seed-slot build, exactly as a
//! campaign pays it.
//!
//! Usage: `exp_query [--mutants N] [--repeats N] [--smoke]`. `--smoke`
//! shrinks the workload, skips the throughput gates (the cross-check
//! still must be clean), and parks its report under `target/experiments/`
//! so CI never dirties the tree.

use metamut_bench::render_table;
use metamut_simcomp::{coverage_equal, Baseline, CompileOptions, Compiler, Profile, QueryCache};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct QueryRow {
    functions: usize,
    edited_decls: usize,
    seed_bytes: usize,
    mutants: usize,
    cold_s: f64,
    baseline_s: f64,
    query_s: f64,
    cold_per_sec: f64,
    baseline_per_sec: f64,
    query_per_sec: f64,
    query_speedup_vs_cold: f64,
    baseline_speedup_vs_cold: f64,
    fast_path_rate_pct: f64,
    cross_check_mismatches: usize,
}

#[derive(Serialize)]
struct QueryReport {
    mutants_per_row: usize,
    repeats: usize,
    gate: String,
    speedup_one_decl: f64,
    speedup_three_decl: f64,
    rows: Vec<QueryRow>,
    note: String,
}

/// One function of the synthetic seed. `tweak != 0` models a campaign
/// mutant's body edit, leaving every other chunk byte-identical.
fn func_src(i: usize, tweak: usize) -> String {
    format!(
        "int fn_{i}(int n) {{\n    \
         int acc = {init};\n    \
         int lim = n + {pad};\n    \
         for (int j = 0; j < lim; j = j + 1) {{ acc = acc + j * 3 + g; }}\n    \
         vg = acc;\n    \
         return acc;\n}}\n",
        init = i + tweak * 13,
        pad = (i * 7) % 5,
    )
}

/// A campaign-shaped program: globals plus `funcs` loop-carrying
/// functions plus a `main` that calls them all. `tweaks[i] != 0` rewrites
/// function `i`'s body.
fn make_program(funcs: usize, tweaks: &[usize]) -> String {
    let mut s = String::from("int g = 3;\nvolatile int vg;\n");
    for i in 0..funcs {
        s.push_str(&func_src(i, tweaks.get(i).copied().unwrap_or(0)));
    }
    s.push_str("int main(void) {\n    int t = 0;\n");
    for i in 0..funcs {
        s.push_str(&format!("    t = t + fn_{i}({});\n", 2 + i % 5));
    }
    s.push_str("    return t;\n}\n");
    s
}

/// Round-robin k-declaration mutants: each rewrites `k` distinct function
/// bodies of the `funcs`-function seed.
fn make_mutants(funcs: usize, count: usize, k: usize) -> Vec<String> {
    (0..count)
        .map(|m| {
            let mut tweaks = vec![0usize; funcs];
            for j in 0..k {
                tweaks[(m * k + j) % funcs] = 1 + m / funcs + j;
            }
            make_program(funcs, &tweaks)
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    };
    let mutants_per_row = arg("--mutants").unwrap_or(if smoke { 40 } else { 240 });
    let repeats = arg("--repeats").unwrap_or(if smoke { 1 } else { 3 });
    let funcs: usize = if smoke { 16 } else { 32 };

    println!(
        "== Query engine vs baseline path vs cold ({mutants_per_row} mutants per row, best of {repeats}) ==\n"
    );

    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let seed = make_program(funcs, &[]);
    assert!(
        compiler.compile(&seed).outcome.is_success(),
        "the {funcs}-function seed must compile cleanly"
    );

    let mut rows = Vec::new();
    for &k in &[1usize, 3] {
        let mutants = make_mutants(funcs, mutants_per_row, k);

        // Correctness first: every mutant's query result must be
        // bit-identical to cold, and k-declaration campaign mutants must
        // take the fast path (a fallback-heavy run would make the timing
        // a lie).
        let cache = QueryCache::default();
        let mut mismatches = 0usize;
        for m in &mutants {
            let cold = compiler.compile(m);
            let q = cache.compile(&compiler, &seed, m);
            if q.outcome != cold.outcome || !coverage_equal(&q.coverage, &cold.coverage) {
                mismatches += 1;
            }
        }
        let fast_rate = 100.0 * cache.hit_rate();

        // Best-of-N wall time. The query run pays the one-time seed-slot
        // build inside the clock, as a campaign worker would; the PR 4
        // baseline run likewise pays its Baseline build.
        let mut cold_s = f64::INFINITY;
        let mut baseline_s = f64::INFINITY;
        let mut query_s = f64::INFINITY;
        for _ in 0..repeats {
            let started = Instant::now();
            for m in &mutants {
                std::hint::black_box(compiler.compile(m));
            }
            cold_s = cold_s.min(started.elapsed().as_secs_f64());

            let started = Instant::now();
            let b = Baseline::build(&compiler, &seed).expect("seed must be cacheable");
            for m in &mutants {
                std::hint::black_box(compiler.compile_incremental(m, &b));
            }
            baseline_s = baseline_s.min(started.elapsed().as_secs_f64());

            let started = Instant::now();
            let fresh = QueryCache::default();
            for m in &mutants {
                std::hint::black_box(fresh.compile(&compiler, &seed, m));
            }
            query_s = query_s.min(started.elapsed().as_secs_f64());
        }

        rows.push(QueryRow {
            functions: funcs,
            edited_decls: k,
            seed_bytes: seed.len(),
            mutants: mutants.len(),
            cold_s,
            baseline_s,
            query_s,
            cold_per_sec: mutants.len() as f64 / cold_s,
            baseline_per_sec: mutants.len() as f64 / baseline_s,
            query_per_sec: mutants.len() as f64 / query_s,
            query_speedup_vs_cold: cold_s / query_s,
            baseline_speedup_vs_cold: cold_s / baseline_s,
            fast_path_rate_pct: fast_rate,
            cross_check_mismatches: mismatches,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.edited_decls.to_string(),
                format!("{:.0}", r.cold_per_sec),
                format!("{:.0}", r.baseline_per_sec),
                format!("{:.0}", r.query_per_sec),
                format!("{:.2}x", r.baseline_speedup_vs_cold),
                format!("{:.2}x", r.query_speedup_vs_cold),
                format!("{:.0}%", r.fast_path_rate_pct),
                r.cross_check_mismatches.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Edited decls",
                "Cold/s",
                "Baseline/s",
                "Query/s",
                "Baseline speedup",
                "Query speedup",
                "Fast path",
                "Mismatches"
            ],
            &table
        )
    );

    let speedup_one = rows
        .iter()
        .find(|r| r.edited_decls == 1)
        .map(|r| r.query_speedup_vs_cold)
        .unwrap_or(0.0);
    let speedup_three = rows
        .iter()
        .find(|r| r.edited_decls == 3)
        .map(|r| r.query_speedup_vs_cold)
        .unwrap_or(0.0);
    let gate = "query engine >= 3.0x cold throughput on 1-decl mutants and >= 2.0x on 3-decl \
                mutants, 0 cross-check mismatches, 100% fast-path rate"
        .to_string();
    let report = QueryReport {
        mutants_per_row,
        repeats,
        gate: gate.clone(),
        speedup_one_decl: speedup_one,
        speedup_three_decl: speedup_three,
        rows,
        note: "k-declaration mutants of a synthetic many-function seed vs gcc-sim -O2; query \
               timing includes the one-time seed-slot build; the PR 4 baseline path handles \
               only k=1 and bails cold on k=3 by design; cross-check = outcome equality + \
               coverage-set equality against a cold compile per mutant"
            .into(),
    };

    // The committed evidence lives at the repository root, next to the
    // README that cites it; smoke runs park their miniature report in
    // `target/` so CI never dirties the tree.
    let path = if smoke {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        std::fs::create_dir_all(&dir).expect("create target/experiments");
        dir.join("BENCH_query_smoke.json")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_query.json")
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize query report");
    std::fs::write(&path, json + "\n").expect("write BENCH_query.json");
    println!("report written to {}", path.display());

    // The correctness gates hold even in smoke mode: a wrong result is
    // wrong at any scale.
    for r in &report.rows {
        assert_eq!(
            r.cross_check_mismatches, 0,
            "query engine diverged from cold on {}-decl mutants",
            r.edited_decls
        );
        assert_eq!(
            r.fast_path_rate_pct, 100.0,
            "campaign-shaped {}-decl mutants fell off the fast path",
            r.edited_decls
        );
    }
    if smoke {
        println!("(smoke run: throughput gates skipped, cross-check enforced)");
    } else {
        assert!(
            speedup_one >= 3.0,
            "query engine reached only {speedup_one:.2}x on 1-decl mutants (gate: {gate})"
        );
        assert!(
            speedup_three >= 2.0,
            "query engine reached only {speedup_three:.2}x on 3-decl mutants (gate: {gate})"
        );
        println!("gate ok: {speedup_one:.2}x on 1-decl, {speedup_three:.2}x on 3-decl — {gate}");
    }
    metamut_bench::finish();
}
