//! Experiment: cross-seed memo sharing under content-addressed query
//! keys.
//!
//! A multi-seed campaign compiles mutants of a *family* of seeds that
//! share most of their declarations — the campaign-realistic shape, since
//! corpus entries descend from each other. Under the retired slot-keyed
//! engine every seed's memos were private to its slot, so the family
//! recompiled the shared prelude once per seed; under content-addressed
//! keys the prelude is compiled once and every later seed's slot build —
//! and every mutant compile — rides the shared memos. This bin measures
//! that edge on a seed family sharing well over half their declarations,
//! with identical edits applied across family members, and records the
//! evidence in `BENCH_crossseed.json` at the repository root.
//!
//! Legs:
//! - **correctness**: every mutant of every family member compiled with
//!   `cross_check_every = 1` (each query result re-checked against a cold
//!   compile) — gate: **0 mismatches**; also the accounting run for the
//!   cross-seed hit rate — gate: **> 50%** of stage-memo hits served
//!   cross-seed.
//! - **throughput**: the whole family's mutant stream through one shared
//!   `QueryDb` vs the reference engine — one *isolated* `QueryDb` per
//!   seed, which is exactly what slot-private keying degenerates to —
//!   gate: shared **>= 1.4x** isolated.
//! - **slotless**: the `metamut compile` path (same program compiled
//!   twice through one cache) and the macro-fuzzer path (variant stream
//!   over pooled parents) — gate: both hit warm memos (**nonzero**
//!   query hits) with no campaign slot involved.
//!
//! Usage: `exp_crossseed [--mutants N] [--repeats N] [--smoke]`.
//! `--smoke` shrinks the workload, skips the timing gate (counter-based
//! gates still hold), and parks its report under `target/experiments/`
//! so CI never dirties the tree.

use metamut_bench::render_table;
use metamut_simcomp::{coverage_equal, CompileOptions, Compiler, Profile, QueryCache, QueryDb};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct CrossSeedReport {
    seeds: usize,
    shared_decls: usize,
    decls_per_seed: usize,
    shared_fraction_pct: f64,
    mutants_per_seed: usize,
    repeats: usize,
    gate: String,
    cross_check_mismatches: usize,
    stage_hits: u64,
    cross_seed_hits: u64,
    cross_seed_rate_pct: f64,
    isolated_s: f64,
    shared_s: f64,
    isolated_per_sec: f64,
    shared_per_sec: f64,
    shared_speedup: f64,
    compile_style_hits: u64,
    macro_style_hits: u64,
    note: String,
}

/// One shared-prelude function. Deliberately heavy (nested loops, many
/// statements): the prelude models the mature, expensive-to-compile part
/// of a corpus ancestor, which is exactly where cross-seed sharing pays.
/// `tweak != 0` is a campaign mutant's body edit — the same `(i, tweak)`
/// pair produces the same bytes in every family member.
fn shared_fn(i: usize, tweak: usize) -> String {
    format!(
        "int sh_{i}(int n) {{\n    \
         int acc = {init};\n    \
         int top = n + {pad};\n    \
         for (int j = 0; j < top; j = j + 1) {{\n        \
         int row = j * 3 + g;\n        \
         for (int q = 0; q < 4; q = q + 1) {{ row = row + q * j - {i}; acc = acc + row; }}\n        \
         if (row > acc) {{ acc = acc - row / 2; }} else {{ acc = acc + 1; }}\n        \
         vg = acc;\n    \
         }}\n    \
         int tail = acc;\n    \
         while (tail > 100) {{ tail = tail - 77; vg = tail; }}\n    \
         return acc + tail;\n}}\n",
        init = i * 5 + tweak * 13,
        pad = (i * 7) % 5,
    )
}

/// One seed-private function: small, and named after its seed so no two
/// family members share it.
fn tail_fn(seed_id: usize, i: usize) -> String {
    format!(
        "int t{seed_id}_{i}(int n) {{ int s = n + {seed_id}; \
         for (int j = 0; j < {lim}; j = j + 1) {{ s = s + j * {i}; }} return s; }}\n",
        lim = 3 + i,
    )
}

/// A family member: 2 globals + `shared` prelude functions (byte-identical
/// across the family) + `tails` seed-private functions + a seed-private
/// `main`. `tweaks[i] != 0` rewrites shared function `i`'s body — the
/// same `tweaks` vector applied to two members produces byte-identical
/// edited chunks.
fn make_member(seed_id: usize, shared: usize, tails: usize, tweaks: &[usize]) -> String {
    let mut s = String::from("int g = 3;\nvolatile int vg;\n");
    for i in 0..shared {
        s.push_str(&shared_fn(i, tweaks.get(i).copied().unwrap_or(0)));
    }
    for i in 0..tails {
        s.push_str(&tail_fn(seed_id, i));
    }
    s.push_str("int main(void) {\n    int t = 0;\n");
    for i in 0..shared {
        s.push_str(&format!("    t = t + sh_{i}({});\n", 2 + i % 5));
    }
    for i in 0..tails {
        s.push_str(&format!("    t = t + t{seed_id}_{i}({});\n", 1 + i));
    }
    s.push_str("    return t;\n}\n");
    s
}

/// The family's mutant schedule: mutant `m` rewrites two shared-prelude
/// functions. Applying the schedule to every member yields identical
/// edits across the family (the corpus-descendant shape: the interesting
/// edit travels, the private tail stays).
fn tweaks_for(m: usize, shared: usize) -> Vec<usize> {
    let mut tweaks = vec![0usize; shared];
    tweaks[m % shared] = 1 + m / shared;
    tweaks[(m + shared / 2) % shared] = 2 + m / shared;
    tweaks
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    };
    let mutants_per_seed = arg("--mutants").unwrap_or(if smoke { 10 } else { 48 });
    let repeats = arg("--repeats").unwrap_or(if smoke { 1 } else { 3 });
    let seeds: usize = if smoke { 4 } else { 5 };
    let shared: usize = if smoke { 10 } else { 12 };
    let tails: usize = 4;
    let decls_per_seed = 2 + shared + tails + 1; // globals + prelude + tails + main
    let shared_decls = 2 + shared;
    let shared_fraction = shared_decls as f64 / decls_per_seed as f64;

    println!(
        "== Cross-seed sharing: {seeds}-member family, {shared_decls}/{decls_per_seed} shared \
         declarations, {mutants_per_seed} mutants per member, best of {repeats} ==\n"
    );
    assert!(
        shared_fraction > 0.5,
        "the family must share over half its declarations"
    );

    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let members: Vec<String> = (0..seeds)
        .map(|s| make_member(s, shared, tails, &[]))
        .collect();
    for m in &members {
        assert!(
            compiler.compile(m).outcome.is_success(),
            "every family member must compile cleanly"
        );
    }
    let mutants: Vec<Vec<String>> = (0..seeds)
        .map(|s| {
            (0..mutants_per_seed)
                .map(|m| make_member(s, shared, tails, &tweaks_for(m, shared)))
                .collect()
        })
        .collect();

    // Correctness and accounting: one shared database, every compile
    // cross-checked against cold, counters read afterwards. The cold
    // compile never touches the database, so the hit counters describe
    // the query engine's own traffic.
    let cache = QueryCache::new(Arc::new(QueryDb::new())).with_cross_check(1);
    let mut mismatches = 0usize;
    for s in 0..seeds {
        for m in &mutants[s] {
            let cold = compiler.compile(m);
            let q = cache.compile(&compiler, &members[s], m);
            if q.outcome != cold.outcome || !coverage_equal(&q.coverage, &cold.coverage) {
                mismatches += 1;
            }
        }
    }
    assert_eq!(
        cache.mismatches(),
        0,
        "the engine's own every-compile cross-check flagged a divergence"
    );
    let stage_hits = cache.db().hits();
    let cross_seed_hits = cache.cross_seed_hits();
    let cross_seed_rate = 100.0 * cross_seed_hits as f64 / stage_hits.max(1) as f64;

    // Throughput: the family's whole mutant stream, shared database vs
    // one isolated database per seed (what slot-private keying
    // degenerates to). Both legs pay their slot builds inside the clock.
    let total_mutants = seeds * mutants_per_seed;
    let mut isolated_s = f64::INFINITY;
    let mut shared_s = f64::INFINITY;
    for _ in 0..repeats {
        let started = Instant::now();
        for s in 0..seeds {
            let isolated = QueryCache::default();
            for m in &mutants[s] {
                std::hint::black_box(isolated.compile(&compiler, &members[s], m));
            }
        }
        isolated_s = isolated_s.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        let fresh = QueryCache::default();
        for s in 0..seeds {
            for m in &mutants[s] {
                std::hint::black_box(fresh.compile(&compiler, &members[s], m));
            }
        }
        shared_s = shared_s.min(started.elapsed().as_secs_f64());
    }
    let speedup = isolated_s / shared_s;

    // Slotless riders. `metamut compile` shape: the same program through
    // one cache twice — the second pass must be all warm.
    let cli_cache = QueryCache::default();
    let cli_db_hits_cold = {
        std::hint::black_box(cli_cache.compile_program(&compiler, &members[0]));
        cli_cache.db().hits()
    };
    std::hint::black_box(cli_cache.compile_program(&compiler, &members[0]));
    let compile_style_hits = cli_cache.db().hits() - cli_db_hits_cold;

    // Macro-fuzzer shape: a variant stream over pooled parents, no seed
    // slots at all — each variant shares its unedited declarations with
    // the parent already compiled.
    let macro_cache = QueryCache::default();
    for s in 0..seeds.min(2) {
        std::hint::black_box(macro_cache.compile_program(&compiler, &members[s]));
        for m in mutants[s].iter().take(4) {
            std::hint::black_box(macro_cache.compile_program(&compiler, m));
        }
    }
    let macro_style_hits = macro_cache.db().hits();

    println!(
        "{}",
        render_table(
            &[
                "Mutants",
                "Isolated/s",
                "Shared/s",
                "Speedup",
                "Cross-seed rate",
                "Mismatches",
                "CLI hits",
                "Macro hits",
            ],
            &[vec![
                total_mutants.to_string(),
                format!("{:.0}", total_mutants as f64 / isolated_s),
                format!("{:.0}", total_mutants as f64 / shared_s),
                format!("{speedup:.2}x"),
                format!("{cross_seed_rate:.0}%"),
                mismatches.to_string(),
                compile_style_hits.to_string(),
                macro_style_hits.to_string(),
            ]]
        )
    );

    let gate = "cross-seed hit rate > 50% on a family sharing >= half its declarations, shared-db \
                mutant throughput >= 1.4x per-seed isolated databases, 0 cross-check mismatches, \
                nonzero warm hits on the slotless compile and macro-fuzzer paths"
        .to_string();
    let report = CrossSeedReport {
        seeds,
        shared_decls,
        decls_per_seed,
        shared_fraction_pct: 100.0 * shared_fraction,
        mutants_per_seed,
        repeats,
        gate: gate.clone(),
        cross_check_mismatches: mismatches,
        stage_hits,
        cross_seed_hits,
        cross_seed_rate_pct: cross_seed_rate,
        isolated_s,
        shared_s,
        isolated_per_sec: total_mutants as f64 / isolated_s,
        shared_per_sec: total_mutants as f64 / shared_s,
        shared_speedup: speedup,
        compile_style_hits,
        macro_style_hits,
        note: "seed family = shared heavy prelude + seed-private tails vs gcc-sim -O2; the same \
               2-declaration edit schedule is applied to every member; the isolated leg gives \
               each seed its own QueryDb, which is what the retired slot-keyed engine's private \
               memos amounted to; both timing legs pay slot builds inside the clock; the \
               correctness leg cross-checks every compile against cold and is also the counter \
               source for the cross-seed rate"
            .into(),
    };

    let path = if smoke {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        std::fs::create_dir_all(&dir).expect("create target/experiments");
        dir.join("BENCH_crossseed_smoke.json")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_crossseed.json")
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize cross-seed report");
    std::fs::write(&path, json + "\n").expect("write BENCH_crossseed.json");
    println!("report written to {}", path.display());

    // Counter-based gates hold at any scale; only the timing gate needs
    // the full workload.
    assert_eq!(
        mismatches, 0,
        "query results diverged from cold on the seed family"
    );
    assert!(
        cross_seed_hits > 0,
        "a shared-prelude family produced no cross-seed hits"
    );
    assert!(
        compile_style_hits > 0,
        "the compile-twice CLI path never hit a warm memo"
    );
    assert!(
        macro_style_hits > 0,
        "the macro-fuzzer variant stream never hit a warm memo"
    );
    if smoke {
        println!(
            "(smoke run: timing gate skipped; cross-seed rate {cross_seed_rate:.0}%, \
             cross-check clean)"
        );
    } else {
        assert!(
            cross_seed_rate > 50.0,
            "cross-seed rate {cross_seed_rate:.1}% on a {:.0}%-shared family (gate: {gate})",
            100.0 * shared_fraction
        );
        assert!(
            speedup >= 1.4,
            "shared database reached only {speedup:.2}x over isolated (gate: {gate})"
        );
        println!("gate ok: {cross_seed_rate:.0}% cross-seed, {speedup:.2}x over isolated — {gate}");
    }
    metamut_bench::finish();
}
