//! Experiment: branch-coverage trends (Figure 7).
//!
//! Runs all six fuzzers against both compiler profiles and prints the
//! coverage time series plus the final ordering; the paper's shape is
//! μCFuzz.s > μCFuzz.u > the best baseline, with μCFuzz.u beating the best
//! of Csmith/YARPGen/GrayC/AFL++ by ~5–6%.

use metamut_bench::{render_series, render_table, run_matrix, write_json, ExpOptions};

fn main() {
    let opts = ExpOptions::from_args();
    println!(
        "== Figure 7: coverage trends ({} iterations/fuzzer, seed {}) ==\n",
        opts.iterations, opts.seed
    );
    let reports = run_matrix(&opts);

    for profile in ["gcc-sim", "clang-sim"] {
        let series: Vec<(String, Vec<(usize, usize)>)> = reports
            .iter()
            .filter(|r| r.compiler == profile)
            .map(|r| {
                (
                    r.fuzzer.clone(),
                    r.series.iter().map(|p| (p.iteration, p.covered)).collect(),
                )
            })
            .collect();
        println!(
            "{}",
            render_series(&format!("covered branches, {profile}"), &series)
        );

        let mut rows: Vec<(String, usize)> = reports
            .iter()
            .filter(|r| r.compiler == profile)
            .map(|r| (r.fuzzer.clone(), r.final_coverage))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(f, c)| vec![f.clone(), c.to_string()])
            .collect();
        println!("{}", render_table(&["Fuzzer", "Final coverage"], &table));

        // Shape checks against the paper.
        let cov = |name: &str| {
            reports
                .iter()
                .find(|r| r.compiler == profile && r.fuzzer == name)
                .map(|r| r.final_coverage)
                .unwrap_or(0)
        };
        let s = cov("uCFuzz.s");
        let u = cov("uCFuzz.u");
        let best_baseline = ["AFL++", "GrayC", "Csmith", "YARPGen"]
            .iter()
            .map(|n| cov(n))
            .max()
            .unwrap_or(0);
        println!(
            "shape: uCFuzz.s {} uCFuzz.u ({} vs {}), uCFuzz.u {} best baseline ({} vs {}, {:+.1}%)\n",
            if s >= u { ">=" } else { "<" },
            s,
            u,
            if u > best_baseline { ">" } else { "<=" },
            u,
            best_baseline,
            100.0 * (u as f64 - best_baseline as f64) / best_baseline.max(1) as f64
        );
    }

    let path = write_json("coverage", &reports);
    println!("report written to {}", path.display());
    metamut_bench::finish();
}
