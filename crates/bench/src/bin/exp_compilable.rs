//! Experiment: compilable-mutant ratios (Table 5), averaged over repeated
//! runs exactly as the paper averages ten 24-hour runs.

use metamut_bench::{render_table, write_json, ExpOptions};
use metamut_fuzzing::campaign::{run_campaign, CampaignConfig};
use metamut_fuzzing::{all_fuzzers, corpus};
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    tool: String,
    compilable: usize,
    total: usize,
    ratio_pct: f64,
    paper_pct: f64,
}

fn main() {
    let opts = ExpOptions::from_args();
    let repeats = 4;
    let per_run = (opts.iterations / 2).max(50);
    println!(
        "== Table 5: compilable test programs ({repeats} runs x {per_run} iterations, seed {}) ==\n",
        opts.seed
    );

    let paper: &[(&str, f64)] = &[
        ("uCFuzz.s", 74.46),
        ("uCFuzz.u", 72.00),
        ("AFL++", 3.53),
        ("GrayC", 98.99),
        ("Csmith", 99.86),
        ("YARPGen", 99.83),
    ];

    let seeds: Vec<String> = corpus::seed_corpus()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let mut rows = Vec::new();
    let mut throughput = Vec::new();
    for (fi, &(name, paper_pct)) in paper.iter().enumerate() {
        let mut total = 0;
        let mut ok = 0;
        let started = std::time::Instant::now();
        for rep in 0..repeats {
            let mut fuzzer = all_fuzzers(&seeds).remove(fi);
            let cfg = CampaignConfig {
                iterations: per_run,
                seed: opts.seed ^ (rep as u64 * 31 + fi as u64),
                sample_every: per_run,
                ..opts.campaign_config()
            };
            let report = run_campaign(fuzzer.as_mut(), &compiler, &cfg);
            assert_eq!(report.fuzzer, name, "fuzzer order drifted");
            total += report.mutants.total;
            ok += report.mutants.compilable;
        }
        let elapsed = started.elapsed().as_secs_f64();
        throughput.push((name, total as f64 / elapsed.max(1e-9)));
        rows.push(Row {
            tool: name.to_string(),
            compilable: ok,
            total,
            ratio_pct: 100.0 * ok as f64 / total.max(1) as f64,
            paper_pct,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tool.clone(),
                r.compilable.to_string(),
                r.total.to_string(),
                format!("{:.2}", r.ratio_pct),
                format!("{:.2}", r.paper_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Tool",
                "Compilable (#)",
                "Total (#)",
                "Ratio (%)",
                "Paper (%)"
            ],
            &table
        )
    );

    // Shape checks: generators ≈ 100% > GrayC > uCFuzz ≈ 70%+ >> AFL++.
    let pct = |name: &str| {
        rows.iter()
            .find(|r| r.tool == name)
            .map(|r| r.ratio_pct)
            .unwrap_or(0.0)
    };
    println!(
        "shape: AFL++ {:.1}% << uCFuzz.u {:.1}% ~ uCFuzz.s {:.1}% < GrayC {:.1}% <= generators {:.1}%/{:.1}%",
        pct("AFL++"),
        pct("uCFuzz.u"),
        pct("uCFuzz.s"),
        pct("GrayC"),
        pct("Csmith"),
        pct("YARPGen"),
    );

    // §5.2 throughput: mutants/second, generation+compile included (the
    // paper's ~11/s is against a forked real compiler; only relative rates
    // are comparable).
    println!("\n-- throughput (mutants/second incl. compilation) --");
    for (name, rate) in &throughput {
        println!("{name:>10}: {rate:>8.0}/s");
    }
    println!();

    let path = write_json("compilable", &rows);
    println!("report written to {}", path.display());
    metamut_bench::finish();
}
