//! Experiment: the interprocedural summary layer — cross-call recall,
//! precision, memo locality, and what summary propagation costs the
//! campaign gate.
//!
//! PR 5's analyses stopped at function boundaries: a callee that divides
//! by its parameter, returns null, or silently loops was invisible at
//! the call site. The summary layer closes that hole, and this bin holds
//! it to the same discipline as the intraprocedural analyzer:
//!
//! 1. **Recall**: every seeded interprocedural-UB fixture (defects that
//!    only exist *across* a call) is flagged — and, as a meta-check,
//!    none of them is visible to the intraprocedural analysis alone.
//! 2. **Precision**: zero findings of any severity on the
//!    interprocedural clean controls *and* the original clean corpus.
//! 3. **Cost**: the campaign with the interprocedural gate may cost at
//!    most **5%** more wall time than the same campaign with the PR 5
//!    intraprocedural gate (`--no-interproc-gate`), because per-function
//!    summaries and finding sets are memoized under content-addressed
//!    keys: a single-declaration mutant re-summarizes only the edited
//!    function and its transitive callers. The memo hit rate backs that
//!    up in the report.
//!
//! Usage: `exp_interproc [--iterations N] [--repeats N] [--smoke]`.
//! `--smoke` shrinks the campaign, skips the cost gate, and parks its
//! report under `target/experiments/` so CI never dirties the tree.

use metamut_analyze::fixtures::{CLEAN_FIXTURES, INTERPROC_CLEAN_FIXTURES, INTERPROC_UB_FIXTURES};
use metamut_analyze::{analyze_source, analyze_unit_with, Severity, Summaries};
use metamut_bench::render_table;
use metamut_fuzzing::corpus::seed_corpus;
use metamut_fuzzing::mucfuzz::MuCFuzz;
use metamut_fuzzing::{run_campaign, CampaignConfig, CampaignReport};
use metamut_lang::parse;
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct CorpusStats {
    interproc_ub_fixtures: usize,
    interproc_ub_flagged: usize,
    intraproc_leaks: usize,
    interproc_clean_fixtures: usize,
    interproc_clean_false_positives: usize,
    intraproc_clean_fixtures: usize,
    intraproc_clean_false_positives: usize,
    analyses_per_sec: f64,
}

#[derive(Serialize)]
struct GateCost {
    iterations: usize,
    intraproc_s: f64,
    interproc_s: f64,
    overhead_pct: f64,
    mutants_checked: u64,
    mutants_filtered_intraproc: u64,
    mutants_filtered_interproc: u64,
    fast_path_rate_pct: f64,
    summary_hits: u64,
    summary_recomputes: u64,
    summary_hit_rate_pct: f64,
}

#[derive(Serialize)]
struct InterprocReport {
    repeats: usize,
    gate: String,
    corpus: CorpusStats,
    campaign: GateCost,
    note: String,
}

/// One serial campaign over the seed corpus with the UB gate armed;
/// `interproc` selects summary propagation vs the PR 5 per-chunk gate.
fn campaign(iterations: usize, interproc: bool) -> CampaignReport {
    let seeds: Vec<String> = seed_corpus().iter().map(|s| s.to_string()).collect();
    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let config = CampaignConfig {
        iterations,
        seed: 0xA11B,
        sample_every: (iterations / 10).max(1),
        ub_filter: true,
        interproc_gate: interproc,
        ..Default::default()
    };
    let mut fuzzer = MuCFuzz::new(
        "uCFuzz",
        Arc::new(metamut_mutators::full_registry()),
        seeds.iter().cloned(),
    );
    run_campaign(&mut fuzzer, &compiler, &config)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    };
    let iterations = arg("--iterations").unwrap_or(if smoke { 300 } else { 3000 });
    let repeats = arg("--repeats").unwrap_or(if smoke { 1 } else { 3 });

    println!("== Interprocedural summaries: recall, precision, gate cost (best of {repeats}) ==\n");

    // -- Recall: every cross-call defect flagged, none visible intraproc --
    let mut flagged = 0usize;
    let mut missed = Vec::new();
    let mut leaks = Vec::new();
    for (name, expected_analysis, src) in INTERPROC_UB_FIXTURES {
        let findings = analyze_source(src).expect("interproc fixtures must parse");
        if findings
            .iter()
            .any(|f| f.severity == Severity::Ub && f.analysis == *expected_analysis)
        {
            flagged += 1;
        } else {
            missed.push(*name);
        }
        // Meta-check: the fixture really needs summaries.
        let ast = parse("<intra>", src).expect("fixture parses");
        let intra = analyze_unit_with(&ast.unit, &Summaries::default());
        if intra.iter().any(|f| f.is_ub()) {
            leaks.push(*name);
        }
    }

    // -- Precision: zero findings on both clean corpora --
    let mut interproc_fp = Vec::new();
    for (name, src) in INTERPROC_CLEAN_FIXTURES {
        let findings = analyze_source(src).expect("clean fixtures must parse");
        if !findings.is_empty() {
            interproc_fp.push((*name, findings));
        }
    }
    let mut intraproc_fp = Vec::new();
    for (name, src) in CLEAN_FIXTURES {
        let findings = analyze_source(src).expect("clean fixtures must parse");
        if !findings.is_empty() {
            intraproc_fp.push((*name, findings));
        }
    }

    // Raw analyzer throughput over the interprocedural corpus.
    let corpus_srcs: Vec<&str> = INTERPROC_UB_FIXTURES
        .iter()
        .map(|(_, _, s)| *s)
        .chain(INTERPROC_CLEAN_FIXTURES.iter().map(|(_, s)| *s))
        .collect();
    let mut sweep_s = f64::INFINITY;
    for _ in 0..repeats {
        let started = Instant::now();
        for src in &corpus_srcs {
            std::hint::black_box(analyze_source(src).expect("corpus parses"));
        }
        sweep_s = sweep_s.min(started.elapsed().as_secs_f64());
    }
    let corpus = CorpusStats {
        interproc_ub_fixtures: INTERPROC_UB_FIXTURES.len(),
        interproc_ub_flagged: flagged,
        intraproc_leaks: leaks.len(),
        interproc_clean_fixtures: INTERPROC_CLEAN_FIXTURES.len(),
        interproc_clean_false_positives: interproc_fp.len(),
        intraproc_clean_fixtures: CLEAN_FIXTURES.len(),
        intraproc_clean_false_positives: intraproc_fp.len(),
        analyses_per_sec: corpus_srcs.len() as f64 / sweep_s.max(1e-9),
    };

    // -- Gate cost: identical campaign, intraproc vs interproc gate --
    let mut intraproc_s = f64::INFINITY;
    let mut interproc_s = f64::INFINITY;
    let mut intra_report = None;
    let mut inter_report = None;
    for _ in 0..repeats {
        let started = Instant::now();
        intra_report = Some(campaign(iterations, false));
        intraproc_s = intraproc_s.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        inter_report = Some(campaign(iterations, true));
        interproc_s = interproc_s.min(started.elapsed().as_secs_f64());
    }
    let intra_ub = intra_report
        .as_ref()
        .and_then(|r| r.ub)
        .expect("intraproc campaign carries UB stats");
    let inter_ub = inter_report
        .as_ref()
        .and_then(|r| r.ub)
        .expect("interproc campaign carries UB stats");
    let overhead_pct = 100.0 * (interproc_s - intraproc_s) / intraproc_s;
    let summarized = inter_ub.summary_hits + inter_ub.summary_recomputes;
    let campaign_stats = GateCost {
        iterations,
        intraproc_s,
        interproc_s,
        overhead_pct,
        mutants_checked: inter_ub.checked,
        mutants_filtered_intraproc: intra_ub.filtered,
        mutants_filtered_interproc: inter_ub.filtered,
        fast_path_rate_pct: if inter_ub.checked > 0 {
            100.0 * inter_ub.fast_path as f64 / inter_ub.checked as f64
        } else {
            0.0
        },
        summary_hits: inter_ub.summary_hits,
        summary_recomputes: inter_ub.summary_recomputes,
        summary_hit_rate_pct: if summarized > 0 {
            100.0 * inter_ub.summary_hits as f64 / summarized as f64
        } else {
            0.0
        },
    };

    println!(
        "{}",
        render_table(
            &["Corpus", "Programs", "Flagged", "False positives"],
            &[
                vec![
                    "cross-call UB".into(),
                    corpus.interproc_ub_fixtures.to_string(),
                    corpus.interproc_ub_flagged.to_string(),
                    "-".into(),
                ],
                vec![
                    "cross-call clean".into(),
                    corpus.interproc_clean_fixtures.to_string(),
                    "-".into(),
                    corpus.interproc_clean_false_positives.to_string(),
                ],
                vec![
                    "intraproc clean".into(),
                    corpus.intraproc_clean_fixtures.to_string(),
                    "-".into(),
                    corpus.intraproc_clean_false_positives.to_string(),
                ],
            ],
        )
    );
    println!(
        "{}",
        render_table(
            &[
                "Gate",
                "Wall s",
                "Filtered",
                "Fast path",
                "Memo hits",
                "Overhead"
            ],
            &[
                vec![
                    "intraproc".into(),
                    format!("{:.2}", campaign_stats.intraproc_s),
                    campaign_stats.mutants_filtered_intraproc.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ],
                vec![
                    "interproc".into(),
                    format!("{:.2}", campaign_stats.interproc_s),
                    campaign_stats.mutants_filtered_interproc.to_string(),
                    format!("{:.0}%", campaign_stats.fast_path_rate_pct),
                    format!("{:.0}%", campaign_stats.summary_hit_rate_pct),
                    format!("{:+.1}%", campaign_stats.overhead_pct),
                ],
            ],
        )
    );

    let gate = "100% of cross-call UB fixtures flagged (all invisible intraprocedurally), \
                0 findings on both clean corpora, interproc gate costs <= 5% campaign \
                wall time over the intraprocedural gate"
        .to_string();
    let report = InterprocReport {
        repeats,
        gate: gate.clone(),
        corpus,
        campaign: campaign_stats,
        note: "recall/precision over metamut_analyze::fixtures::INTERPROC_*; cost = \
               serial uCFuzz campaign over the seed corpus vs gcc-sim -O2, interproc_gate \
               on vs off (ub_filter on in both legs), best-of-N wall time; memo hit rate \
               from the gate's content-addressed summary store"
            .into(),
    };

    let path = if smoke {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        std::fs::create_dir_all(&dir).expect("create target/experiments");
        dir.join("BENCH_interproc_smoke.json")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_interproc.json")
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize interproc report");
    std::fs::write(&path, json + "\n").expect("write BENCH_interproc.json");
    println!("report written to {}", path.display());

    // Correctness gates hold even in smoke mode: a wrong verdict is wrong
    // at any scale.
    assert!(
        missed.is_empty(),
        "cross-call UB fixtures escaped the summary layer: {missed:?}"
    );
    assert!(
        leaks.is_empty(),
        "fixtures flagged without summaries do not test the layer: {leaks:?}"
    );
    assert!(
        interproc_fp.is_empty(),
        "interproc clean corpus produced findings: {interproc_fp:?}"
    );
    assert!(
        intraproc_fp.is_empty(),
        "summaries broke the intraproc clean corpus: {intraproc_fp:?}"
    );
    if smoke {
        println!("(smoke run: cost gate skipped, recall/precision enforced)");
    } else {
        assert!(
            report.campaign.overhead_pct <= 5.0,
            "interproc gate costs {:.1}% campaign wall time (gate: {gate})",
            report.campaign.overhead_pct
        );
        println!(
            "gate ok: recall {}/{}, 0 false positives, overhead {:+.1}% <= 5%, \
             summary memo hit rate {:.0}% — {gate}",
            report.corpus.interproc_ub_flagged,
            report.corpus.interproc_ub_fixtures,
            report.campaign.overhead_pct,
            report.campaign.summary_hit_rate_pct
        );
    }
    metamut_bench::finish();
}
