//! Experiment: the multi-tenant fuzzing daemon vs sequential in-process
//! campaigns, plus checkpoint/resume determinism under interruption.
//!
//! PR 8 turns the fuzzer into a service: `metamut serve` accepts jobs
//! over a JSON-line protocol, timeslices a worker pool fairly across
//! tenants, shares one query database between every campaign, and
//! persists jobs/corpus/checkpoints so a SIGTERM'd daemon resumes where
//! it left off. This bin measures both claims end to end over the real
//! TCP protocol and records everything in `BENCH_serve.json` at the
//! repository root.
//!
//! Leg A (multi-tenant throughput): two identical campaigns submitted to
//! a 2-worker daemon vs the same two campaigns run back-to-back
//! in-process, each with its own cold query database. Gates: both jobs
//! finish `done` with bit-identical outcomes, the analyze tenant finds
//! its uninitialized read, the shared database records cross-tenant
//! hits, the HTTP `/jobs` and `/metrics` views serve live state, and
//! (real runs only) the daemon clears **1.2×** the sequential wall time.
//!
//! Leg B (resume determinism): an uninterrupted in-process campaign is
//! the baseline; the daemon runs the same spec, is stopped mid-campaign
//! (the graceful path SIGTERM takes), restarted, and resumed from its
//! checkpoint. Gates: the interruption provably lands mid-run and the
//! resumed outcome plus the persisted corpus match the baseline
//! **bit for bit** — enforced even in smoke; determinism has no scale.
//!
//! Usage: `exp_serve [--iterations N] [--smoke]`. `--smoke` shrinks the
//! workloads, skips the throughput gate, and parks its report under
//! `target/experiments/` so CI never dirties the tree.

use metamut_bench::render_table;
use metamut_fuzzing::corpus::seed_corpus;
use metamut_fuzzing::mucfuzz::MuCFuzz;
use metamut_fuzzing::{CampaignConfig, CampaignReport, CorpusEntry, SteppedCampaign};
use metamut_serve::daemon::{Daemon, DaemonConfig};
use metamut_serve::store::Store;
use metamut_serve::Client;
use metamut_simcomp::{CompileOptions, Compiler, OptFlags, Profile, QueryDb};
use metamut_telemetry::{fetch, Telemetry};
use serde::{Serialize, Value};
use serde_json::json;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct TenancyRow {
    tenants: usize,
    iterations_each: usize,
    sequential_s: f64,
    daemon_s: f64,
    speedup: f64,
    query_hits: u64,
    outcomes_identical: bool,
    analyze_ub: u64,
    http_jobs: usize,
}

#[derive(Serialize)]
struct ResumeRow {
    iterations: usize,
    consumed_at_interrupt: usize,
    outcome_identical: bool,
    corpus_entries: usize,
    corpus_identical: bool,
}

#[derive(Serialize)]
struct ServeReport {
    gate: String,
    tenancy: TenancyRow,
    resume: ResumeRow,
    note: String,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metamut-exp-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same campaign the daemon runs for a fuzz job, executed in-process
/// without interruption and with a cold private query database.
fn in_process_campaign(iterations: usize, seed: u64) -> (CampaignReport, Vec<CorpusEntry>) {
    let generator = Box::new(MuCFuzz::new(
        "uCFuzz",
        Arc::new(metamut_mutators::full_registry()),
        seed_corpus().iter().map(|s| s.to_string()),
    ));
    let compiler = Compiler::new(
        Profile::Gcc,
        CompileOptions {
            opt_level: 2,
            flags: OptFlags {
                strict_aliasing: true,
                ..Default::default()
            },
        },
    );
    let config = CampaignConfig {
        iterations,
        seed,
        sample_every: (iterations / 10).max(1),
        workers: 1,
        query_db: Some(Arc::new(QueryDb::new())),
        log_corpus: true,
        ..Default::default()
    };
    let mut campaign = SteppedCampaign::new(generator, &compiler, &config, Telemetry::new());
    while !campaign.is_done() {
        campaign.step(64);
    }
    campaign.finish()
}

/// The deterministic slice of a fuzz-job report: everything
/// `CampaignReport::outcome_eq` compares.
fn outcome_fields(report: &Value) -> Vec<(String, Value)> {
    [
        "fuzzer",
        "compiler",
        "series",
        "crashes",
        "mutants",
        "final_coverage",
        "stage_coverage",
    ]
    .iter()
    .map(|k| (k.to_string(), report.get(k).cloned().unwrap_or(Value::Null)))
    .collect()
}

fn report_of(job: &Value) -> &Value {
    job.get("result")
        .and_then(|r| r.get("report"))
        .expect("fuzz job result carries the campaign report")
}

/// Leg A: two identical tenants plus an analyze one-shot on a 2-worker
/// daemon with the HTTP observatory mounted, vs the same two campaigns
/// sequential in-process.
fn run_tenancy(iterations: usize) -> TenancyRow {
    let seed = 11u64;

    let started = Instant::now();
    let (seq_a, _) = in_process_campaign(iterations, seed);
    let (seq_b, _) = in_process_campaign(iterations, seed);
    let sequential_s = started.elapsed().as_secs_f64();
    assert!(
        seq_a.outcome_eq(&seq_b),
        "identical in-process campaigns must agree before the daemon is measured"
    );

    let dir = scratch_dir("tenancy");
    let daemon = Daemon::start(DaemonConfig {
        store: dir.clone(),
        addr: "127.0.0.1:0".to_string(),
        http_addr: Some("127.0.0.1:0".to_string()),
        workers: 2,
        slice: 64,
        checkpoint_every: 0,
    })
    .expect("start daemon");
    let http = daemon
        .http_addr()
        .expect("daemon bound its HTTP observatory")
        .to_string();
    let mut client = Client::connect(&daemon.local_addr().to_string()).expect("connect");

    let started = Instant::now();
    let a = client
        .submit(&json!({"cmd": "fuzz", "iterations": (iterations), "seed": (seed)}))
        .expect("submit a");
    let b = client
        .submit(&json!({"cmd": "fuzz", "iterations": (iterations), "seed": (seed)}))
        .expect("submit b");
    let c = client
        .submit(&json!({"cmd": "analyze", "program": "int main() { int x; return x; }"}))
        .expect("submit analyze");

    // The observatory serves live job state on the same listener as the
    // telemetry routes while the campaigns run.
    let jobs_view = fetch(&http, "/jobs").expect("/jobs over HTTP");
    let http_jobs = serde_json::from_str(&jobs_view)
        .ok()
        .and_then(|v: Value| v.as_array().map(|a| a.len()))
        .expect("/jobs is a JSON array");

    let job_a = client.wait(a).expect("wait a");
    let job_b = client.wait(b).expect("wait b");
    let job_c = client.wait(c).expect("wait c");
    let daemon_s = started.elapsed().as_secs_f64();

    for job in [&job_a, &job_b, &job_c] {
        assert_eq!(
            job.get("status").and_then(|v| v.as_str()),
            Some("done"),
            "job record: {job:?}"
        );
    }
    let outcomes_identical = outcome_fields(report_of(&job_a)) == outcome_fields(report_of(&job_b));
    let analyze_ub = job_c
        .get("result")
        .and_then(|r| r.get("ub"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let query_hits = client
        .status()
        .expect("status")
        .get("query_db")
        .and_then(|q| q.get("hits"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let metrics = fetch(&http, "/metrics").expect("/metrics over HTTP");
    assert!(
        metrics.contains("metamut_serve_jobs_done"),
        "daemon counters missing from /metrics"
    );

    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);

    TenancyRow {
        tenants: 2,
        iterations_each: iterations,
        sequential_s,
        daemon_s,
        speedup: sequential_s / daemon_s,
        query_hits,
        outcomes_identical,
        analyze_ub,
        http_jobs,
    }
}

/// Leg B: stop the daemon mid-campaign, restart it, and compare the
/// resumed run against an uninterrupted in-process baseline.
fn run_resume(iterations: usize) -> ResumeRow {
    let seed = 5u64;
    let (base_report, base_corpus) = in_process_campaign(iterations, seed);
    let base_value = serde::to_value(&base_report);

    let dir = scratch_dir("resume");
    let config = || DaemonConfig {
        store: dir.clone(),
        addr: "127.0.0.1:0".to_string(),
        http_addr: None,
        workers: 1,
        slice: 8,
        checkpoint_every: 1,
    };
    let daemon = Daemon::start(config()).expect("start daemon");
    let mut client = Client::connect(&daemon.local_addr().to_string()).expect("connect");
    let id = client
        .submit(&json!({"cmd": "fuzz", "iterations": (iterations), "seed": (seed)}))
        .expect("submit");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let job = client.job(id).expect("job");
        let consumed = job.get("consumed").and_then(|v| v.as_u64()).unwrap_or(0) as usize;
        if consumed > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "job never progressed: {job:?}");
        std::thread::sleep(Duration::from_millis(1));
    }
    daemon.stop();

    let store = Store::open(&dir).expect("reopen store");
    let parked = store
        .load_jobs()
        .into_iter()
        .find(|r| r.id == id)
        .expect("parked record");
    let consumed_at_interrupt = parked.consumed;
    assert!(
        consumed_at_interrupt > 0 && consumed_at_interrupt < iterations,
        "expected a mid-run interruption, consumed {consumed_at_interrupt}"
    );
    assert!(store.load_checkpoint(id).is_some(), "checkpoint missing");
    drop(store);

    let daemon = Daemon::start(config()).expect("restart daemon");
    let mut client = Client::connect(&daemon.local_addr().to_string()).expect("reconnect");
    let job = client.wait(id).expect("wait resumed");
    assert_eq!(job.get("status").and_then(|v| v.as_str()), Some("done"));
    let outcome_identical = outcome_fields(report_of(&job)) == outcome_fields(&base_value);
    daemon.stop();

    let store = Store::open(&dir).expect("reopen store");
    let corpus: Vec<_> = store
        .load_corpus()
        .into_iter()
        .filter(|e| e.job == id)
        .collect();
    let corpus_identical = corpus.len() == base_corpus.len()
        && corpus.iter().zip(base_corpus.iter()).all(|(stored, base)| {
            stored.program == base.program
                && stored.iteration == base.iteration
                && stored.new_bits == base.new_bits
        });
    let _ = std::fs::remove_dir_all(&dir);

    ResumeRow {
        iterations,
        consumed_at_interrupt,
        outcome_identical,
        corpus_entries: corpus.len(),
        corpus_identical,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    };
    let tenancy_iters = arg("--iterations").unwrap_or(if smoke { 80 } else { 2400 });
    let resume_iters = if smoke { 600 } else { 2000 };

    println!("== Fuzzing daemon: multi-tenant throughput and resume determinism ==\n");

    let tenancy = run_tenancy(tenancy_iters);
    let resume = run_resume(resume_iters);

    println!(
        "{}",
        render_table(
            &[
                "Leg",
                "Iterations",
                "Sequential",
                "Daemon",
                "Speedup",
                "Query hits",
                "Identical",
            ],
            &[
                vec![
                    "2 tenants + analyze".to_string(),
                    format!("{}x2", tenancy.iterations_each),
                    format!("{:.2}s", tenancy.sequential_s),
                    format!("{:.2}s", tenancy.daemon_s),
                    format!("{:.2}x", tenancy.speedup),
                    tenancy.query_hits.to_string(),
                    tenancy.outcomes_identical.to_string(),
                ],
                vec![
                    "interrupt + resume".to_string(),
                    format!(
                        "{} (stopped at {})",
                        resume.iterations, resume.consumed_at_interrupt
                    ),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    (resume.outcome_identical && resume.corpus_identical).to_string(),
                ],
            ],
        )
    );

    let gate = "all jobs done; identical tenants bit-identical; cross-tenant query hits > 0; \
                analyze finds UB; /jobs and /metrics live over HTTP; resumed campaign \
                bit-identical to uninterrupted (outcome + corpus); real runs: daemon >= 1.2x \
                sequential wall time"
        .to_string();
    let report = ServeReport {
        gate: gate.clone(),
        tenancy,
        resume,
        note: "leg A: two identical 2-worker-daemon campaigns sharing one query database vs \
               the same campaigns sequential in-process with cold private databases, measured \
               over the TCP JSON-line protocol; leg B: daemon stopped mid-campaign via the \
               graceful SIGTERM path, restarted, resumed from its on-disk checkpoint, and \
               compared field-for-field and corpus-entry-for-entry against an uninterrupted \
               baseline"
            .into(),
    };

    let path = if smoke {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        std::fs::create_dir_all(&dir).expect("create target/experiments");
        dir.join("BENCH_serve_smoke.json")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize serve report");
    std::fs::write(&path, json + "\n").expect("write BENCH_serve.json");
    println!("report written to {}", path.display());

    // Correctness gates hold even in smoke mode: a daemon that loses a
    // tenant's work or resumes into a different campaign is wrong at any
    // scale.
    assert!(
        report.tenancy.outcomes_identical,
        "identical tenants produced different outcomes"
    );
    assert!(
        report.tenancy.query_hits > 0,
        "no cross-tenant query hits — the shared database is not shared"
    );
    assert!(
        report.tenancy.analyze_ub > 0,
        "the analyze tenant missed its uninitialized read"
    );
    assert_eq!(
        report.tenancy.http_jobs, 3,
        "the HTTP /jobs view did not list all three tenants"
    );
    assert!(
        report.resume.outcome_identical,
        "resumed outcome diverged from the uninterrupted baseline"
    );
    assert!(
        report.resume.corpus_identical,
        "resumed corpus diverged from the uninterrupted baseline"
    );
    if smoke {
        println!("(smoke run: throughput gate skipped, determinism gates enforced)");
    } else {
        assert!(
            report.tenancy.speedup >= 1.2,
            "daemon reached only {:.2}x over sequential (gate: {gate})",
            report.tenancy.speedup
        );
        println!(
            "gate ok: {:.2}x over sequential, {} query hits, resume bit-identical — {gate}",
            report.tenancy.speedup, report.tenancy.query_hits
        );
    }
    metamut_bench::finish();
}
