//! Experiment: incremental mutant compilation vs cold compilation.
//!
//! A fuzzing campaign compiles thousands of mutants per seed, and almost
//! every mutant differs from its parent in exactly one top-level
//! declaration. Incremental compilation (`metamut_simcomp::incremental`)
//! exploits that: the seed's per-declaration pipeline artifacts are built
//! once, and each mutant re-runs the full pipeline only for its edited
//! declaration, stitching the rest from cache — bit-identical to a cold
//! compile by construction.
//!
//! This bin measures mutant-compile throughput on campaign-shaped
//! workloads (many-function seeds, single-function mutants) at several
//! seed sizes, cross-checks every mutant's incremental result against its
//! cold result (outcome equality + coverage-set equality), and records
//! everything in `BENCH_incremental.json` at the repository root. The
//! enforced gate: at the largest (campaign-shaped) seed size, incremental
//! compilation must clear **3×** cold throughput, with **zero**
//! cross-check mismatches at every size. The incremental timing includes
//! the one-time baseline build, exactly as a campaign pays it.
//!
//! Usage: `exp_incremental [--mutants N] [--repeats N] [--smoke]`.
//! `--smoke` shrinks the workload, skips the throughput gate (the
//! cross-check still must be clean), and parks its report under
//! `target/experiments/` so CI never dirties the tree.

use metamut_bench::render_table;
use metamut_simcomp::{coverage_equal, Baseline, CompileOptions, Compiler, Profile};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct IncrementalRow {
    functions: usize,
    seed_bytes: usize,
    mutants: usize,
    cold_s: f64,
    incremental_s: f64,
    cold_per_sec: f64,
    incremental_per_sec: f64,
    speedup: f64,
    fast_path_rate_pct: f64,
    cross_check_mismatches: usize,
}

#[derive(Serialize)]
struct IncrementalReport {
    mutants_per_size: usize,
    repeats: usize,
    gate: String,
    speedup_at_largest: f64,
    rows: Vec<IncrementalRow>,
    note: String,
}

/// One function of the synthetic seed. `tweak != 0` models a campaign
/// mutant: a single-declaration body edit leaving every other chunk
/// byte-identical.
fn func_src(i: usize, tweak: usize) -> String {
    format!(
        "int fn_{i}(int n) {{\n    \
         int acc = {init};\n    \
         int lim = n + {pad};\n    \
         for (int j = 0; j < lim; j = j + 1) {{ acc = acc + j * 3 + g; }}\n    \
         vg = acc;\n    \
         return acc;\n}}\n",
        init = i + tweak * 13,
        pad = (i * 7) % 5,
    )
}

/// A campaign-shaped program: globals plus `funcs` loop-carrying
/// functions plus a `main` that calls them all. `tweaks[i] != 0` rewrites
/// function `i`'s body.
fn make_program(funcs: usize, tweaks: &[usize]) -> String {
    let mut s = String::from("int g = 3;\nvolatile int vg;\n");
    for i in 0..funcs {
        s.push_str(&func_src(i, tweaks.get(i).copied().unwrap_or(0)));
    }
    s.push_str("int main(void) {\n    int t = 0;\n");
    for i in 0..funcs {
        s.push_str(&format!("    t = t + fn_{i}({});\n", 2 + i % 5));
    }
    s.push_str("    return t;\n}\n");
    s
}

/// Round-robin single-function mutants of the `funcs`-function seed.
fn make_mutants(funcs: usize, count: usize) -> Vec<String> {
    (0..count)
        .map(|m| {
            let mut tweaks = vec![0usize; funcs];
            tweaks[m % funcs] = 1 + m / funcs;
            make_program(funcs, &tweaks)
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    };
    let mutants_per_size = arg("--mutants").unwrap_or(if smoke { 40 } else { 240 });
    let repeats = arg("--repeats").unwrap_or(if smoke { 1 } else { 3 });
    let sizes: &[usize] = if smoke { &[8, 16] } else { &[8, 16, 32] };

    println!(
        "== Incremental mutant compilation ({mutants_per_size} mutants per size, best of {repeats}) ==\n"
    );

    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let mut rows = Vec::new();
    for &funcs in sizes {
        let seed = make_program(funcs, &[]);
        assert!(
            compiler.compile(&seed).outcome.is_success(),
            "the {funcs}-function seed must compile cleanly"
        );
        let mutants = make_mutants(funcs, mutants_per_size);

        // Correctness first: every mutant's incremental result must be
        // bit-identical to cold, and campaign-shaped mutants must take the
        // fast path (a 100% fallback rate would make the timing a lie).
        let baseline = Baseline::build(&compiler, &seed).expect("seed must be cacheable");
        let mut mismatches = 0usize;
        let mut fast_hits = 0usize;
        for m in &mutants {
            let cold = compiler.compile(m);
            let (inc, fast) = compiler.compile_incremental_traced(m, &baseline);
            fast_hits += fast as usize;
            if inc.outcome != cold.outcome || !coverage_equal(&inc.coverage, &cold.coverage) {
                mismatches += 1;
            }
        }

        // Best-of-N wall time; the incremental run pays the baseline
        // build inside the clock, as a campaign worker would.
        let mut cold_s = f64::INFINITY;
        let mut inc_s = f64::INFINITY;
        for _ in 0..repeats {
            let started = Instant::now();
            for m in &mutants {
                std::hint::black_box(compiler.compile(m));
            }
            cold_s = cold_s.min(started.elapsed().as_secs_f64());

            let started = Instant::now();
            let b = Baseline::build(&compiler, &seed).expect("seed must be cacheable");
            for m in &mutants {
                std::hint::black_box(compiler.compile_incremental(m, &b));
            }
            inc_s = inc_s.min(started.elapsed().as_secs_f64());
        }

        rows.push(IncrementalRow {
            functions: funcs,
            seed_bytes: seed.len(),
            mutants: mutants.len(),
            cold_s,
            incremental_s: inc_s,
            cold_per_sec: mutants.len() as f64 / cold_s,
            incremental_per_sec: mutants.len() as f64 / inc_s,
            speedup: cold_s / inc_s,
            fast_path_rate_pct: 100.0 * fast_hits as f64 / mutants.len() as f64,
            cross_check_mismatches: mismatches,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.functions.to_string(),
                format!("{:.0}", r.cold_per_sec),
                format!("{:.0}", r.incremental_per_sec),
                format!("{:.2}x", r.speedup),
                format!("{:.0}%", r.fast_path_rate_pct),
                r.cross_check_mismatches.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Functions",
                "Cold/s",
                "Incremental/s",
                "Speedup",
                "Fast path",
                "Mismatches"
            ],
            &table
        )
    );

    let speedup_at_largest = rows.last().map(|r| r.speedup).unwrap_or(0.0);
    let gate = "incremental >= 3.0x cold mutant-compile throughput at the largest seed size, \
                0 cross-check mismatches at every size"
        .to_string();
    let report = IncrementalReport {
        mutants_per_size,
        repeats,
        gate: gate.clone(),
        speedup_at_largest,
        rows,
        note: "single-function mutants of synthetic many-function seeds vs gcc-sim -O2; \
               incremental timing includes the one-time Baseline build; cross-check = \
               outcome equality + coverage-set equality against a cold compile per mutant"
            .into(),
    };

    // The committed evidence lives at the repository root, next to the
    // README that cites it; smoke runs park their miniature report in
    // `target/` so CI never dirties the tree.
    let path = if smoke {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        std::fs::create_dir_all(&dir).expect("create target/experiments");
        dir.join("BENCH_incremental_smoke.json")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json")
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize incremental report");
    std::fs::write(&path, json + "\n").expect("write BENCH_incremental.json");
    println!("report written to {}", path.display());

    // The correctness gate holds even in smoke mode: a wrong result is
    // wrong at any scale.
    for r in &report.rows {
        assert_eq!(
            r.cross_check_mismatches, 0,
            "incremental diverged from cold at {} functions",
            r.functions
        );
        assert_eq!(
            r.fast_path_rate_pct, 100.0,
            "campaign-shaped mutants fell off the fast path at {} functions",
            r.functions
        );
    }
    if smoke {
        println!("(smoke run: throughput gate skipped, cross-check enforced)");
    } else {
        assert!(
            speedup_at_largest >= 3.0,
            "incremental reached only {speedup_at_largest:.2}x of cold throughput (gate: {gate})"
        );
        println!("gate ok: {speedup_at_largest:.2}x >= 3.0x — {gate}");
    }
    metamut_bench::finish();
}
