//! Experiment: crash-witness reduction over the §5 case studies.
//!
//! Runs the signature-preserving reducer on the four reconstructed
//! case-study crashers (GCC #111820/#111819, Clang #63762/#69213) and
//! records per-crash reduction ratio, oracle-call count, and per-pass byte
//! accounting in `BENCH_reduction.json` at the repository root.
//!
//! The enforced gate matches the ISSUE 3 acceptance criterion: every
//! witness must reduce to at most 25% of its original byte size with the
//! top-two-frame crash signature preserved exactly under the same profile
//! and flags.
//!
//! Usage: `exp_reduction [--seed N] [--smoke]`. `--smoke` parks the
//! miniature report under `target/experiments/` and skips the gate so CI
//! can exercise the binary without dirtying the tree.

use metamut_bench::{render_table, ExpOptions};
use metamut_reduce::fixtures::case_studies;
use metamut_reduce::{reduce, ReduceConfig, ReductionOracle};
use metamut_simcomp::Compiler;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

#[derive(Serialize)]
struct ReductionRow {
    bug_id: String,
    compiler: String,
    flags: String,
    original_bytes: usize,
    reduced_bytes: usize,
    ratio: f64,
    oracle_calls: u64,
    rounds: usize,
    signature_preserved: bool,
    pass_bytes: BTreeMap<String, u64>,
}

#[derive(Serialize)]
struct ReductionReport {
    gate: String,
    median_ratio: f64,
    worst_ratio: f64,
    median_oracle_calls: u64,
    rows: Vec<ReductionRow>,
    note: String,
}

fn median<T: Copy + PartialOrd>(values: &mut [T]) -> T {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in medians"));
    values[values.len() / 2]
}

fn main() {
    let _opts = ExpOptions::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("== Case-study witness reduction ==\n");

    let mut rows = Vec::new();
    for cs in case_studies() {
        let compiler = Compiler::new(cs.profile, cs.options.clone());
        let crash = compiler
            .compile(cs.source)
            .outcome
            .crash()
            .unwrap_or_else(|| panic!("{}: fixture does not crash", cs.bug_id))
            .clone();
        let oracle = ReductionOracle::new(cs.profile, cs.options.clone(), crash.signature());
        let result = reduce(&oracle, cs.source, &ReduceConfig::default());
        let preserved = compiler
            .compile(&result.reduced)
            .outcome
            .crash()
            .is_some_and(|c| c.signature() == crash.signature());
        rows.push(ReductionRow {
            bug_id: cs.bug_id.to_string(),
            compiler: cs.profile.name().to_string(),
            flags: cs.options.render(),
            original_bytes: result.original_bytes,
            reduced_bytes: result.reduced_bytes,
            ratio: result.ratio(),
            oracle_calls: result.oracle_calls,
            rounds: result.rounds,
            signature_preserved: preserved,
            pass_bytes: result.pass_bytes,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bug_id.clone(),
                format!("{} {}", r.compiler, r.flags),
                format!("{} → {}", r.original_bytes, r.reduced_bytes),
                format!("{:.0}%", r.ratio * 100.0),
                r.oracle_calls.to_string(),
                if r.signature_preserved { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Bug",
                "Compiler",
                "Bytes",
                "Ratio",
                "Oracle calls",
                "Sig kept"
            ],
            &table
        )
    );

    let mut ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
    let mut calls: Vec<u64> = rows.iter().map(|r| r.oracle_calls).collect();
    let worst = ratios.iter().copied().fold(0.0f64, f64::max);
    let report = ReductionReport {
        gate: "every case-study witness <= 25% of original bytes, signature preserved".into(),
        median_ratio: median(&mut ratios),
        worst_ratio: worst,
        median_oracle_calls: median(&mut calls),
        rows,
        note: "hierarchical ddmin (decls, statement lists) + semantic shrink passes \
               (drop-unused, inline-calls, shrink-arrays, simplify-exprs) over the \
               reconstructed §5 case-study crashers; oracle = same top-two-frame \
               signature under the same profile and flags"
            .into(),
    };

    // The committed evidence lives at the repository root, next to the
    // README that cites it; smoke runs park their report in `target/` so CI
    // never dirties the tree.
    let path = if smoke {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        std::fs::create_dir_all(&dir).expect("create target/experiments");
        dir.join("BENCH_reduction_smoke.json")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_reduction.json")
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize reduction report");
    std::fs::write(&path, json + "\n").expect("write BENCH_reduction.json");
    println!("report written to {}", path.display());

    if smoke {
        println!("(smoke run: gate skipped)");
    } else {
        assert!(
            report.rows.iter().all(|r| r.signature_preserved),
            "a reduced witness lost its crash signature"
        );
        assert!(
            worst <= 0.25,
            "worst reduction ratio {worst:.2} exceeds the 0.25 gate"
        );
        println!(
            "gate ok: worst ratio {:.2} <= 0.25, all signatures preserved",
            worst
        );
    }
    metamut_bench::finish();
}
