//! Experiment: the §4.1 mutator census — library size, supervised vs
//! unsupervised split, category distribution, and the overlap between the
//! two sets.

use metamut_bench::{render_table, write_json, ExpOptions};
use metamut_muast::{Category, Provenance};
use serde::Serialize;

#[derive(Serialize)]
struct Census {
    supervised: usize,
    unsupervised: usize,
    total: usize,
    by_category: Vec<(String, usize)>,
    mutators: Vec<(String, String, String)>,
}

fn main() {
    let _opts = ExpOptions::from_args();
    let full = metamut_mutators::full_registry();
    let s = full.with_provenance(Provenance::Supervised).len();
    let u = full.with_provenance(Provenance::Unsupervised).len();

    println!("== §4.1 mutator census ==\n");
    println!(
        "{}",
        render_table(
            &["Set", "Count", "Paper"],
            &[
                vec!["supervised (M_s)".into(), s.to_string(), "68".into()],
                vec!["unsupervised (M_u)".into(), u.to_string(), "50".into()],
                vec!["total".into(), full.len().to_string(), "118".into()],
            ],
        )
    );

    println!("-- category distribution (paper: Var 16, Expr 50, Stmt 27, Fn 19, Type 6) --");
    let census = full.category_census();
    let rows: Vec<Vec<String>> = census
        .iter()
        .map(|(c, n)| {
            vec![
                c.to_string(),
                n.to_string(),
                format!("{:.0}%", 100.0 * *n as f64 / full.len() as f64),
            ]
        })
        .collect();
    println!("{}", render_table(&["Category", "Count", "Share"], &rows));
    let expr = census
        .iter()
        .find(|(c, _)| *c == Category::Expression)
        .map(|(_, n)| *n)
        .unwrap_or(0);
    println!(
        "Expression mutators are the largest group at {:.0}% (paper: 42%); Type the smallest.\n",
        100.0 * expr as f64 / full.len() as f64
    );

    // Overlap between supervised and unsupervised: same category + a shared
    // action keyword approximates the paper's "similar actions on similar
    // structures" check (they found ~10%).
    let actionish = [
        "Swap",
        "Modify",
        "Replace",
        "Duplicate",
        "Remove",
        "Insert",
        "Inverse",
        "Change",
    ];
    let keyword = |name: &str| {
        actionish
            .iter()
            .find(|a| name.starts_with(**a))
            .copied()
            .unwrap_or("other")
    };
    let mut overlap = 0;
    for ms in full.with_provenance(Provenance::Supervised) {
        for mu in full.with_provenance(Provenance::Unsupervised) {
            if ms.mutator.category() == mu.mutator.category()
                && keyword(ms.mutator.name()) == keyword(mu.mutator.name())
                && keyword(ms.mutator.name()) != "other"
            {
                overlap += 1;
            }
        }
    }
    println!(
        "similar (action, structure) pairs across the two sets: {overlap} (paper: 6 pairs ≈ 10%)\n"
    );

    println!("-- full inventory --");
    let rows: Vec<Vec<String>> = full
        .iter()
        .map(|m| {
            vec![
                m.mutator.name().to_string(),
                m.mutator.category().to_string(),
                match m.provenance {
                    Provenance::Supervised => "M_s".to_string(),
                    Provenance::Unsupervised => "M_u".to_string(),
                },
            ]
        })
        .collect();
    println!("{}", render_table(&["Mutator", "Category", "Set"], &rows));

    let report = Census {
        supervised: s,
        unsupervised: u,
        total: full.len(),
        by_category: census.iter().map(|(c, n)| (c.to_string(), *n)).collect(),
        mutators: full
            .iter()
            .map(|m| {
                (
                    m.mutator.name().to_string(),
                    m.mutator.category().to_string(),
                    m.mutator.description().to_string(),
                )
            })
            .collect(),
    };
    let path = write_json("mutators", &report);
    println!("report written to {}", path.display());
    metamut_bench::finish();
}
