//! Experiment: the dataflow UB analyzer — precision, recall, and what the
//! campaign UB gate costs.
//!
//! The analyzer (`metamut-analyze`) earns its place in the pipeline on two
//! conditions. It must be *right*: every seeded-UB fixture flagged (100%
//! recall), zero findings on the clean corpus (no false positives — a
//! gate that rejects valid mutants silently shrinks the campaign's reach).
//! And it must be *cheap*: with the pre-compile UB gate armed, campaign
//! mutant throughput may drop by at most **10%** versus the same campaign
//! with `--no-ub-filter`, thanks to the gate's incremental
//! single-chunk fast path and verdict cache.
//!
//! This bin checks both. The precision/recall sweep over the committed
//! fixture corpus is enforced at every scale — a wrong verdict is wrong in
//! smoke mode too. The throughput comparison runs the real serial campaign
//! engine (`run_campaign` + `MuCFuzz` over the seed corpus) with the gate
//! on and off; the ≤10% overhead gate is enforced only in full runs, where
//! the workload is big enough for the ratio to be stable.
//!
//! Usage: `exp_analyze [--iterations N] [--repeats N] [--smoke]`.
//! `--smoke` shrinks the campaign, skips the overhead gate, and parks its
//! report under `target/experiments/` so CI never dirties the tree.

use metamut_analyze::fixtures::{CLEAN_FIXTURES, LINT_FIXTURES, UB_FIXTURES};
use metamut_analyze::{analyze_source, Severity};
use metamut_bench::render_table;
use metamut_fuzzing::corpus::seed_corpus;
use metamut_fuzzing::mucfuzz::MuCFuzz;
use metamut_fuzzing::{run_campaign, CampaignConfig, CampaignReport};
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct CorpusStats {
    ub_fixtures: usize,
    ub_flagged: usize,
    lint_fixtures: usize,
    lint_flagged: usize,
    clean_fixtures: usize,
    clean_false_positives: usize,
    analyses_per_sec: f64,
}

#[derive(Serialize)]
struct GateStats {
    iterations: usize,
    unfiltered_s: f64,
    gated_s: f64,
    unfiltered_per_sec: f64,
    gated_per_sec: f64,
    overhead_pct: f64,
    mutants_checked: u64,
    mutants_filtered: u64,
    fast_path_rate_pct: f64,
}

#[derive(Serialize)]
struct AnalyzeReport {
    repeats: usize,
    gate: String,
    corpus: CorpusStats,
    campaign: GateStats,
    note: String,
}

/// One serial campaign over the seed corpus; `ub_filter` toggles the gate.
fn campaign(iterations: usize, ub_filter: bool) -> CampaignReport {
    let seeds: Vec<String> = seed_corpus().iter().map(|s| s.to_string()).collect();
    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let config = CampaignConfig {
        iterations,
        seed: 0xA11A,
        sample_every: (iterations / 10).max(1),
        ub_filter,
        ..Default::default()
    };
    let mut fuzzer = MuCFuzz::new(
        "uCFuzz",
        Arc::new(metamut_mutators::full_registry()),
        seeds.iter().cloned(),
    );
    run_campaign(&mut fuzzer, &compiler, &config)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
    };
    let iterations = arg("--iterations").unwrap_or(if smoke { 300 } else { 3000 });
    let repeats = arg("--repeats").unwrap_or(if smoke { 1 } else { 3 });

    println!("== UB analyzer precision/recall + campaign gate cost (best of {repeats}) ==\n");

    // -- Corpus sweep: recall on seeded UB, precision on clean programs --
    let mut ub_flagged = 0usize;
    let mut missed = Vec::new();
    for (name, expected_analysis, src) in UB_FIXTURES {
        let findings = analyze_source(src).expect("UB fixtures must parse");
        if findings
            .iter()
            .any(|f| f.severity == Severity::Ub && f.analysis == *expected_analysis)
        {
            ub_flagged += 1;
        } else {
            missed.push(*name);
        }
    }
    let mut lint_flagged = 0usize;
    for (name, expected_analysis, src) in LINT_FIXTURES {
        let findings = analyze_source(src).expect("lint fixtures must parse");
        assert!(
            findings.iter().all(|f| f.severity != Severity::Ub),
            "lint fixture {name} must not be reported as UB"
        );
        if findings.iter().any(|f| f.analysis == *expected_analysis) {
            lint_flagged += 1;
        }
    }
    let mut false_positives = Vec::new();
    for (name, src) in CLEAN_FIXTURES {
        let findings = analyze_source(src).expect("clean fixtures must parse");
        if !findings.is_empty() {
            false_positives.push((*name, findings));
        }
    }

    // Raw analyzer throughput over the whole corpus.
    let corpus_srcs: Vec<&str> = UB_FIXTURES
        .iter()
        .map(|(_, _, s)| *s)
        .chain(LINT_FIXTURES.iter().map(|(_, _, s)| *s))
        .chain(CLEAN_FIXTURES.iter().map(|(_, s)| *s))
        .collect();
    let mut sweep_s = f64::INFINITY;
    for _ in 0..repeats {
        let started = Instant::now();
        for src in &corpus_srcs {
            std::hint::black_box(analyze_source(src).expect("corpus parses"));
        }
        sweep_s = sweep_s.min(started.elapsed().as_secs_f64());
    }
    let corpus = CorpusStats {
        ub_fixtures: UB_FIXTURES.len(),
        ub_flagged,
        lint_fixtures: LINT_FIXTURES.len(),
        lint_flagged,
        clean_fixtures: CLEAN_FIXTURES.len(),
        clean_false_positives: false_positives.len(),
        analyses_per_sec: corpus_srcs.len() as f64 / sweep_s.max(1e-9),
    };

    // -- Campaign gate cost: same serial campaign, gate on vs off --
    let mut unfiltered_s = f64::INFINITY;
    let mut gated_s = f64::INFINITY;
    let mut gated_report = None;
    for _ in 0..repeats {
        let started = Instant::now();
        std::hint::black_box(campaign(iterations, false));
        unfiltered_s = unfiltered_s.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        let report = campaign(iterations, true);
        gated_s = gated_s.min(started.elapsed().as_secs_f64());
        gated_report = Some(report);
    }
    let ub = gated_report
        .as_ref()
        .and_then(|r| r.ub)
        .expect("gated campaign must carry UB stats");
    let overhead_pct = 100.0 * (gated_s - unfiltered_s) / unfiltered_s;
    let campaign_stats = GateStats {
        iterations,
        unfiltered_s,
        gated_s,
        unfiltered_per_sec: iterations as f64 / unfiltered_s,
        gated_per_sec: iterations as f64 / gated_s,
        overhead_pct,
        mutants_checked: ub.checked,
        mutants_filtered: ub.filtered,
        fast_path_rate_pct: if ub.checked > 0 {
            100.0 * ub.fast_path as f64 / ub.checked as f64
        } else {
            0.0
        },
    };

    println!(
        "{}",
        render_table(
            &["Corpus", "Programs", "Flagged", "False positives"],
            &[
                vec![
                    "seeded UB".into(),
                    corpus.ub_fixtures.to_string(),
                    corpus.ub_flagged.to_string(),
                    "-".into(),
                ],
                vec![
                    "lint-only".into(),
                    corpus.lint_fixtures.to_string(),
                    corpus.lint_flagged.to_string(),
                    "-".into(),
                ],
                vec![
                    "clean".into(),
                    corpus.clean_fixtures.to_string(),
                    "-".into(),
                    corpus.clean_false_positives.to_string(),
                ],
            ],
        )
    );
    println!(
        "{}",
        render_table(
            &[
                "Campaign",
                "Mutants/s",
                "Checked",
                "Filtered",
                "Fast path",
                "Overhead"
            ],
            &[
                vec![
                    "no gate".into(),
                    format!("{:.0}", campaign_stats.unfiltered_per_sec),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ],
                vec![
                    "UB gate".into(),
                    format!("{:.0}", campaign_stats.gated_per_sec),
                    campaign_stats.mutants_checked.to_string(),
                    campaign_stats.mutants_filtered.to_string(),
                    format!("{:.0}%", campaign_stats.fast_path_rate_pct),
                    format!("{:+.1}%", campaign_stats.overhead_pct),
                ],
            ],
        )
    );

    let gate = "100% of seeded-UB fixtures flagged, 0 findings on the clean corpus, \
                UB gate costs <= 10% campaign mutant throughput"
        .to_string();
    let report = AnalyzeReport {
        repeats,
        gate: gate.clone(),
        corpus,
        campaign: campaign_stats,
        note: "recall/precision over the committed fixture corpus in \
               metamut_analyze::fixtures; gate cost = serial uCFuzz campaign over the \
               seed corpus vs gcc-sim -O2, ub_filter on vs off, best-of-N wall time"
            .into(),
    };

    // The committed evidence lives at the repository root, next to the
    // README that cites it; smoke runs park their miniature report in
    // `target/` so CI never dirties the tree.
    let path = if smoke {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        std::fs::create_dir_all(&dir).expect("create target/experiments");
        dir.join("BENCH_analysis_smoke.json")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_analysis.json")
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize analyze report");
    std::fs::write(&path, json + "\n").expect("write BENCH_analysis.json");
    println!("report written to {}", path.display());

    // Correctness gates hold even in smoke mode: a wrong verdict is wrong
    // at any scale.
    assert!(
        missed.is_empty(),
        "seeded-UB fixtures escaped the analyzer: {missed:?}"
    );
    assert_eq!(
        report.corpus.lint_flagged, report.corpus.lint_fixtures,
        "every lint fixture must be flagged"
    );
    assert!(
        false_positives.is_empty(),
        "clean corpus produced findings: {false_positives:?}"
    );
    if smoke {
        println!("(smoke run: overhead gate skipped, precision/recall enforced)");
    } else {
        assert!(
            report.campaign.overhead_pct <= 10.0,
            "UB gate costs {:.1}% campaign throughput (gate: {gate})",
            report.campaign.overhead_pct
        );
        println!(
            "gate ok: recall {}/{}, 0 false positives, overhead {:+.1}% <= 10% — {gate}",
            report.corpus.ub_flagged, report.corpus.ub_fixtures, report.campaign.overhead_pct
        );
    }
    metamut_bench::finish();
}
