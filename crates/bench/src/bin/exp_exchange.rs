//! Ablation: cross-shard seed exchange cadence in the parallel engine.
//!
//! PR 2 left an open question: how often should workers broadcast fresh
//! discoveries through the `ExchangeHub`? Every exchange spreads coverage
//! across shards, but publishing and draining inboxes costs lock traffic
//! and duplicates work when shards converge. This bin sweeps
//! `exchange_every` (0 disables the hub entirely) at a fixed worker count
//! and iteration budget and records final coverage, unique crashes, and
//! wall time per setting, so the trade is settled by data instead of the
//! PR 2 default's guess.
//!
//! Usage: `exp_exchange [--iterations N] [--seed N] [--workers N]
//! [--smoke]`. Results go to `target/experiments/exchange.json`.

use metamut_bench::{render_table, write_json, ExpOptions};
use metamut_fuzzing::campaign::CampaignConfig;
use metamut_fuzzing::corpus::seed_corpus;
use metamut_fuzzing::mucfuzz::MuCFuzz;
use metamut_fuzzing::parallel::run_parallel_campaign;
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct ExchangeRow {
    exchange_every: usize,
    coverage: usize,
    crashes: usize,
    elapsed_s: f64,
    execs_per_sec: f64,
}

#[derive(Serialize)]
struct ExchangeReport {
    iterations: usize,
    seed: u64,
    workers: usize,
    rows: Vec<ExchangeRow>,
    note: String,
}

fn main() {
    let mut opts = ExpOptions::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        opts.iterations = opts.iterations.min(240);
    }
    let workers = if opts.workers <= 1 { 4 } else { opts.workers };
    println!(
        "== Seed-exchange cadence ({} iterations, {} workers, seed {}) ==\n",
        opts.iterations, workers, opts.seed
    );

    let seeds: Vec<String> = seed_corpus().iter().map(|s| s.to_string()).collect();
    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let reg = Arc::new(metamut_mutators::full_registry());

    let mut rows = Vec::new();
    for exchange_every in [0usize, 16, 32, 64, 128, 256] {
        let cfg = CampaignConfig {
            iterations: opts.iterations,
            seed: opts.seed,
            sample_every: opts.iterations,
            workers,
            exchange_every,
            dedup: opts.dedup,
            ..Default::default()
        };
        let started = Instant::now();
        let report = run_parallel_campaign(
            &seeds,
            |_w, shard| MuCFuzz::new("uCFuzz.s", reg.clone(), shard),
            &compiler,
            &cfg,
        );
        let elapsed = started.elapsed().as_secs_f64();
        rows.push(ExchangeRow {
            exchange_every,
            coverage: report.final_coverage,
            crashes: report.crashes.len(),
            elapsed_s: elapsed,
            execs_per_sec: opts.iterations as f64 / elapsed,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                if r.exchange_every == 0 {
                    "off".to_string()
                } else {
                    r.exchange_every.to_string()
                },
                r.coverage.to_string(),
                r.crashes.to_string(),
                format!("{:.0}", r.execs_per_sec),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Exchange every", "Coverage", "Crashes", "Execs/s"],
            &table
        )
    );

    let best_cov = rows.iter().map(|r| r.coverage).max().unwrap_or(0);
    let off_cov = rows
        .iter()
        .find(|r| r.exchange_every == 0)
        .map(|r| r.coverage)
        .unwrap_or(0);
    println!(
        "coverage: {} with exchange off, {} at the best cadence ({:+})",
        off_cov,
        best_cov,
        best_cov as i64 - off_cov as i64
    );

    let report = ExchangeReport {
        iterations: opts.iterations,
        seed: opts.seed,
        workers,
        rows,
        note: "MuCFuzz.s (full registry) vs GCC -O2 through run_parallel_campaign; \
               exchange_every = iterations between a worker's ExchangeHub broadcasts \
               (0 = hub disabled)"
            .into(),
    };
    let path = write_json("exchange", &report);
    println!("report written to {}", path.display());
    metamut_bench::finish();
}
