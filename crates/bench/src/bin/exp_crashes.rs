//! Experiment: unique crashes (Figure 8's overlap, Figure 9's discovery
//! timelines, Table 4's per-component breakdown).

use metamut_bench::{render_series, render_table, run_matrix, write_json, ExpOptions};
use metamut_fuzzing::campaign::CampaignReport;
use metamut_simcomp::Stage;
use std::collections::{HashMap, HashSet};

fn main() {
    let opts = ExpOptions::from_args();
    println!(
        "== Figures 8–9 / Table 4: unique crashes ({} iterations/fuzzer, seed {}) ==\n",
        opts.iterations, opts.seed
    );
    let reports = run_matrix(&opts);
    let fuzzer_names = [
        "uCFuzz.s", "uCFuzz.u", "AFL++", "GrayC", "Csmith", "YARPGen",
    ];

    // Crashes are pooled over both compilers per fuzzer (as in Figure 8).
    let pooled: HashMap<&str, Vec<&CampaignReport>> = fuzzer_names
        .iter()
        .map(|&name| {
            (
                name,
                reports
                    .iter()
                    .filter(|r| r.fuzzer == name)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();

    let sigs_of =
        |name: &str| -> HashSet<u64> { pooled[name].iter().flat_map(|r| r.signatures()).collect() };

    // Figure 8: totals and exclusivity.
    println!("-- Figure 8: unique crashes per fuzzer (paper: s=90, u=59, AFL++=19, GrayC=13, YARPGen=2, Csmith=0) --");
    let mut rows = Vec::new();
    let all_sigs: HashSet<u64> = fuzzer_names.iter().flat_map(|n| sigs_of(n)).collect();
    let mucfuzz_sigs: HashSet<u64> = sigs_of("uCFuzz.s")
        .union(&sigs_of("uCFuzz.u"))
        .copied()
        .collect();
    let others_sigs: HashSet<u64> = ["AFL++", "GrayC", "Csmith", "YARPGen"]
        .iter()
        .flat_map(|n| sigs_of(n))
        .collect();
    for name in fuzzer_names {
        let mine = sigs_of(name);
        let exclusive = mine
            .iter()
            .filter(|s| {
                fuzzer_names
                    .iter()
                    .filter(|o| **o != name)
                    .all(|o| !sigs_of(o).contains(s))
            })
            .count();
        rows.push(vec![
            name.to_string(),
            mine.len().to_string(),
            exclusive.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["Fuzzer", "Unique crashes", "Exclusive"], &rows)
    );
    let mucfuzz_only = mucfuzz_sigs.difference(&others_sigs).count();
    println!(
        "total unique: {}; found only by uCFuzz: {} ({:.0}%; paper: 72.8%)\n",
        all_sigs.len(),
        mucfuzz_only,
        100.0 * mucfuzz_only as f64 / all_sigs.len().max(1) as f64
    );

    // Table 4: by compiler component.
    println!("-- Table 4: unique crashes by compiler component --");
    let mut rows = Vec::new();
    for name in fuzzer_names {
        let mut by_stage: HashMap<Stage, HashSet<u64>> = HashMap::new();
        for r in &pooled[name] {
            for c in &r.crashes {
                by_stage
                    .entry(c.info.stage)
                    .or_default()
                    .insert(c.signature);
            }
        }
        let cell = |s: Stage| by_stage.get(&s).map(|x| x.len()).unwrap_or(0).to_string();
        let total: usize = Stage::ALL
            .iter()
            .map(|s| by_stage.get(s).map(|x| x.len()).unwrap_or(0))
            .sum();
        rows.push(vec![
            name.to_string(),
            cell(Stage::FrontEnd),
            cell(Stage::IrGen),
            cell(Stage::Opt),
            cell(Stage::BackEnd),
            total.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Fuzzer", "Front-End", "IR", "Opt", "Back-End", "Total"],
            &rows
        )
    );

    // Figure 9: discovery timelines per compiler.
    for profile in ["gcc-sim", "clang-sim"] {
        let series: Vec<(String, Vec<(usize, usize)>)> = reports
            .iter()
            .filter(|r| r.compiler == profile)
            .map(|r| {
                (
                    r.fuzzer.clone(),
                    r.series.iter().map(|p| (p.iteration, p.crashes)).collect(),
                )
            })
            .collect();
        println!(
            "{}",
            render_series(
                &format!("Figure 9: unique crashes over time, {profile}"),
                &series
            )
        );
    }

    let path = write_json("crashes", &reports);
    println!("report written to {}", path.display());
    metamut_bench::finish();
}
