//! Experiment: mutator generation (Tables 1, 2 and 3 + the §4.1 census).
//!
//! Runs the fully automatic MetaMut pipeline 100 times (the paper's
//! unsupervised campaign) and prints:
//! - the §4.1 outcome census (system errors, valid rate, invalidity causes),
//! - Table 1: defect classes fixed by the validation-refinement loop,
//! - Table 2: per-mutator generation cost (tokens / QA rounds / time),
//! - Table 3: request/response time split.

use metamut_bench::{render_table, write_json, ExpOptions};
use metamut_core::{GenerationRecord, GenerationStatus};
use metamut_llm::accounting::summarize;
use metamut_llm::defects::Defect;
use serde::Serialize;

#[derive(Serialize)]
struct GenerationReport {
    invocations: usize,
    system_errors: usize,
    valid: usize,
    refinement_failed: usize,
    mismatched: usize,
    latent_invalid: usize,
    duplicates: usize,
    fixed_by_class: Vec<(String, usize)>,
    records: Vec<GenerationRecord>,
}

fn main() {
    let opts = ExpOptions::from_args();
    let invocations = 100;
    println!(
        "== MetaMut unsupervised generation: {invocations} invocations (seed {}) ==\n",
        opts.seed
    );

    let mut mm = metamut_core::default_framework(opts.seed);
    // Crash-defective mutators panic by design; silence the default hook so
    // the validation loop's catch_unwind stays invisible in the output.
    std::panic::set_hook(Box::new(|_| {}));
    let records = mm.run_many(invocations, opts.seed ^ 0xBEEF);
    let _ = std::panic::take_hook();

    let count = |f: &dyn Fn(&GenerationRecord) -> bool| records.iter().filter(|r| f(r)).count();
    let system_errors = count(&|r| matches!(r.status, GenerationStatus::SystemError(_)));
    let valid = count(&|r| r.status.is_valid());
    let refinement_failed =
        count(&|r| matches!(r.status, GenerationStatus::RefinementFailed { .. }));
    let mismatched = count(&|r| r.status == GenerationStatus::Mismatched);
    let latent = count(&|r| r.status == GenerationStatus::LatentInvalid);
    let duplicates = count(&|r| r.status == GenerationStatus::Duplicate);
    let attempted = invocations - system_errors;

    println!("-- §4.1 census (paper: 24 system errors, 50/76 = 65.8% valid) --");
    println!(
        "{}",
        render_table(
            &["Outcome", "Count", "Paper"],
            &[
                vec![
                    "system error".into(),
                    system_errors.to_string(),
                    "24".into()
                ],
                vec![
                    "valid".into(),
                    format!(
                        "{valid} ({:.1}% of {attempted})",
                        100.0 * valid as f64 / attempted.max(1) as f64
                    ),
                    "50 (65.8% of 76)".into()
                ],
                vec![
                    "refinement failed".into(),
                    refinement_failed.to_string(),
                    "6".into()
                ],
                vec!["mismatched impl".into(), mismatched.to_string(), "7".into()],
                vec!["unthorough tests".into(), latent.to_string(), "10".into()],
                vec!["duplicate".into(), duplicates.to_string(), "3".into()],
            ],
        )
    );

    // Table 1: defect classes fixed by the loop.
    let mut fixed_by_class = Vec::new();
    println!("-- Table 1: bugs fixed by the validation-refinement loop --");
    let mut rows = Vec::new();
    let total_fixed: usize = records.iter().map(|r| r.fixed_defects.len()).sum();
    for d in Defect::ALL {
        let n = records
            .iter()
            .flat_map(|r| &r.fixed_defects)
            .filter(|x| **x == d)
            .count();
        rows.push(vec![
            format!("#{}", d.goal()),
            d.label().to_string(),
            n.to_string(),
        ]);
        fixed_by_class.push((d.label().to_string(), n));
    }
    rows.push(vec!["".into(), "total".into(), total_fixed.to_string()]);
    println!(
        "{}",
        render_table(&["Goal", "Violation", "Fixed (#)"], &rows)
    );
    // The paper normalizes by the mutators that were invalid prior to
    // refinement and then fixed (27 of 50).
    let repaired_valid = records
        .iter()
        .filter(|r| r.status.is_valid() && !r.fixed_defects.is_empty())
        .count();
    let per_valid = total_fixed as f64 / repaired_valid.max(1) as f64;
    println!(
        "mean fixes per repaired valid mutator: {per_valid:.2} over {repaired_valid} mutators (paper: 3.96 over 27)\n"
    );

    // Table 2: generation cost.
    let ok_records: Vec<&GenerationRecord> = records
        .iter()
        .filter(|r| !matches!(r.status, GenerationStatus::SystemError(_)))
        .collect();
    let col = |f: &dyn Fn(&GenerationRecord) -> f64| -> Vec<f64> {
        ok_records.iter().map(|r| f(r)).collect()
    };
    let token_inv = summarize(&col(&|r| r.cost.tokens_invention as f64));
    let token_impl = summarize(&col(&|r| r.cost.tokens_implementation as f64));
    let token_fix = summarize(&col(&|r| r.cost.tokens_bugfix as f64));
    let token_total = summarize(&col(&|r| r.cost.tokens_total() as f64));
    let qa_fix = summarize(&col(&|r| r.cost.qa_bugfix as f64));
    let qa_total = summarize(&col(&|r| r.cost.qa_total() as f64));
    let time_total = summarize(&col(&|r| r.cost.time_s));

    println!("-- Table 2: generation cost of one mutator --");
    let srow = |metric: &str, step: &str, s: metamut_llm::accounting::Summary, paper: &str| {
        vec![
            metric.to_string(),
            step.to_string(),
            format!("{:.0}", s.min),
            format!("{:.0}", s.max),
            format!("{:.0}", s.median),
            format!("{:.0}", s.mean),
            paper.to_string(),
        ]
    };
    println!(
        "{}",
        render_table(
            &[
                "Metric",
                "Step",
                "Min",
                "Max",
                "Median",
                "Mean",
                "Paper mean"
            ],
            &[
                srow("Tokens", "Invention", token_inv, "1,158"),
                srow("Tokens", "Implementation", token_impl, "2,501"),
                srow("Tokens", "Bug-Fixing", token_fix, "4,935"),
                srow("Tokens", "Total", token_total, "8,595"),
                srow("QA", "Bug-Fixing", qa_fix, "4.0"),
                srow("QA", "Total", qa_total, "6.0"),
                srow("Time (s)", "Total", time_total, "346"),
            ],
        )
    );
    let mean_cost =
        ok_records.iter().map(|r| r.cost.dollars()).sum::<f64>() / ok_records.len().max(1) as f64;
    println!("mean API cost per mutator: ${mean_cost:.2} (paper: ~$0.50)\n");

    // Table 3: request/response time.
    let wait = summarize(&col(&|r| r.cost.wait_s / r.cost.qa_total() as f64));
    let prep = summarize(&col(&|r| r.cost.prepare_s / r.cost.qa_total() as f64));
    println!("-- Table 3: request/response time of a single interaction --");
    println!(
        "{}",
        render_table(
            &["Phase", "Min", "Max", "Median", "Mean", "Paper mean"],
            &[
                vec![
                    "Wait for response (s)".into(),
                    format!("{:.0}", wait.min),
                    format!("{:.0}", wait.max),
                    format!("{:.0}", wait.median),
                    format!("{:.0}", wait.mean),
                    "43".into()
                ],
                vec![
                    "Prepare request (s)".into(),
                    format!("{:.0}", prep.min),
                    format!("{:.0}", prep.max),
                    format!("{:.0}", prep.median),
                    format!("{:.0}", prep.mean),
                    "17".into()
                ],
            ],
        )
    );

    let report = GenerationReport {
        invocations,
        system_errors,
        valid,
        refinement_failed,
        mismatched,
        latent_invalid: latent,
        duplicates,
        fixed_by_class,
        records,
    };
    let path = write_json("generation", &report);
    println!("report written to {}", path.display());
    metamut_bench::finish();
}
