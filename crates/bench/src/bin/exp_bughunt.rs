//! Experiment: the RQ2 field campaign (Table 6) — the macro fuzzer with all
//! mutators, flag sampling and parallel workers against both compilers.

use metamut_bench::{render_table, write_json, ExpOptions};
use metamut_fuzzing::corpus;
use metamut_fuzzing::macro_fuzzer::{run_field_experiment, FieldReport, MacroConfig};
use metamut_simcomp::{Profile, Stage};
use std::sync::Arc;

fn main() {
    let opts = ExpOptions::from_args();
    println!(
        "== Table 6: field experiment with the macro fuzzer (seed {}) ==\n",
        opts.seed
    );
    std::panic::set_hook(Box::new(|_| {}));

    let mutators = Arc::new(metamut_mutators::full_registry());
    let seeds: Vec<String> = corpus::seed_corpus()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let config = MacroConfig {
        iterations_per_worker: opts.iterations.max(200),
        workers: 4,
        seed: opts.seed,
        ..Default::default()
    };

    let mut reports: Vec<(Profile, FieldReport)> = Vec::new();
    for profile in [Profile::Clang, Profile::Gcc] {
        let report = run_field_experiment(profile, Arc::clone(&mutators), seeds.clone(), &config);
        println!(
            "{}: {} compiles, {} branches covered, {} unique bugs",
            profile.name(),
            report.total_compiles,
            report.final_coverage,
            report.bugs.len()
        );
        reports.push((profile, report));
    }
    let _ = std::panic::take_hook();
    println!();

    let clang_bugs = &reports[0].1;
    let gcc_bugs = &reports[1].1;
    let total = clang_bugs.bugs.len() + gcc_bugs.bugs.len();

    println!("-- Table 6: overview of found compiler bugs --");
    println!(
        "{}",
        render_table(
            &["", "Clang", "GCC", "Total", "Paper"],
            &[vec![
                "Found bugs".into(),
                clang_bugs.bugs.len().to_string(),
                gcc_bugs.bugs.len().to_string(),
                total.to_string(),
                "81 / 50 / 131".into(),
            ]],
        )
    );

    println!("-- by affected compiler module (paper: FE 48, IR 45, Opt 22, BE 16) --");
    let mut rows = Vec::new();
    for stage in Stage::ALL {
        let c = clang_bugs.by_stage().get(&stage).copied().unwrap_or(0);
        let g = gcc_bugs.by_stage().get(&stage).copied().unwrap_or(0);
        rows.push(vec![
            stage.label().to_string(),
            c.to_string(),
            g.to_string(),
            (c + g).to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["Module", "Clang", "GCC", "Total"], &rows)
    );

    println!("-- by consequence (paper: 111 assertion, 9 segfault, 11 hang) --");
    let mut rows = Vec::new();
    for kind in ["Assertion Failure", "Segmentation Fault", "Hang"] {
        let c = clang_bugs.by_consequence().get(kind).copied().unwrap_or(0);
        let g = gcc_bugs.by_consequence().get(kind).copied().unwrap_or(0);
        rows.push(vec![
            kind.to_string(),
            c.to_string(),
            g.to_string(),
            (c + g).to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["Consequence", "Clang", "GCC", "Total"], &rows)
    );

    println!("-- bug inventory --");
    let mut rows = Vec::new();
    for (_, report) in &reports {
        for b in &report.bugs {
            rows.push(vec![
                b.bug_id.clone(),
                b.compiler.clone(),
                b.stage.label().to_string(),
                b.consequence.clone(),
                b.flags.clone(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["Bug", "Compiler", "Module", "Consequence", "Flags"],
            &rows
        )
    );

    let payload: Vec<&FieldReport> = reports.iter().map(|(_, r)| r).collect();
    let path = write_json("bughunt", &payload);
    println!("report written to {}", path.display());
    metamut_bench::finish();
}
