//! # metamut-bench
//!
//! The experiment harness: binaries under `src/bin/` regenerate every table
//! and figure of the paper's evaluation (see DESIGN.md's per-experiment
//! index), and the Criterion benches under `benches/` measure the hot paths
//! behind them. This library holds the shared plumbing: scaled campaign
//! matrices, fixed-width table rendering, ASCII series plots, and JSON
//! report output under `target/experiments/`.

#![warn(missing_docs)]

use metamut_fuzzing::campaign::{CampaignConfig, CampaignReport};
use metamut_fuzzing::{all_fuzzers, corpus, run_campaign};
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use serde::Serialize;
use std::path::PathBuf;

/// Common experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Iteration scale (stands in for the paper's 24-hour budget).
    pub iterations: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Campaign worker threads (`0` = one per CPU; campaigns run through
    /// the serial engine when 1).
    pub workers: usize,
    /// Mutant-dedup cache in front of the compiler (on unless
    /// `--no-dedup`).
    pub dedup: bool,
    /// Telemetry JSONL path, when `--telemetry` (or `METAMUT_TELEMETRY`)
    /// enabled the global pipeline.
    pub telemetry: Option<PathBuf>,
    /// Chrome trace-event JSON output path (`--trace-out`); written at
    /// process exit by [`finish`].
    pub trace_out: Option<PathBuf>,
    /// Sampled time-series JSONL output path (`--timeseries-out`);
    /// written at process exit by [`finish`].
    pub timeseries_out: Option<PathBuf>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            iterations: 1500,
            seed: 20240427, // ASPLOS'24 opening day
            workers: 1,
            dedup: true,
            telemetry: None,
            trace_out: None,
            timeseries_out: None,
        }
    }
}

impl ExpOptions {
    /// Parses `--iterations N`, `--seed N`, `--workers N`, `--no-dedup`,
    /// `--status-every SECS`, `--telemetry PATH`, `--trace-out PATH`, and
    /// `--timeseries-out PATH` from `std::env::args`, enabling the global
    /// telemetry pipeline when any output path is given (or
    /// `METAMUT_TELEMETRY` is set).
    pub fn from_args() -> Self {
        let mut opts = ExpOptions::default();
        let mut telemetry_arg: Option<String> = None;
        let mut status_every: Option<f64> = None;
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--iterations" | "--scale" if i + 1 < args.len() => {
                    opts.iterations = args[i + 1].parse().unwrap_or(opts.iterations);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    opts.seed = args[i + 1].parse().unwrap_or(opts.seed);
                    i += 1;
                }
                "--workers" | "-w" if i + 1 < args.len() => {
                    opts.workers = args[i + 1].parse().unwrap_or(opts.workers);
                    i += 1;
                }
                "--no-dedup" => {
                    opts.dedup = false;
                }
                "--status-every" if i + 1 < args.len() => {
                    status_every = args[i + 1].parse().ok();
                    i += 1;
                }
                "--telemetry" if i + 1 < args.len() => {
                    telemetry_arg = Some(args[i + 1].clone());
                    i += 1;
                }
                "--trace-out" if i + 1 < args.len() => {
                    opts.trace_out = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--timeseries-out" if i + 1 < args.len() => {
                    opts.timeseries_out = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        opts.telemetry = metamut_telemetry::init_from_args(telemetry_arg.as_deref(), status_every);
        metamut_telemetry::init_outputs(
            opts.trace_out.as_ref().and_then(|p| p.to_str()),
            opts.timeseries_out.as_ref().and_then(|p| p.to_str()),
        );
        opts
    }

    /// A campaign configuration seeded from these options.
    pub fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            iterations: self.iterations,
            seed: self.seed,
            sample_every: (self.iterations / 24).max(1),
            workers: self.workers,
            dedup: self.dedup,
            ..Default::default()
        }
    }
}

/// Flushes telemetry sinks and writes any `--trace-out` /
/// `--timeseries-out` files configured by [`ExpOptions::from_args`].
/// Every experiment binary calls this once before exiting.
pub fn finish() {
    metamut_telemetry::global_finalize();
}

/// Runs the full RQ1 matrix: all six fuzzers against both compiler
/// profiles at `-O2` (§5.1's configuration).
pub fn run_matrix(opts: &ExpOptions) -> Vec<CampaignReport> {
    let seeds: Vec<String> = corpus::seed_corpus()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut reports = Vec::new();
    for profile in [Profile::Gcc, Profile::Clang] {
        let compiler = Compiler::new(profile, CompileOptions::o2());
        for (fi, mut fuzzer) in all_fuzzers(&seeds).into_iter().enumerate() {
            let cfg = CampaignConfig {
                seed: opts.seed ^ ((fi as u64 + 1) * 0x0100_0000_01b3),
                ..opts.campaign_config()
            };
            reports.push(run_campaign(fuzzer.as_mut(), &compiler, &cfg));
        }
    }
    reports
}

/// Writes a JSON report to `target/experiments/<name>.json`.
///
/// # Panics
///
/// Panics when the target directory cannot be created or written — the
/// experiment binaries treat an unwritable workspace as fatal.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    // When telemetry is live, drop a metrics snapshot next to the report so
    // every experiment run leaves its counters/gauges/histograms behind.
    if let Some(snapshot) = metamut_telemetry::global_snapshot_json() {
        std::fs::write(dir.join(format!("{name}.telemetry.json")), snapshot)
            .expect("write telemetry snapshot");
    }
    path
}

/// Renders a fixed-width table: a header row plus data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(c.len());
            line.push_str(&format!(" {c:<w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders an ASCII line chart of several (label, series) pairs, where each
/// series is (x, y) points — the terminal stand-in for Figures 7 and 9.
pub fn render_series(title: &str, series: &[(String, Vec<(usize, usize)>)]) -> String {
    let mut out = format!("--- {title} ---\n");
    let y_max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(_, y)| y))
        .max()
        .unwrap_or(1)
        .max(1);
    const WIDTH: usize = 60;
    for (label, pts) in series {
        let Some(&(_, last)) = pts.last() else {
            continue;
        };
        let bar = (last * WIDTH + y_max / 2) / y_max;
        out.push_str(&format!(
            "{label:>10} |{}{} {last}\n",
            "#".repeat(bar),
            " ".repeat(WIDTH.saturating_sub(bar))
        ));
    }
    out.push_str(&format!("{:>10}  (final values; y-max {y_max})\n", ""));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_aligned() {
        let t = render_table(
            &["Tool", "Crashes"],
            &[
                vec!["uCFuzz.s".into(), "90".into()],
                vec!["Csmith".into(), "0".into()],
            ],
        );
        assert!(t.contains("| Tool     | Crashes |"), "{t}");
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn series_render() {
        let s = render_series(
            "coverage",
            &[
                ("a".into(), vec![(0, 1), (10, 100)]),
                ("b".into(), vec![(0, 1), (10, 50)]),
            ],
        );
        assert!(s.contains("a |"));
        assert!(s.contains("100"));
    }

    #[test]
    fn tiny_matrix_runs() {
        let opts = ExpOptions {
            iterations: 8,
            seed: 1,
            ..Default::default()
        };
        let reports = run_matrix(&opts);
        assert_eq!(reports.len(), 12);
        let names: std::collections::HashSet<&str> =
            reports.iter().map(|r| r.fuzzer.as_str()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn json_written() {
        let p = write_json("selftest", &serde_json::json!({"ok": true}));
        assert!(p.exists());
        std::fs::remove_file(p).ok();
    }
}
