//! Fuzzing-loop benches: one campaign iteration per evaluated fuzzer
//! (the engine behind Figures 7–9).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metamut_fuzzing::campaign::{run_campaign, CampaignConfig};
use metamut_fuzzing::{all_fuzzers, corpus};
use metamut_simcomp::{CompileOptions, Compiler, Profile};

fn bench_campaign_step(c: &mut Criterion) {
    let seeds: Vec<String> = corpus::seed_corpus()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let mut group = c.benchmark_group("campaign_25_iters");
    group.sample_size(10);
    for (i, name) in [
        "uCFuzz.s", "uCFuzz.u", "AFL++", "GrayC", "Csmith", "YARPGen",
    ]
    .iter()
    .enumerate()
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut fuzzer = all_fuzzers(&seeds).remove(i);
                let cfg = CampaignConfig {
                    iterations: 25,
                    seed: 7,
                    sample_every: 25,
                    ..Default::default()
                };
                black_box(run_campaign(fuzzer.as_mut(), &compiler, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_step);
criterion_main!(benches);
