//! Mutator throughput benches, backing the §5.2 throughput claim
//! (μCFuzz sustains ~11 mutants/s on the paper's server; our substrate is
//! in-process, so absolute numbers differ but the harness shape matches).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metamut_fuzzing::corpus::seed_corpus;
use metamut_muast::{mutate_source, MutationOutcome};

fn bench_single_mutators(c: &mut Criterion) {
    let reg = metamut_mutators::full_registry();
    let seed = seed_corpus()[2]; // the jump-heavy seed
    let mut group = c.benchmark_group("mutate_one");
    for name in [
        "ModifyIntegerLiteral",
        "DuplicateBranch",
        "ModifyFunctionReturnTypeToVoid",
    ] {
        let m = reg.get(name).expect("registered");
        group.bench_function(name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(mutate_source(m.mutator.as_ref(), seed, i))
            })
        });
    }
    group.finish();
}

fn bench_mutant_throughput(c: &mut Criterion) {
    // Whole-library throughput over the corpus: how many mutants/second the
    // μCFuzz inner loop can sustain (Table 5's "throughput" discussion).
    let reg = metamut_mutators::full_registry();
    let seeds = seed_corpus();
    c.bench_function("mutants_round_robin", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let m = reg.iter().nth(i % reg.len()).unwrap();
            let s = seeds[i % seeds.len()];
            match mutate_source(m.mutator.as_ref(), s, i as u64) {
                Ok(MutationOutcome::Mutated(out)) => black_box(out.len()),
                _ => 0,
            }
        })
    });
}

criterion_group!(benches, bench_single_mutators, bench_mutant_throughput);
criterion_main!(benches);
