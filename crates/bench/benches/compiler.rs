//! Compiler-under-test benches: per-stage cost of the instrumented pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use metamut_fuzzing::corpus::seed_corpus;
use metamut_simcomp::{CompileOptions, Compiler, Profile};

fn bench_compile(c: &mut Criterion) {
    let seeds = seed_corpus();
    let mut group = c.benchmark_group("compile");
    for (label, opts) in [
        ("O0", CompileOptions::o0()),
        ("O2", CompileOptions::o2()),
        ("O3", CompileOptions::o3()),
    ] {
        let compiler = Compiler::new(Profile::Gcc, opts);
        group.bench_function(label, |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                black_box(compiler.compile(seeds[i % seeds.len()]))
            })
        });
    }
    group.finish();
}

fn bench_frontend_only(c: &mut Criterion) {
    let seeds = seed_corpus();
    c.bench_function("frontend_compile_check", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(metamut_lang::compile_check(seeds[i % seeds.len()]))
        })
    });
}

criterion_group!(benches, bench_compile, bench_frontend_only);
criterion_main!(benches);
