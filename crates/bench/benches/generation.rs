//! MetaMut pipeline benches: cost of one generation run (invention +
//! synthesis + validation/refinement) behind Tables 1–3.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_run_once(c: &mut Criterion) {
    std::panic::set_hook(Box::new(|_| {}));
    let mut group = c.benchmark_group("metamut");
    group.sample_size(20);
    group.bench_function("run_once", |b| {
        let mut mm = metamut_core::default_framework(11);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(mm.run_once(i))
        })
    });
    group.bench_function("validate_clean_mutator", |b| {
        let reg = metamut_mutators::full_registry();
        let bp = metamut_llm::Blueprint {
            name: "Bench".into(),
            description: "bench".into(),
            behavior: "ModifyIntegerLiteral".into(),
            defects: vec![],
            mismatched: false,
            latent_compile_error: false,
        };
        let m = metamut_core::compile_blueprint(&bp, &reg).unwrap();
        let tests: Vec<String> = metamut_llm::TEST_PROGRAMS
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(metamut_core::validate(&m, &tests, i))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_run_once);
criterion_main!(benches);
