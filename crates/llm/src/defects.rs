//! Defect classes injected into synthesized mutator implementations.
//!
//! These are exactly the violation classes of the paper's validation goals
//! #1–#6 (§3.3, Table 1); the simulated LLM plants them with the empirical
//! Table 1 frequencies and removes them when the refinement loop feeds the
//! right diagnostic back.

use serde::{Deserialize, Serialize};

/// A flaw in a tentative mutator implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Defect {
    /// Goal #1: the mutator implementation does not compile.
    SyntaxError,
    /// Goal #2: the mutator hangs on some input.
    Hangs,
    /// Goal #3: the mutator crashes on some input.
    Crashes,
    /// Goal #4: the mutator never outputs anything.
    NoOutput,
    /// Goal #5: the mutator runs but performs no rewrite.
    NoRewrite,
    /// Goal #6: the mutator produces mutants that do not compile.
    CompileErrorMutant,
    /// Goal #7: the mutator produces mutants with new undefined behavior.
    UbMutant,
}

impl Defect {
    /// All classes in validation-goal order (simplest first).
    pub const ALL: [Defect; 7] = [
        Defect::SyntaxError,
        Defect::Hangs,
        Defect::Crashes,
        Defect::NoOutput,
        Defect::NoRewrite,
        Defect::CompileErrorMutant,
        Defect::UbMutant,
    ];

    /// The validation-goal number (1-based) this defect violates.
    pub fn goal(self) -> u8 {
        match self {
            Defect::SyntaxError => 1,
            Defect::Hangs => 2,
            Defect::Crashes => 3,
            Defect::NoOutput => 4,
            Defect::NoRewrite => 5,
            Defect::CompileErrorMutant => 6,
            Defect::UbMutant => 7,
        }
    }

    /// Table 1 label.
    pub fn label(self) -> &'static str {
        match self {
            Defect::SyntaxError => "μ not compile",
            Defect::Hangs => "μ hangs",
            Defect::Crashes => "μ crashes",
            Defect::NoOutput => "μ outputs nothing",
            Defect::NoRewrite => "μ does not rewrite",
            Defect::CompileErrorMutant => "μ creates compile-error mutant",
            Defect::UbMutant => "μ creates UB mutant",
        }
    }

    /// Table 1 empirical weights (counts of fixed bugs per class: 55, 0, 4,
    /// 11, 1, 36). `Hangs` gets a tiny nonzero weight so the class exists —
    /// the paper observed hang-defects only among *unfixable* mutators.
    /// `UbMutant` is not a Table 1 class (the paper's validator stopped at
    /// "compiles"); it gets a small weight so goal #7 sees real traffic.
    pub fn weight(self) -> u32 {
        match self {
            Defect::SyntaxError => 55,
            Defect::Hangs => 1,
            Defect::Crashes => 4,
            Defect::NoOutput => 11,
            Defect::NoRewrite => 1,
            Defect::CompileErrorMutant => 36,
            Defect::UbMutant => 6,
        }
    }

    /// Samples a defect class from the Table 1 distribution.
    pub fn sample(pick: u32) -> Defect {
        let total: u32 = Defect::ALL.iter().map(|d| d.weight()).sum();
        let mut x = pick % total;
        for d in Defect::ALL {
            if x < d.weight() {
                return d;
            }
            x -= d.weight();
        }
        Defect::SyntaxError
    }
}

impl std::fmt::Display for Defect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goals_ordered() {
        for w in Defect::ALL.windows(2) {
            assert!(w[0].goal() < w[1].goal());
        }
    }

    #[test]
    fn sampling_follows_weights() {
        let mut counts = std::collections::HashMap::new();
        let total: u32 = Defect::ALL.iter().map(|d| d.weight()).sum();
        for i in 0..total {
            *counts.entry(Defect::sample(i)).or_insert(0u32) += 1;
        }
        for d in Defect::ALL {
            assert_eq!(counts.get(&d).copied().unwrap_or(0), d.weight());
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Defect::SyntaxError.label(), "μ not compile");
        assert_eq!(
            Defect::CompileErrorMutant.label(),
            "μ creates compile-error mutant"
        );
    }
}
