//! Token/latency accounting calibrated against Tables 2 and 3 of the paper:
//! per-mutator generation consumed ~8,600 tokens over ~6 QA rounds, with
//! ~43 s mean response wait and ~17 s request preparation.

use rand::rngs::StdRng;
use rand::Rng;
use serde::Serialize;

/// Cost of one LLM interaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Interaction {
    /// Tokens consumed (prompt + completion).
    pub tokens: u32,
    /// Seconds spent waiting for the response (Table 3 row 1).
    pub wait_s: f64,
    /// Seconds spent preparing the request — compiling and running the
    /// mutator, collecting feedback (Table 3 row 2).
    pub prepare_s: f64,
}

/// Which pipeline step an interaction belongs to (Table 2's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Step {
    /// Mutator invention.
    Invention,
    /// Implementation synthesis.
    Implementation,
    /// One bug-fixing round.
    BugFixing,
}

impl Step {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Step::Invention => "Invention",
            Step::Implementation => "Implementation",
            Step::BugFixing => "Bug-Fixing",
        }
    }
}

/// Samples a value from a clamped log-normal-ish distribution around the
/// paper's empirical median/mean shapes.
fn skewed(rng: &mut StdRng, min: f64, median: f64, max: f64) -> f64 {
    // Sum of two uniforms gives a triangular body; an occasional long tail
    // reproduces the min ≪ median ≪ max spread the paper reports.
    let base = rng.gen_range(0.0..1.0f64) + rng.gen_range(0.0..1.0f64);
    let v = median * base;
    let v = if rng.gen_bool(0.08) {
        v + rng.gen_range(0.0..(max - median)).max(0.0)
    } else {
        v
    };
    v.clamp(min, max)
}

/// Samples the cost of one interaction of the given step.
pub fn sample_interaction(rng: &mut StdRng, step: Step) -> Interaction {
    let tokens = match step {
        // Table 2: invention 359–2,240, median 1,130.
        Step::Invention => skewed(rng, 359.0, 1130.0, 2240.0),
        // Table 2: implementation 372–3,870, median 2,488.
        Step::Implementation => skewed(rng, 372.0, 2488.0, 3870.0),
        // Table 2: bug-fixing totals 335–30,923 over ~4 rounds; per round
        // median ≈ 520.
        Step::BugFixing => skewed(rng, 120.0, 700.0, 7000.0),
    };
    Interaction {
        tokens: tokens as u32,
        // Table 3: wait 11–123 s, median 46, mean 43.
        wait_s: skewed(rng, 11.0, 46.0, 123.0),
        // Table 3: prepare 0–69 s, median 9, mean 17. Invention needs no
        // compile-and-run preparation.
        prepare_s: match step {
            Step::Invention => skewed(rng, 0.0, 2.0, 8.0),
            _ => skewed(rng, 0.0, 9.0, 69.0),
        },
    }
}

/// Accumulated cost of generating one mutator (one Table 2 column set).
#[derive(Debug, Clone, Default, Serialize)]
pub struct CostRecord {
    /// Tokens per step.
    pub tokens_invention: u32,
    /// Tokens spent on the one-shot synthesis.
    pub tokens_implementation: u32,
    /// Tokens spent across all repair rounds.
    pub tokens_bugfix: u32,
    /// Bug-fixing QA rounds.
    pub qa_bugfix: u32,
    /// Total wall-clock seconds (virtual).
    pub time_s: f64,
    /// Seconds waiting on the model.
    pub wait_s: f64,
    /// Seconds preparing requests.
    pub prepare_s: f64,
}

impl CostRecord {
    /// Total tokens across all steps.
    pub fn tokens_total(&self) -> u32 {
        self.tokens_invention + self.tokens_implementation + self.tokens_bugfix
    }

    /// Total QA rounds (two fixed + bug-fixing).
    pub fn qa_total(&self) -> u32 {
        2 + self.qa_bugfix
    }

    /// Dollar cost at the paper's blended GPT-4 rate
    /// ([`DOLLARS_PER_1K_TOKENS`]; ~8,600 tokens ≈ $0.50).
    pub fn dollars(&self) -> f64 {
        self.tokens_total() as f64 / 1000.0 * DOLLARS_PER_1K_TOKENS
    }

    /// Adds one interaction to the record, mirroring it into the
    /// telemetry pipeline (one event set per interaction: call count,
    /// tokens, and wall-time observations, labeled by step).
    pub fn add(&mut self, step: Step, i: Interaction) {
        match step {
            Step::Invention => self.tokens_invention += i.tokens,
            Step::Implementation => self.tokens_implementation += i.tokens,
            Step::BugFixing => {
                self.tokens_bugfix += i.tokens;
                self.qa_bugfix += 1;
            }
        }
        self.time_s += i.wait_s + i.prepare_s;
        self.wait_s += i.wait_s;
        self.prepare_s += i.prepare_s;

        let telemetry = metamut_telemetry::handle();
        if telemetry.enabled() {
            let label = step.label();
            telemetry.counter_add(&metamut_telemetry::labeled("llm_calls", label), 1);
            telemetry.counter_add(
                &metamut_telemetry::labeled("llm_tokens", label),
                u64::from(i.tokens),
            );
            telemetry.observe(&metamut_telemetry::labeled("llm_wait_s", label), i.wait_s);
            telemetry.observe(
                &metamut_telemetry::labeled("llm_prepare_s", label),
                i.prepare_s,
            );
        }
    }
}

/// The paper's blended GPT-4 price: ~US$0.06 per 1K tokens, which makes
/// the reported ~8,600-token mean generation cost ≈ US$0.50 (§4.2).
pub const DOLLARS_PER_1K_TOKENS: f64 = 0.06;

/// Min/max/median/mean summary of a sample (a Table 2/3 cell row).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub median: f64,
    /// Mean.
    pub mean: f64,
}

/// Summarizes a sample of values.
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary {
            min: 0.0,
            max: 0.0,
            median: 0.0,
            mean: 0.0,
        };
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in summaries"));
    Summary {
        min: v[0],
        max: *v.last().expect("nonempty"),
        median: v[v.len() / 2],
        mean: v.iter().sum::<f64>() / v.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn interactions_within_paper_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let i = sample_interaction(&mut rng, Step::Invention);
            assert!((359..=2240).contains(&i.tokens), "{}", i.tokens);
            assert!((11.0..=123.0).contains(&i.wait_s));
            let i = sample_interaction(&mut rng, Step::Implementation);
            assert!((372..=3870).contains(&i.tokens));
        }
    }

    #[test]
    fn cost_record_accumulates() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = CostRecord::default();
        c.add(
            Step::Invention,
            sample_interaction(&mut rng, Step::Invention),
        );
        c.add(
            Step::Implementation,
            sample_interaction(&mut rng, Step::Implementation),
        );
        for _ in 0..4 {
            c.add(
                Step::BugFixing,
                sample_interaction(&mut rng, Step::BugFixing),
            );
        }
        assert_eq!(c.qa_total(), 6);
        assert_eq!(
            c.tokens_total(),
            c.tokens_invention + c.tokens_implementation + c.tokens_bugfix
        );
        assert!(c.dollars() > 0.0);
        assert!(c.time_s >= c.wait_s);
    }

    #[test]
    fn mean_cost_near_half_dollar() {
        // Over many simulated generations the mean cost should sit near the
        // paper's ~$0.5 (token mean ~8.6k with ~4 fix rounds).
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0.0;
        let n = 200;
        for _ in 0..n {
            let mut c = CostRecord::default();
            c.add(
                Step::Invention,
                sample_interaction(&mut rng, Step::Invention),
            );
            c.add(
                Step::Implementation,
                sample_interaction(&mut rng, Step::Implementation),
            );
            for _ in 0..4 {
                c.add(
                    Step::BugFixing,
                    sample_interaction(&mut rng, Step::BugFixing),
                );
            }
            total += c.dollars();
        }
        let mean = total / n as f64;
        assert!((0.2..0.9).contains(&mean), "mean ${mean:.2}");
    }

    #[test]
    fn rate_pins_paper_cost_anchor() {
        // §4.2's anchor: a ~8,600-token generation costs about $0.50 at
        // the blended GPT-4 rate.
        let c = CostRecord {
            tokens_invention: 1130,
            tokens_implementation: 2488,
            tokens_bugfix: 8600 - 1130 - 2488,
            ..Default::default()
        };
        assert_eq!(c.tokens_total(), 8600);
        let dollars = c.dollars();
        assert!(
            (dollars - 0.5).abs() < 0.03,
            "8,600 tokens should cost ~$0.50, got ${dollars:.4}"
        );
        // And the rate itself is the published per-1K price.
        assert_eq!(DOLLARS_PER_1K_TOKENS, 0.06);
    }

    #[test]
    fn summaries() {
        let s = summarize(&[3.0, 1.0, 2.0, 10.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 4.0);
        let empty = summarize(&[]);
        assert_eq!(empty.mean, 0.0);
    }
}
