//! # metamut-llm
//!
//! A deterministic *simulated* language model standing in for the GPT-4
//! endpoint the paper drives (see DESIGN.md, substitution #2). It answers
//! the four prompt kinds MetaMut issues:
//!
//! 1. **Invention** — samples the "perform \[Action\] on \[Program
//!    Structure\]" probability space of §3.1 (with the paper's creativity
//!    escape hatch) and names a mutator.
//! 2. **Synthesis** — emits a [`Blueprint`]: a serialized implementation
//!    spec that the framework compiles against the mutator behavior
//!    library, seeded with [`defects::Defect`]s at the Table 1 frequencies.
//! 3. **Test generation** — returns compilable unit-test programs
//!    containing the targeted structure.
//! 4. **Repair** — given validation feedback naming an unmet goal, returns
//!    a corrected blueprint (usually; LLMs fail at hard bugs, §5.4).
//!
//! Token counts, QA rounds and latencies are sampled from the empirical
//! distributions of Tables 2–3, so the framework's cost bookkeeping is
//! directly comparable to the paper's.

#![warn(missing_docs)]

pub mod accounting;
pub mod defects;

use accounting::{sample_interaction, Interaction, Step};
use defects::Defect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The `[Action]` list of §3.1 (derived from Clang AST/IR member functions).
pub const ACTIONS: [&str; 12] = [
    "Add", "Modify", "Copy", "Swap", "Inline", "Destruct", "Group", "Combine", "Lift", "Switch",
    "Inverse", "Remove",
];

/// The `[Program Structure]` list of §3.1 (Clang AST node types).
pub const STRUCTURES: [&str; 14] = [
    "BinaryOperator",
    "LogicalExpr",
    "CharLiteral",
    "IfStmt",
    "Attribute",
    "Builtins",
    "ArrayDimension",
    "IntegerLiteral",
    "FunctionDecl",
    "VarDecl",
    "ReturnStmt",
    "SwitchStmt",
    "UnaryOperator",
    "ForStmt",
];

/// A synthesized mutator implementation, as structured data: the framework
/// "compiles" it by binding `behavior` against the mutator library and
/// wrapping it with any remaining `defects`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blueprint {
    /// The invented CamelCase mutator name.
    pub name: String,
    /// The natural-language description the name stands for.
    pub description: String,
    /// Behavior key resolved against the mutator library.
    pub behavior: String,
    /// Remaining implementation flaws.
    pub defects: Vec<Defect>,
    /// Hidden flaw: the implementation deviates from the description and
    /// only *manual* review catches it (§4.1 "mismatched implementation").
    pub mismatched: bool,
    /// Hidden flaw: survives the generated tests but fails on more complex
    /// programs (§4.1 "unthorough test cases").
    pub latent_compile_error: bool,
}

/// An invented mutator: name plus description plus sampling metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invention {
    /// CamelCase name.
    pub name: String,
    /// One-sentence description.
    pub description: String,
    /// The `(action, structure)` pair it was sampled from (`None` for the
    /// "creative" escapes like `Ret2V`).
    pub pair: Option<(String, String)>,
    /// The behavior key the synthesis step will bind.
    pub behavior: String,
}

/// A model response plus its sampled cost.
#[derive(Debug, Clone)]
pub struct Reply<T> {
    /// The payload.
    pub value: T,
    /// Token/latency cost of the round trip.
    pub cost: Interaction,
}

/// Error kinds for failed invocations (§4.1: 24/100 runs died on API
/// throttling or timeouts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// Rate limited.
    Throttled,
    /// Request timed out.
    Timeout,
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::Throttled => f.write_str("API throttled"),
            LlmError::Timeout => f.write_str("request timed out"),
        }
    }
}

impl std::error::Error for LlmError {}

/// Simulator configuration knobs (probabilities measured in §4.1).
#[derive(Debug, Clone)]
pub struct SimLlmConfig {
    /// Probability a whole invocation dies on infrastructure errors (24%).
    pub system_error_rate: f64,
    /// Probability the first implementation carries defects (54%).
    pub defective_rate: f64,
    /// Mean number of injected defects when defective (≈4, Table 1).
    pub mean_defects: f64,
    /// Probability a repair round actually fixes the reported defect.
    pub repair_success_rate: f64,
    /// Probability of a hidden description mismatch (7/76).
    pub mismatch_rate: f64,
    /// Probability of a latent compile-error flaw (10/76).
    pub latent_rate: f64,
    /// Probability the model ignores the avoid-list (3/76 duplicates).
    pub duplicate_rate: f64,
    /// Probability of a "creative" off-template invention (33/118).
    pub creative_rate: f64,
}

impl Default for SimLlmConfig {
    fn default() -> Self {
        SimLlmConfig {
            system_error_rate: 0.24,
            defective_rate: 0.54,
            mean_defects: 5.5,
            repair_success_rate: 0.93,
            mismatch_rate: 0.09,
            latent_rate: 0.13,
            duplicate_rate: 0.04,
            creative_rate: 0.28,
        }
    }
}

/// The deterministic simulated language model.
#[derive(Debug)]
pub struct SimLlm {
    rng: StdRng,
    config: SimLlmConfig,
    /// Behavior keys the "model" can implement (its pretraining knowledge —
    /// in practice, the names in the mutator library).
    behaviors: Vec<String>,
    /// Off-template creative inventions with their behaviors.
    creative: Vec<(String, String, String)>,
}

impl SimLlm {
    /// Creates a simulator over the given behavior vocabulary.
    pub fn new(seed: u64, behaviors: Vec<String>) -> Self {
        SimLlm::with_config(seed, behaviors, SimLlmConfig::default())
    }

    /// Creates a simulator with custom rates.
    pub fn with_config(seed: u64, behaviors: Vec<String>, config: SimLlmConfig) -> Self {
        let creative = vec![
            (
                "ModifyFunctionReturnTypeToVoid".to_string(),
                "Change a function's return type to void, remove all return statements, and replace all uses of the function's result with a default value.".to_string(),
                "ModifyFunctionReturnTypeToVoid".to_string(),
            ),
            (
                "SimpleUninliner".to_string(),
                "Turn a block of code into a function call.".to_string(),
                "SimpleUninliner".to_string(),
            ),
            (
                "TransformSwitchToIfElse".to_string(),
                "This mutator identifies a 'switch' statement in the code and transforms it into an equivalent series of 'if-else' statements, effectively altering the control flow structure.".to_string(),
                "TransformSwitchToIfElse".to_string(),
            ),
            (
                "DecaySmallStruct".to_string(),
                "Casts a small object into a long long variable and rewrites all references into pointer arithmetic over the new variable.".to_string(),
                "DecaySmallStruct".to_string(),
            ),
            (
                "AggregateMemberToScalarVariable".to_string(),
                "Transforms an aggregate member access into a fresh scalar variable with a declaration added for it.".to_string(),
                "AggregateMemberToScalarVariable".to_string(),
            ),
            (
                "ChangeParamScope".to_string(),
                "Moves a parameter from the parameter scope to the local scope of the function, initializing it with a default value.".to_string(),
                "ChangeParamScope".to_string(),
            ),
        ];
        SimLlm {
            rng: StdRng::seed_from_u64(seed),
            config,
            behaviors,
            creative,
        }
    }

    /// Whether this invocation dies with an infrastructure error; MetaMut
    /// counts these as unsuccessful runs (§4.1).
    pub fn roll_system_error(&mut self) -> Option<LlmError> {
        if self.rng.gen_bool(self.config.system_error_rate) {
            Some(if self.rng.gen_bool(0.5) {
                LlmError::Throttled
            } else {
                LlmError::Timeout
            })
        } else {
            None
        }
    }

    /// Answers an invention prompt (the §3.1 template plus sampling hints:
    /// `avoid` lists the previously generated names).
    pub fn invent(&mut self, avoid: &[String]) -> Reply<Invention> {
        let cost = sample_interaction(&mut self.rng, Step::Invention);
        let honor_avoid = !self.rng.gen_bool(self.config.duplicate_rate);
        let mut attempts = 0;
        let value = loop {
            let inv = self.sample_invention();
            attempts += 1;
            if !honor_avoid || !avoid.contains(&inv.name) || attempts > 64 {
                break inv;
            }
            // Biased re-sampling — the paper's "sampling hints" (§3.1.3).
        };
        Reply { value, cost }
    }

    fn sample_invention(&mut self) -> Invention {
        if self.rng.gen_bool(self.config.creative_rate) {
            let i = self.rng.gen_range(0..self.creative.len());
            let (name, desc, behavior) = self.creative[i].clone();
            return Invention {
                name,
                description: desc,
                pair: None,
                behavior,
            };
        }
        let action = ACTIONS[self.rng.gen_range(0..ACTIONS.len())];
        let structure = STRUCTURES[self.rng.gen_range(0..STRUCTURES.len())];
        let behavior = self.nearest_behavior(action, structure);
        Invention {
            name: format!("{action}{structure}"),
            description: format!(
                "A semantic-aware mutation operator that performs {action} on {structure}."
            ),
            pair: Some((action.to_string(), structure.to_string())),
            behavior,
        }
    }

    /// Maps an (action, structure) pair onto the behavior vocabulary —
    /// the model "knowing how" to implement what it invented.
    fn nearest_behavior(&mut self, action: &str, structure: &str) -> String {
        let keyword: &[&str] = match structure {
            "BinaryOperator" | "LogicalExpr" => &["Binary", "Operand", "Relational"],
            "CharLiteral" | "IntegerLiteral" => &["Literal", "Integer"],
            "IfStmt" => &["If", "Branch", "Condition"],
            "ArrayDimension" => &["Array", "Index"],
            "FunctionDecl" | "Builtins" => &["Function", "Param", "Call", "Inline"],
            "VarDecl" | "Attribute" => &["Var", "Qualifier", "Volatile", "Static", "Init"],
            "ReturnStmt" => &["Return", "Early"],
            "SwitchStmt" => &["Switch", "Case"],
            "UnaryOperator" => &["Unary", "Not"],
            "ForStmt" => &["Loop", "For", "While"],
            _ => &["Expr"],
        };
        let verb: &[&str] = match action {
            "Swap" | "Switch" => &["Swap", "Reorder", "Switch"],
            "Inverse" => &["Inverse", "Negate"],
            "Copy" | "Add" | "Group" | "Combine" => &["Duplicate", "Copy", "Add", "Insert", "Wrap"],
            "Remove" | "Destruct" => &["Remove", "Delete", "Empty"],
            "Inline" | "Lift" => &["Inline", "Promote", "Uninline", "Extract"],
            _ => &["Modify", "Replace", "Change"],
        };
        let mut candidates: Vec<&String> = self
            .behaviors
            .iter()
            .filter(|b| keyword.iter().any(|k| b.contains(k)) && verb.iter().any(|v| b.contains(v)))
            .collect();
        if candidates.is_empty() {
            candidates = self
                .behaviors
                .iter()
                .filter(|b| keyword.iter().any(|k| b.contains(k)))
                .collect();
        }
        if candidates.is_empty() {
            candidates = self.behaviors.iter().collect();
        }
        let i = self.rng.gen_range(0..candidates.len());
        candidates[i].clone()
    }

    /// Answers a synthesis prompt with a tentative blueprint.
    pub fn synthesize(&mut self, invention: &Invention) -> Reply<Blueprint> {
        let cost = sample_interaction(&mut self.rng, Step::Implementation);
        let mut defects = Vec::new();
        if self.rng.gen_bool(self.config.defective_rate) {
            // Geometric-ish count with the paper's ~4 mean.
            let mut n = 1;
            while self.rng.gen_bool(1.0 - 1.0 / self.config.mean_defects) && n < 12 {
                n += 1;
            }
            for _ in 0..n {
                defects.push(Defect::sample(self.rng.gen()));
            }
            defects.sort();
        }
        let value = Blueprint {
            name: invention.name.clone(),
            description: invention.description.clone(),
            behavior: invention.behavior.clone(),
            defects,
            mismatched: self.rng.gen_bool(self.config.mismatch_rate),
            latent_compile_error: self.rng.gen_bool(self.config.latent_rate),
        };
        Reply { value, cost }
    }

    /// Answers a test-generation prompt with compilable programs that
    /// contain the targeted structures.
    pub fn generate_tests(&mut self, _behavior: &str) -> Reply<Vec<String>> {
        let cost = sample_interaction(&mut self.rng, Step::Implementation);
        // The simulated model produces a fixed, rich test suite; the real
        // one produced per-mutator suites, but validation only needs the
        // targeted structures to be *present*.
        let value = TEST_PROGRAMS.iter().map(|s| s.to_string()).collect();
        Reply { value, cost }
    }

    /// Answers a repair prompt: usually removes the defect behind the
    /// reported goal, occasionally fails (hard bugs stay, §5.4 limitation 2).
    pub fn repair(&mut self, blueprint: &Blueprint, goal: u8, _message: &str) -> Reply<Blueprint> {
        let cost = sample_interaction(&mut self.rng, Step::BugFixing);
        let mut fixed = blueprint.clone();
        // Hang defects model the paper's un-fixable class.
        let hard = goal == Defect::Hangs.goal();
        let succeed = !hard && self.rng.gen_bool(self.config.repair_success_rate);
        if succeed {
            // One feedback round fixes one bug (Table 2: ~4 rounds mean);
            // occasionally the rewrite cleans a second instance too.
            let had_defect = fixed.defects.iter().any(|d| d.goal() == goal);
            let remove_one = |fixed: &mut Blueprint| {
                if let Some(pos) = fixed.defects.iter().position(|d| d.goal() == goal) {
                    fixed.defects.remove(pos);
                }
            };
            remove_one(&mut fixed);
            if had_defect {
                if self.rng.gen_bool(0.3) {
                    remove_one(&mut fixed);
                }
            } else if !self.behaviors.is_empty() && self.rng.gen_bool(0.5) {
                // The reported failure is inherent to the chosen approach
                // (no injected defect to remove): the model rewrites the
                // implementation around a different strategy, like GPT-4's
                // restructured Ret2V in Figure 4. Such rewrites are how
                // implementations drift away from their descriptions — half
                // of them become §4.1 "mismatched implementation" cases.
                let i = self.rng.gen_range(0..self.behaviors.len());
                fixed.behavior = self.behaviors[i].clone();
                if self.rng.gen_bool(0.5) {
                    fixed.mismatched = true;
                }
            }
        }
        Reply { value: fixed, cost }
    }
}

/// The unit-test programs the simulated model "writes" for validation:
/// compilable and jointly covering every targeted program structure.
pub static TEST_PROGRAMS: [&str; 5] = [
    r#"
int flag = 1;
int spare_global;
int alpha(int a, int b) {
    int x = a + b * 2;
    int y = 10;
    if (x > y) { x = x - 1; } else { y = y + 1; }
    return x ^ y;
}
int main(void) { return alpha(3, 4); }
"#,
    r#"
int arr[8];
int beta(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        arr[i & 7] = i * 2;
        total += arr[i & 7];
    }
    while (total > 100) { total /= 2; }
    return total;
}
int main(void) { return beta(6); }
"#,
    r#"
int gamma_fn(int mode) {
    switch (mode) {
        case 0: return 10;
        case 1: return 20;
        default: return mode > 5 ? 1 : -1;
    }
}
int main(void) { return gamma_fn(1) + gamma_fn(9); }
"#,
    r#"
double scale_factor = 1.5;
double delta(double v) { return v * scale_factor; }
int wrapper(void) { return (int)delta(4.0); }
int main(void) { return wrapper(); }
"#,
    r#"
struct node { int value; int weight; };
int eval(struct node *n) { return n->value * n->weight; }
int main(void) {
    struct node n;
    n.value = 3;
    n.weight = -2;
    int r = eval(&n);
    return !r ? 0 : 1;
}
"#,
];

#[cfg(test)]
mod tests {
    use super::*;

    fn behaviors() -> Vec<String> {
        [
            "SwapBinaryOperands",
            "ModifyIntegerLiteral",
            "DuplicateBranch",
            "NegateCondition",
            "RemoveVarInit",
            "InlineFunctionCall",
            "ReplaceIndexWithZero",
            "AddCaseToSwitch",
            "InverseUnaryOperator",
            "ConvertWhileToFor",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn inventions_are_plausible_and_bound() {
        let mut llm = SimLlm::new(7, behaviors());
        for _ in 0..50 {
            let r = llm.invent(&[]);
            assert!(!r.value.name.is_empty());
            assert!(!r.value.description.is_empty());
            assert!(
                behaviors().contains(&r.value.behavior) || r.value.pair.is_none(),
                "unbound behavior {}",
                r.value.behavior
            );
            assert!(r.cost.tokens >= 359);
        }
    }

    #[test]
    fn avoid_list_respected_mostly() {
        let mut llm = SimLlm::with_config(
            3,
            behaviors(),
            SimLlmConfig {
                duplicate_rate: 0.0,
                creative_rate: 0.0,
                ..Default::default()
            },
        );
        let first = llm.invent(&[]).value;
        for _ in 0..30 {
            let next = llm.invent(std::slice::from_ref(&first.name)).value;
            assert_ne!(next.name, first.name);
        }
    }

    #[test]
    fn creative_inventions_break_template() {
        let mut llm = SimLlm::with_config(
            11,
            behaviors(),
            SimLlmConfig {
                creative_rate: 1.0,
                ..Default::default()
            },
        );
        let inv = llm.invent(&[]).value;
        assert!(inv.pair.is_none());
        assert!([
            "ModifyFunctionReturnTypeToVoid",
            "SimpleUninliner",
            "TransformSwitchToIfElse",
            "DecaySmallStruct",
            "AggregateMemberToScalarVariable",
            "ChangeParamScope"
        ]
        .contains(&inv.name.as_str()));
    }

    #[test]
    fn synthesis_injects_defects_at_rate() {
        let mut llm = SimLlm::new(13, behaviors());
        let inv = llm.invent(&[]).value;
        let mut defective = 0;
        let n = 300;
        for _ in 0..n {
            let bp = llm.synthesize(&inv).value;
            if !bp.defects.is_empty() {
                defective += 1;
            }
        }
        let rate = defective as f64 / n as f64;
        assert!((0.40..0.70).contains(&rate), "defective rate {rate}");
    }

    #[test]
    fn repair_removes_reported_goal() {
        let mut llm = SimLlm::with_config(
            17,
            behaviors(),
            SimLlmConfig {
                repair_success_rate: 1.0,
                ..Default::default()
            },
        );
        let inv = llm.invent(&[]).value;
        let mut bp = llm.synthesize(&inv).value;
        bp.defects = vec![Defect::SyntaxError, Defect::NoOutput];
        let fixed = llm.repair(&bp, 1, "error: expected ';'").value;
        assert!(!fixed.defects.contains(&Defect::SyntaxError));
    }

    #[test]
    fn hang_defects_resist_repair() {
        let mut llm = SimLlm::new(19, behaviors());
        let inv = llm.invent(&[]).value;
        let mut bp = llm.synthesize(&inv).value;
        bp.defects = vec![Defect::Hangs];
        for _ in 0..10 {
            bp = llm.repair(&bp, 2, "timeout").value;
        }
        assert!(bp.defects.contains(&Defect::Hangs));
    }

    #[test]
    fn test_programs_compile_and_cover_structures() {
        for (i, p) in TEST_PROGRAMS.iter().enumerate() {
            metamut_lang::compile_check(p).unwrap_or_else(|e| panic!("test program {i}: {e}"));
        }
        let all = TEST_PROGRAMS.join("\n");
        for needle in [
            "if", "for", "while", "switch", "struct", "return", "double", "[",
        ] {
            assert!(all.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimLlm::new(5, behaviors());
        let mut b = SimLlm::new(5, behaviors());
        for _ in 0..10 {
            assert_eq!(a.invent(&[]).value, b.invent(&[]).value);
        }
    }

    #[test]
    fn system_errors_at_configured_rate() {
        let mut llm = SimLlm::new(23, behaviors());
        let mut errors = 0;
        let n = 1000;
        for _ in 0..n {
            if llm.roll_system_error().is_some() {
                errors += 1;
            }
        }
        let rate = errors as f64 / n as f64;
        assert!((0.18..0.30).contains(&rate), "system error rate {rate}");
    }

    #[test]
    fn blueprints_serialize() {
        let bp = Blueprint {
            name: "X".into(),
            description: "d".into(),
            behavior: "B".into(),
            defects: vec![Defect::SyntaxError],
            mismatched: false,
            latent_compile_error: true,
        };
        let json = serde_json::to_string(&bp).unwrap();
        let back: Blueprint = serde_json::from_str(&json).unwrap();
        assert_eq!(bp, back);
    }
}
