//! Incremental mutant compilation: function-granular artifact caching.
//!
//! A fuzzing campaign compiles thousands of mutants per seed, and almost
//! every mutant is its seed with exactly one declaration edited. Cold
//! compilation re-runs the whole four-stage pipeline on the unchanged
//! 90-something percent of the program every time. This module caches the
//! per-declaration artifacts of a seed's *baseline* compile — semantic
//! tables, lowered IR, per-function optimizer output, per-function
//! assembly — and, for a mutant that edits a single function definition,
//! re-runs the pipeline only on the edited function, stitching cached
//! artifacts back into a [`CompileResult`] that is bit-identical (outcome,
//! coverage set, crash signature, planted-bug features) to a cold compile.
//!
//! # Soundness
//!
//! The fast path is guarded, never assumed. Every guard failure falls back
//! to a cold compile, so incremental compilation can only ever be a
//! performance optimization, not a behavior change:
//!
//! 1. the mutant lexes, and token-level [`metamut_lang::split_source`]
//!    yields the same number of declaration chunks as the seed;
//! 2. at most one chunk's content hash differs from the baseline;
//! 3. the changed chunk was a function *definition* in the seed, and
//!    re-parses (seeded with the typedefs visible at that boundary) to
//!    exactly one function definition;
//! 4. re-checking the declaration against the seed's environment snapshot
//!    succeeds, and the post-state environment fingerprint equals the
//!    seed's — proving nothing later declarations observe has changed;
//! 5. the volatile-name set and the trivial-inline-candidate entry of the
//!    edited function are unchanged, so cached feature partials and cached
//!    inlining decisions in *other* functions remain valid.
//!
//! The seed-side decomposition (per-declaration sema, lowering, features,
//! per-function passes and codegen) is additionally self-checked against
//! the whole-program pipeline when the baseline is built; any disagreement
//! makes the seed permanently uncacheable instead of unsound. A campaign
//! can also cross-check every Nth incremental result against a cold
//! compile at runtime ([`BaselineCache::with_cross_check`]).

use crate::backend;
use crate::bugs;
use crate::coverage::{feature_hash, feature_hash_display, feature_hash_str, CoverageMap, Stage};
use crate::features::{self, AstFeatures};
use crate::ir::{Inst, IrFunction, Value};
use crate::lower;
use crate::passes::{self, LoopInfo, OptReport};
use crate::{CompileOptions, CompileResult, Compiler, Outcome};
use metamut_lang::fxhash::{FxHashMap, FxHashSet};
use metamut_lang::sema::{FuncSig, RecordInfo};
use metamut_lang::token::Token;
use metamut_lang::{ast as c, check_decl, SemaResult, SemaSnapshot};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ----------------------------------------------------------------------
// Per-function optimizer stages
// ----------------------------------------------------------------------

/// Pass names in execution order for a given `-O` level, excluding the
/// trailing loop-analysis entry (whose count is the global loop total).
pub(crate) fn pass_names(opt_level: u8) -> &'static [&'static str] {
    match opt_level {
        0 => &[],
        1 => &["const-fold", "dce"],
        _ => &[
            "const-fold",
            "dce",
            "simplify-cfg",
            "inline",
            "strlen-opt",
            "const-fold-2",
            "dce-2",
        ],
    }
}

/// Index of the `inline` pass in [`pass_names`] at `-O2`+.
pub(crate) const INLINE_IDX: usize = 3;

/// Runs the pre-inlining passes on one function, pushing per-pass change
/// counts in [`pass_names`] order.
pub(crate) fn opt_stage_a(
    f: &mut IrFunction,
    opt_level: u8,
    report: &mut OptReport,
    counts: &mut Vec<usize>,
) {
    if opt_level == 0 {
        return;
    }
    counts.push(passes::const_fold_fn(f, report));
    counts.push(passes::dead_code_elim_fn(f, report));
    if opt_level >= 2 {
        counts.push(passes::simplify_cfg_fn(f, report));
    }
}

/// Runs the inlining-and-later passes on one function. `trivial` must be
/// the module-wide trivial-body map computed *between* the stages, exactly
/// as [`passes::optimize`] computes it between `simplify-cfg` and `inline`.
pub(crate) fn opt_stage_b(
    f: &mut IrFunction,
    trivial: &FxHashMap<String, (Vec<Inst>, Option<Value>)>,
    opt_level: u8,
    flags: &passes::OptFlags,
    report: &mut OptReport,
    counts: &mut Vec<usize>,
) {
    if opt_level < 2 {
        return;
    }
    counts.push(passes::inline_trivial_fn(f, trivial, report));
    counts.push(passes::strlen_reduce_fn(f, report));
    counts.push(passes::const_fold_fn(f, report));
    counts.push(passes::dead_code_elim_fn(f, report));
    passes::loop_analysis_fn(f, opt_level, flags, report);
}

// ----------------------------------------------------------------------
// Baseline artifacts
// ----------------------------------------------------------------------

/// Cached pipeline artifacts of one function definition.
#[derive(Debug, Clone)]
pub(crate) struct FnArtifacts {
    /// Optimizer coverage features this function contributed.
    pub(crate) opt_features: Vec<u64>,
    /// Per-pass change counts, in [`pass_names`] order.
    pub(crate) counts: Vec<usize>,
    /// Loops discovered in this function.
    pub(crate) loops: Vec<LoopInfo>,
    /// strlen-reduction observations from this function.
    pub(crate) strlen: Vec<(String, bool)>,
    /// Calls inlined away inside this function.
    pub(crate) inlined: usize,
    /// Back-end coverage features of this function's assembly.
    pub(crate) asm_features: Vec<u64>,
    /// Emitted instruction count.
    pub(crate) asm_len: usize,
    /// Spills inserted by register allocation.
    pub(crate) asm_spills: usize,
    /// Peak register pressure.
    pub(crate) asm_peak: usize,
}

/// Cached pipeline artifacts of one top-level declaration.
#[derive(Debug, Clone)]
pub(crate) struct DeclArtifacts {
    /// The front end's declaration-shape coverage code (tag 6).
    pub(crate) code6: u64,
    /// Type-diversity coverage features from this declaration's
    /// expression types.
    pub(crate) ty_feats: Vec<u64>,
    /// This declaration's [`AstFeatures`] partial.
    pub(crate) feats: AstFeatures,
    /// Volatile declarator names visible before this declaration.
    pub(crate) volatile_before: FxHashSet<String>,
    /// Volatile declarator names visible after it.
    pub(crate) volatile_after: FxHashSet<String>,
    /// IR-generation coverage features from lowering this declaration.
    pub(crate) lower_features: Vec<u64>,
    /// Optimizer/back-end artifacts when the declaration is a function
    /// definition.
    pub(crate) func: Option<FnArtifacts>,
}

/// The cached baseline compile of one seed program, decomposed per
/// declaration so a single-declaration mutant can reuse everything else.
///
/// Built by [`Baseline::build`]; only seeds whose cold compile succeeds
/// (and whose per-declaration decomposition verifiably reproduces the
/// whole-program pipeline) get a baseline.
#[derive(Debug)]
pub struct Baseline {
    profile: bugs::Profile,
    options: CompileOptions,
    chunk_hashes: Vec<u128>,
    decls: Vec<DeclArtifacts>,
    /// Environment fingerprint at every declaration boundary
    /// (`fingerprints[k]` = before declaration `k`).
    fingerprints: Vec<u64>,
    /// Environment snapshots at every declaration boundary.
    snapshots: Vec<SemaSnapshot>,
    /// Final whole-program function signatures (what lowering consults).
    final_functions: FxHashMap<String, FuncSig>,
    /// Final whole-program record table.
    final_records: FxHashMap<String, RecordInfo>,
    /// Final whole-program enumeration constants.
    final_enum_consts: FxHashMap<String, i64>,
    /// Front-end coverage tag 8 (record-count bucket).
    tag8: u64,
    /// Front-end coverage tag 9 (function-count bucket).
    tag9: u64,
    /// Module-wide trivial-inline candidate map (post pre-inlining
    /// passes), keyed by function name.
    trivial: FxHashMap<String, (Vec<Inst>, Option<Value>)>,
    /// The seed's own cold compile result.
    seed_result: CompileResult,
    /// Wall time of the seed's cold compile, for saved-time telemetry.
    cold_ms: f64,
}

impl Baseline {
    /// Builds the per-declaration baseline for `src`, or `None` when the
    /// seed is not cacheable (lexes or splits oddly, fails to parse or
    /// analyze, or any decomposition self-check fails). `None` means the
    /// seed's mutants always compile cold — never that they compile wrong.
    ///
    /// Crashing seeds are cacheable: planted bugs only fire in the bug
    /// checks that `compile`/`stitch` replay, never in the per-declaration
    /// pipeline cores used here, so the artifacts below are well defined
    /// for any seed that parses and analyzes cleanly. This is what lets
    /// the reduction oracle compile candidates incrementally against a
    /// crashing witness.
    pub fn build(compiler: &Compiler, src: &str) -> Option<Baseline> {
        let t0 = std::time::Instant::now();
        let seed_result = compiler.compile(src);
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        let opt_level = compiler.options().opt_level;
        let flags = compiler.options().flags.clone();

        let (_tokens, chunks) = metamut_lang::split_source(src)?;
        let ast = metamut_lang::parse("<seed>", src).ok()?;
        if chunks.len() != ast.unit.decls.len() {
            return None;
        }
        for (ch, d) in chunks.iter().zip(&ast.unit.decls) {
            let ds = d.span();
            if !(ch.span.lo <= ds.lo && ds.hi <= ch.span.hi) {
                return None;
            }
        }
        let inc = metamut_lang::analyze_decls(&ast).ok()?;
        let full = metamut_lang::analyze(&ast).ok()?;

        // Per-declaration front-end artifacts, with the volatile-name set
        // (the only feature state that crosses declarations) threaded
        // explicitly.
        let mut decls = Vec::with_capacity(ast.unit.decls.len());
        let mut partials = Vec::with_capacity(ast.unit.decls.len());
        let mut pending: Vec<(usize, IrFunction, OptReport, Vec<usize>)> = Vec::new();
        let mut volatile = FxHashSet::default();
        let mut ty_union: FxHashSet<u64> = FxHashSet::default();
        for (k, d) in ast.unit.decls.iter().enumerate() {
            let df = features::decl_features(d, &volatile);
            let ty_feats: Vec<u64> = inc.decls[k]
                .sema
                .expr_types
                .values()
                .map(|qt| feature_hash_display(format_args!("ty:{qt}")))
                .collect();
            ty_union.extend(ty_feats.iter().copied());
            let ld = lower::lower_decl(d, &full);
            if let Some(mut f) = ld.function {
                let mut report = OptReport::default();
                let mut counts = Vec::new();
                opt_stage_a(&mut f, opt_level, &mut report, &mut counts);
                pending.push((k, f, report, counts));
            }
            decls.push(DeclArtifacts {
                code6: crate::decl_code(d),
                ty_feats,
                feats: df.features.clone(),
                volatile_before: volatile.clone(),
                volatile_after: df.volatile_after.clone(),
                lower_features: ld.features,
                func: None,
            });
            partials.push(df.features);
            volatile = df.volatile_after;
        }

        // Self-check: the per-declaration decomposition must reproduce the
        // whole-program front end exactly.
        if features::merge_decl_features(&partials) != features::ast_features(&ast) {
            return None;
        }
        let full_ty: FxHashSet<u64> = full
            .expr_types
            .values()
            .map(|qt| feature_hash_display(format_args!("ty:{qt}")))
            .collect();
        if ty_union != full_ty {
            return None;
        }

        // The trivial-inline map is computed between the optimizer's two
        // stages, from every function's pre-inlining state.
        let trivial: FxHashMap<String, (Vec<Inst>, Option<Value>)> = if opt_level >= 2 {
            pending
                .iter()
                .filter_map(|(_, f, _, _)| passes::trivial_body_of(f).map(|b| (f.name.clone(), b)))
                .collect()
        } else {
            FxHashMap::default()
        };
        for (k, f, report, counts) in &mut pending {
            opt_stage_b(f, &trivial, opt_level, &flags, report, counts);
            let asm = backend::codegen_one(f);
            decls[*k].func = Some(FnArtifacts {
                opt_features: std::mem::take(&mut report.features),
                counts: counts.clone(),
                loops: std::mem::take(&mut report.loops),
                strlen: std::mem::take(&mut report.strlen_reductions),
                inlined: if opt_level >= 2 {
                    counts[INLINE_IDX]
                } else {
                    0
                },
                asm_features: asm.features,
                asm_len: asm.insts.len(),
                asm_spills: asm.spills,
                asm_peak: asm.peak_pressure,
            });
        }

        // Self-check: stitching the per-function optimizer and back-end
        // artifacts must reproduce the whole-module pipeline exactly.
        let mut cold_module = lower::lower(&ast, &full).module;
        let cold_report = passes::optimize(&mut cold_module, opt_level, &flags);
        let stitched = stitch_opt_report(decls.iter().collect::<Vec<_>>().as_slice(), opt_level);
        if stitched.pass_stats != cold_report.pass_stats
            || stitched.loops != cold_report.loops
            || stitched.strlen_reductions != cold_report.strlen_reductions
            || stitched.inlined != cold_report.inlined
            || sorted(&stitched.features) != sorted(&cold_report.features)
        {
            return None;
        }
        let cold_asm = backend::codegen(&cold_module);
        let funcs: Vec<&FnArtifacts> = decls.iter().filter_map(|d| d.func.as_ref()).collect();
        let stitched_len: usize = funcs.iter().map(|f| f.asm_len).sum();
        let stitched_spills: usize = funcs.iter().map(|f| f.asm_spills).sum();
        let stitched_peak = funcs.iter().map(|f| f.asm_peak).max().unwrap_or(0);
        let stitched_asm_feats: Vec<u64> = funcs
            .iter()
            .flat_map(|f| f.asm_features.iter().copied())
            .collect();
        if stitched_len != cold_asm.insts.len()
            || stitched_spills != cold_asm.spills
            || stitched_peak != cold_asm.peak_pressure
            || stitched_asm_feats != cold_asm.features
        {
            return None;
        }

        let tag8 = full.records.len().min(32) as u64;
        let tag9 = full.functions.len().min(64) as u64;
        Some(Baseline {
            profile: compiler.profile(),
            options: compiler.options().clone(),
            chunk_hashes: chunks.iter().map(|ch| ch.hash).collect(),
            decls,
            fingerprints: inc.snapshots.iter().map(|s| s.fingerprint()).collect(),
            snapshots: inc.snapshots,
            final_functions: full.functions,
            final_records: full.records,
            final_enum_consts: full.enum_consts,
            tag8,
            tag9,
            trivial,
            seed_result,
            cold_ms,
        })
    }

    /// The seed's own cold compile result (reusable verbatim when a
    /// "mutant" is byte-identical to its seed).
    pub fn seed_result(&self) -> &CompileResult {
        &self.seed_result
    }
}

fn sorted(v: &[u64]) -> Vec<u64> {
    let mut s = v.to_vec();
    s.sort_unstable();
    s
}

/// Rebuilds the whole-module [`OptReport`] from per-declaration artifacts:
/// per-pass counts sum, loops and strlen observations concatenate in
/// function order, and the loop-analysis entry carries the global total.
pub(crate) fn stitch_opt_report(arts: &[&DeclArtifacts], opt_level: u8) -> OptReport {
    let names = pass_names(opt_level);
    let mut report = OptReport::default();
    let mut sums = vec![0usize; names.len()];
    for a in arts {
        if let Some(fa) = &a.func {
            report.features.extend_from_slice(&fa.opt_features);
            for (i, c) in fa.counts.iter().enumerate() {
                sums[i] += c;
            }
            report.loops.extend(fa.loops.iter().cloned());
            report.strlen_reductions.extend(fa.strlen.iter().cloned());
            report.inlined += fa.inlined;
        }
    }
    report.pass_stats = names.iter().copied().zip(sums).collect();
    if opt_level >= 2 {
        report
            .pass_stats
            .push(("loop-analysis", report.loops.len()));
    }
    report
}

// ----------------------------------------------------------------------
// The incremental compile itself
// ----------------------------------------------------------------------

/// Whether two coverage maps record exactly the same branch set.
pub fn coverage_equal(a: &CoverageMap, b: &CoverageMap) -> bool {
    a.count() == b.count() && !a.would_grow(b) && !b.would_grow(a)
}

impl Compiler {
    /// Compiles `mutant` against a seed [`Baseline`], reusing cached
    /// per-declaration artifacts when the mutant edits at most one
    /// function definition; falls back to a cold [`Compiler::compile`]
    /// otherwise. The result is bit-identical to a cold compile either
    /// way.
    pub fn compile_incremental(&self, mutant: &str, baseline: &Baseline) -> CompileResult {
        self.compile_incremental_traced(mutant, baseline).0
    }

    /// Like [`Compiler::compile_incremental`], also reporting whether the
    /// incremental fast path was taken (`false` = cold fallback).
    pub fn compile_incremental_traced(
        &self,
        mutant: &str,
        baseline: &Baseline,
    ) -> (CompileResult, bool) {
        let handle = metamut_telemetry::handle();
        let t0 = handle.enabled().then(std::time::Instant::now);
        match self.try_incremental(mutant, baseline) {
            Ok(result) => {
                if handle.enabled() {
                    for stage in Stage::ALL {
                        handle.counter_add(
                            &metamut_telemetry::labeled("incremental_hits", stage.label()),
                            1,
                        );
                    }
                    if let Some(t) = t0 {
                        let spent = t.elapsed().as_secs_f64() * 1e3;
                        handle.observe("incremental_saved_ms", (baseline.cold_ms - spent).max(0.0));
                    }
                }
                (result, true)
            }
            Err(stage) => {
                if handle.enabled() {
                    handle.counter_add(&metamut_telemetry::labeled("incremental_misses", stage), 1);
                }
                (self.compile(mutant), false)
            }
        }
    }

    /// The guarded fast path. `Err` carries the pipeline-stage label at
    /// which the guard chain bailed (telemetry's `incremental_misses`
    /// family).
    fn try_incremental(
        &self,
        mutant: &str,
        baseline: &Baseline,
    ) -> Result<CompileResult, &'static str> {
        if self.profile != baseline.profile || self.options != baseline.options {
            return Err("config");
        }
        let Some((tokens, chunks)) = metamut_lang::split_source(mutant) else {
            return Err(Stage::FrontEnd.label());
        };
        if chunks.len() != baseline.chunk_hashes.len() {
            return Err(Stage::FrontEnd.label());
        }
        let mut diffs = chunks
            .iter()
            .enumerate()
            .filter(|(i, ch)| ch.hash != baseline.chunk_hashes[*i])
            .map(|(i, _)| i);
        let changed = match (diffs.next(), diffs.next()) {
            (None, _) => None,
            (Some(k), None) => Some(k),
            _ => return Err(Stage::FrontEnd.label()),
        };

        let recomputed = match changed {
            None => None,
            Some(k) => {
                let base_decl = &baseline.decls[k];
                // Only function-definition edits keep every other cached
                // artifact valid: globals, typedefs, records and enum
                // constants all change what later declarations see.
                if base_decl.func.is_none() {
                    return Err(Stage::FrontEnd.label());
                }
                let mini_src = chunks[k].text(mutant);
                let typedefs = baseline.snapshots[k].typedef_names();
                let Ok(mini) = metamut_lang::parse_with_typedefs("<inc>", mini_src, &typedefs)
                else {
                    return Err(Stage::FrontEnd.label());
                };
                if mini.unit.decls.len() != 1 {
                    return Err(Stage::FrontEnd.label());
                }
                match &mini.unit.decls[0] {
                    c::ExternalDecl::Function(f) if f.is_definition() => {}
                    _ => return Err(Stage::FrontEnd.label()),
                }
                let Ok(dc) = check_decl(&baseline.snapshots[k], &mini, 0) else {
                    return Err(Stage::FrontEnd.label());
                };
                // The edit must leave the environment later declarations
                // observe untouched, or their cached sema is stale.
                if dc.after.fingerprint() != baseline.fingerprints[k + 1] {
                    return Err(Stage::FrontEnd.label());
                }
                let df = features::decl_features(&mini.unit.decls[0], &base_decl.volatile_before);
                if df.volatile_after != base_decl.volatile_after {
                    return Err(Stage::FrontEnd.label());
                }
                let ty_feats: Vec<u64> = dc
                    .sema
                    .expr_types
                    .values()
                    .map(|qt| feature_hash_display(format_args!("ty:{qt}")))
                    .collect();
                // Lowering consults only the *final* semantic tables for
                // cross-declaration facts (signatures, enum constants),
                // plus this declaration's own expression/declaration
                // types — splice the two together. The fingerprint guard
                // proves the final tables are still the baseline's.
                let hybrid = SemaResult {
                    functions: baseline.final_functions.clone(),
                    records: baseline.final_records.clone(),
                    enum_consts: baseline.final_enum_consts.clone(),
                    ..dc.sema
                };
                let ld = lower::lower_decl(&mini.unit.decls[0], &hybrid);
                let Some(mut f) = ld.function else {
                    return Err(Stage::IrGen.label());
                };
                let opt_level = self.options.opt_level;
                let mut report = OptReport::default();
                let mut counts = Vec::new();
                opt_stage_a(&mut f, opt_level, &mut report, &mut counts);
                if opt_level >= 2 {
                    // Cached inlining decisions in *other* functions used
                    // the seed's trivial-body map; the edit must not have
                    // changed this function's entry in it.
                    if passes::trivial_body_of(&f) != baseline.trivial.get(&f.name).cloned() {
                        return Err(Stage::Opt.label());
                    }
                    opt_stage_b(
                        &mut f,
                        &baseline.trivial,
                        opt_level,
                        &self.options.flags,
                        &mut report,
                        &mut counts,
                    );
                }
                let asm = backend::codegen_one(&f);
                Some((
                    k,
                    DeclArtifacts {
                        code6: crate::decl_code(&mini.unit.decls[0]),
                        ty_feats,
                        feats: df.features,
                        volatile_before: base_decl.volatile_before.clone(),
                        volatile_after: df.volatile_after,
                        lower_features: ld.features,
                        func: Some(FnArtifacts {
                            opt_features: report.features,
                            counts: counts.clone(),
                            loops: report.loops,
                            strlen: report.strlen_reductions,
                            inlined: if opt_level >= 2 {
                                counts[INLINE_IDX]
                            } else {
                                0
                            },
                            asm_features: asm.features,
                            asm_len: asm.insts.len(),
                            asm_spills: asm.spills,
                            asm_peak: asm.peak_pressure,
                        }),
                    },
                ))
            }
        };

        let arts: Vec<&DeclArtifacts> = (0..baseline.decls.len())
            .map(|i| match &recomputed {
                Some((k, art)) if *k == i => art,
                _ => &baseline.decls[i],
            })
            .collect();
        Ok(self.stitch(mutant, &tokens, baseline.tag8, baseline.tag9, &arts))
    }

    /// Replays the cold pipeline's coverage recording and per-stage bug
    /// checks over stitched artifacts, in the cold order — including the
    /// early return (coverage truncation) when a planted bug fires.
    pub(crate) fn stitch(
        &self,
        mutant: &str,
        tokens: &[Token],
        tag8: u64,
        tag9: u64,
        arts: &[&DeclArtifacts],
    ) -> CompileResult {
        let opts = &self.options;
        let flags = &opts.flags;
        let mut cov = CoverageMap::new();

        // ---------------- Front end ----------------
        // Raw and lexical coverage depend on the mutant's exact text, so
        // they are always recomputed (they are also the cheap part).
        let raw = features::raw_features(mutant);
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[1, raw.max_paren_depth.min(64) as u64]),
        );
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[2, raw.max_brace_depth.min(64) as u64]),
        );
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[3, (raw.source_len / 64).min(128) as u64]),
        );
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[4, raw.max_ident_len.min(128) as u64]),
        );
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[5, raw.max_string_len.min(512) as u64 / 8]),
        );
        for w in tokens.windows(2) {
            let pair = (w[0].kind as u64) * 96 + w[1].kind as u64;
            cov.record(Stage::FrontEnd, feature_hash(&[20, pair % 331]));
        }
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[22, (tokens.len() / 16).min(64) as u64]),
        );
        for a in arts {
            cov.record(Stage::FrontEnd, feature_hash(&[6, a.code6]));
        }
        let partials: Vec<AstFeatures> = arts.iter().map(|a| a.feats.clone()).collect();
        let merged = features::merge_decl_features(&partials);

        let cx = bugs::BugCtx {
            raw: &raw,
            ast: Some(&merged),
            opt: None,
            asm: None,
            opt_level: opts.opt_level,
            flags,
        };
        if let Some(crash) = bugs::check_stage(self.profile, Stage::FrontEnd, &cx) {
            return CompileResult {
                outcome: Outcome::Crash(crash),
                coverage: cov,
            };
        }

        cov.record(Stage::FrontEnd, feature_hash(&[8, tag8]));
        cov.record(Stage::FrontEnd, feature_hash(&[9, tag9]));
        for a in arts {
            for t in &a.ty_feats {
                cov.record(Stage::FrontEnd, *t);
            }
        }

        // ---------------- IR generation ----------------
        for a in arts {
            for f in &a.lower_features {
                cov.record(Stage::IrGen, *f);
            }
        }
        let cx = bugs::BugCtx {
            raw: &raw,
            ast: Some(&merged),
            opt: None,
            asm: None,
            opt_level: opts.opt_level,
            flags,
        };
        if let Some(crash) = bugs::check_stage(self.profile, Stage::IrGen, &cx) {
            return CompileResult {
                outcome: Outcome::Crash(crash),
                coverage: cov,
            };
        }

        // ---------------- Optimizer ----------------
        let report = stitch_opt_report(arts, opts.opt_level);
        for f in &report.features {
            cov.record(Stage::Opt, *f);
        }
        for (name, n) in &report.pass_stats {
            cov.record(
                Stage::Opt,
                feature_hash_display(format_args!("{name}:{}", n.min(&16))),
            );
        }
        let cx = bugs::BugCtx {
            raw: &raw,
            ast: Some(&merged),
            opt: Some(&report),
            asm: None,
            opt_level: opts.opt_level,
            flags,
        };
        if let Some(crash) = bugs::check_stage(self.profile, Stage::Opt, &cx) {
            return CompileResult {
                outcome: Outcome::Crash(crash),
                coverage: cov,
            };
        }

        // ---------------- Back end ----------------
        let funcs: Vec<&FnArtifacts> = arts.iter().filter_map(|a| a.func.as_ref()).collect();
        let asm_len: usize = funcs.iter().map(|f| f.asm_len).sum();
        let spills: usize = funcs.iter().map(|f| f.asm_spills).sum();
        let peak = funcs.iter().map(|f| f.asm_peak).max().unwrap_or(0);
        for fa in &funcs {
            for f in &fa.asm_features {
                cov.record(Stage::BackEnd, *f);
            }
        }
        let cx = bugs::BugCtx {
            raw: &raw,
            ast: Some(&merged),
            opt: Some(&report),
            asm: Some((spills, peak)),
            opt_level: opts.opt_level,
            flags,
        };
        if let Some(crash) = bugs::check_stage(self.profile, Stage::BackEnd, &cx) {
            return CompileResult {
                outcome: Outcome::Crash(crash),
                coverage: cov,
            };
        }

        CompileResult {
            outcome: Outcome::Success { asm_len, spills },
            coverage: cov,
        }
    }
}

// ----------------------------------------------------------------------
// BaselineCache
// ----------------------------------------------------------------------

const SHARD_BITS: usize = 5;
const SHARDS: usize = 1 << SHARD_BITS;

/// One cached seed entry plus its second-chance reference bit.
#[derive(Debug)]
struct CacheEntry {
    baseline: Option<Arc<Baseline>>,
    /// Set on every lookup hit; eviction clears it once (the "second
    /// chance") before actually discarding the entry.
    referenced: bool,
}

/// One shard: the entry map plus the FIFO clock queue eviction walks.
#[derive(Debug, Default)]
struct CacheShard {
    map: FxHashMap<String, CacheEntry>,
    order: std::collections::VecDeque<String>,
}

/// A sharded seed → [`Baseline`] cache, the campaign-facing entry point of
/// incremental compilation.
///
/// One cache can serve any number of `(profile, options)` configurations —
/// the configuration is part of the key — and any number of parallel
/// workers. `None` entries remember seeds whose baseline cannot be built,
/// so uncacheable seeds pay the (failed) analysis once.
///
/// Baselines hold the full per-declaration artifact set of a seed, so a
/// long campaign over a large (or exchanging) seed pool can grow without
/// bound. [`BaselineCache::with_capacity`] bounds the entry count with
/// second-chance (clock) eviction: recently used seeds survive the first
/// eviction sweep, one-shot seeds go first. Evictions are counted by
/// [`BaselineCache::evictions`] and the `baseline_evictions` telemetry
/// counter; an evicted seed simply rebuilds on next use.
#[derive(Debug)]
pub struct BaselineCache {
    shards: Vec<Mutex<CacheShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    mismatches: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
    cross_check_every: usize,
    /// Per-shard entry cap (`usize::MAX` = unbounded).
    shard_cap: usize,
}

impl Default for BaselineCache {
    fn default() -> Self {
        Self::new()
    }
}

impl BaselineCache {
    /// An empty cache with cross-checking off.
    pub fn new() -> Self {
        Self::with_cross_check(0)
    }

    /// An empty cache that recompiles every `every`-th incremental result
    /// cold and compares bit-for-bit (`0` disables). A mismatch bumps the
    /// [`BaselineCache::mismatches`] counter (and the telemetry counter of
    /// the same name) and returns the cold result — correctness first.
    pub fn with_cross_check(every: usize) -> Self {
        BaselineCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            cross_check_every: every,
            shard_cap: usize::MAX,
        }
    }

    /// Caps the cache at roughly `cap` seed entries total (`0` =
    /// unbounded). The cap is split evenly across shards (rounded up), so
    /// the real bound is `ceil(cap / 32) * 32` in the worst case.
    pub fn with_capacity(mut self, cap: usize) -> Self {
        self.shard_cap = if cap == 0 {
            usize::MAX
        } else {
            cap.div_ceil(SHARDS).max(1)
        };
        self
    }

    fn shard(&self, key: &str) -> &Mutex<CacheShard> {
        let h = feature_hash_str(key);
        &self.shards[(h >> (64 - SHARD_BITS as u32)) as usize]
    }

    /// Returns the baseline for `seed` under `compiler`'s configuration,
    /// building (and caching) it on first sight. `None` = uncacheable.
    pub fn baseline(&self, compiler: &Compiler, seed: &str) -> Option<Arc<Baseline>> {
        let key = format!(
            "{:?}|{}|{seed}",
            compiler.profile(),
            compiler.options().render()
        );
        let shard = self.shard(&key);
        if let Some(entry) = shard.lock().map.get_mut(&key) {
            entry.referenced = true;
            return entry.baseline.clone();
        }
        // Build outside the lock: baseline construction runs the whole
        // cold pipeline plus the decomposition self-checks, and other
        // seeds hashing to this shard should not wait for it. A racing
        // duplicate build is idempotent.
        let built = Baseline::build(compiler, seed).map(Arc::new);
        let mut guard = shard.lock();
        if !guard.map.contains_key(&key) {
            self.make_room(&mut guard);
            guard.order.push_back(key.clone());
            guard.map.insert(
                key,
                CacheEntry {
                    baseline: built.clone(),
                    referenced: false,
                },
            );
        }
        built
    }

    /// Second-chance eviction: walk the clock queue; entries referenced
    /// since their last pass get their bit cleared and go to the back,
    /// the first unreferenced entry is discarded.
    fn make_room(&self, shard: &mut CacheShard) {
        while shard.map.len() >= self.shard_cap {
            let Some(victim) = shard.order.pop_front() else {
                return;
            };
            match shard.map.get_mut(&victim) {
                Some(entry) if entry.referenced => {
                    entry.referenced = false;
                    shard.order.push_back(victim);
                }
                Some(_) => {
                    shard.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    metamut_telemetry::handle().counter_add("baseline_evictions", 1);
                }
                // Stale queue entry (already evicted): just drop it.
                None => {}
            }
        }
    }

    /// Compiles `mutant` as an edit of `seed`: incrementally when the seed
    /// has a baseline and the mutant stays on the fast path, cold
    /// otherwise. Counts a hit only when cached artifacts were actually
    /// reused.
    pub fn compile(&self, compiler: &Compiler, seed: &str, mutant: &str) -> CompileResult {
        let Some(baseline) = self.baseline(compiler, seed) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return compiler.compile(mutant);
        };
        // Dud mutations re-emit their parent byte-for-byte; the compiler
        // is a pure function of its input, so the seed's stored result is
        // the mutant's result.
        if mutant == seed {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return baseline.seed_result().clone();
        }
        let (result, incremental) = compiler.compile_incremental_traced(mutant, &baseline);
        if incremental {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let n = self.compiles.fetch_add(1, Ordering::Relaxed);
            if self.cross_check_every > 0 && n.is_multiple_of(self.cross_check_every as u64) {
                let cold = compiler.compile(mutant);
                if result.outcome != cold.outcome
                    || !coverage_equal(&result.coverage, &cold.coverage)
                {
                    self.mismatches.fetch_add(1, Ordering::Relaxed);
                    metamut_telemetry::handle().counter_add("incremental_mismatches", 1);
                    return cold;
                }
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Incremental fast-path compiles served.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cold-fallback compiles (including uncacheable seeds).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cross-check disagreements observed (should stay zero).
    pub fn mismatches(&self) -> u64 {
        self.mismatches.load(Ordering::Relaxed)
    }

    /// Seed entries discarded by the capacity cap.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Fast-path rate over all compiles served so far.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }

    /// Number of cached seed entries (including uncacheable markers).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether no seed has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profile;

    const SEED: &str = r#"
typedef int T;
int g = 3;
volatile int vg;
struct P { int x; int y; };
static int helper(T a, T b) { return a * b + g; }
int fold(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + helper(i, i + 1); }
    return acc;
}
int main(void) { struct P p; p.x = fold(4); p.y = helper(2, 3); vg = p.x; return p.x + p.y; }
"#;

    fn assert_equivalent(c: &Compiler, mutant: &str, baseline: &Baseline, want_fast: bool) {
        let cold = c.compile(mutant);
        let (inc, fast) = c.compile_incremental_traced(mutant, baseline);
        assert_eq!(fast, want_fast, "fast-path expectation for {mutant:?}");
        assert_eq!(inc.outcome, cold.outcome);
        assert!(
            coverage_equal(&inc.coverage, &cold.coverage),
            "coverage diverged ({} vs {} branches)",
            inc.coverage.count(),
            cold.coverage.count()
        );
    }

    #[test]
    fn single_function_edit_takes_fast_path_and_matches_cold() {
        for opts in [
            CompileOptions::o0(),
            CompileOptions::o2(),
            CompileOptions::o3(),
        ] {
            for profile in [Profile::Gcc, Profile::Clang] {
                let c = Compiler::new(profile, opts.clone());
                let b = Baseline::build(&c, SEED).expect("seed must be cacheable");
                let mutant = SEED.replace("acc + helper(i, i + 1)", "acc * helper(i + 1, i)");
                assert_ne!(mutant, SEED);
                assert_equivalent(&c, &mutant, &b, true);
            }
        }
    }

    #[test]
    fn unchanged_source_takes_fast_path() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let b = Baseline::build(&c, SEED).expect("cacheable");
        // Whitespace/comment edits keep every chunk hash identical.
        let mutant = format!("{SEED}\n/* trailing comment */\n");
        assert_equivalent(&c, &mutant, &b, true);
    }

    #[test]
    fn non_function_edit_falls_back_cold() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let b = Baseline::build(&c, SEED).expect("cacheable");
        let mutant = SEED.replace("int g = 3;", "int g = 4;");
        assert_equivalent(&c, &mutant, &b, false);
    }

    #[test]
    fn signature_changing_edit_falls_back_cold() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let b = Baseline::build(&c, SEED).expect("cacheable");
        // Renaming a function changes what later declarations observe;
        // the fingerprint guard must force a cold compile.
        let mutant = SEED.replace(
            "static int helper(T a, T b) { return a * b + g; }",
            "static int helper2(T a, T b) { return a * b + g; }",
        );
        assert_equivalent(&c, &mutant, &b, false);
    }

    #[test]
    fn multi_decl_edit_falls_back_cold() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let b = Baseline::build(&c, SEED).expect("cacheable");
        let mutant = SEED
            .replace("return a * b + g;", "return a * b - g;")
            .replace(
                "acc = acc + helper(i, i + 1);",
                "acc = acc - helper(i, i + 1);",
            );
        assert_equivalent(&c, &mutant, &b, false);
    }

    #[test]
    fn rejected_mutant_falls_back_and_matches_cold() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let b = Baseline::build(&c, SEED).expect("cacheable");
        let mutant = SEED.replace("return acc;", "return undeclared;");
        assert_equivalent(&c, &mutant, &b, false);
    }

    #[test]
    fn crashing_mutant_reproduces_cold_crash_and_truncation() {
        // Seed: the Clang #63762 shape, defused by a return statement.
        let seed = r#"
void helper(int *x, int *y) { }
void foo(int x[64], int y[64]) {
    helper(x, y);
gt:
    ;
lt:
    ;
    return;
}
int main(void) { return 0; }
"#;
        let c = Compiler::new(Profile::Clang, CompileOptions::o2());
        assert!(c.compile(seed).outcome.is_success());
        let b = Baseline::build(&c, seed).expect("cacheable");
        // Removing the return restores the crashing shape with a single
        // function-definition edit.
        let mutant = seed.replace("    ;\n    return;\n}", "    ;\n}");
        assert_ne!(mutant, seed);
        let cold = c.compile(&mutant);
        let crash = cold.outcome.crash().expect("mutant must crash cold");
        assert_eq!(crash.bug_id, "clang-63762-label-codegen");
        let (inc, fast) = c.compile_incremental_traced(&mutant, &b);
        assert!(fast, "single-function edit should stay incremental");
        assert_eq!(inc.outcome, cold.outcome);
        assert!(coverage_equal(&inc.coverage, &cold.coverage));
        // The crash aborts the pipeline at the same stage either way, so
        // the per-stage truncation pattern matches cold exactly.
        for stage in Stage::ALL {
            assert_eq!(
                inc.coverage.count_stage(stage),
                cold.coverage.count_stage(stage),
                "{}",
                stage.label()
            );
        }
    }

    #[test]
    fn baseline_cache_counts_hits_and_cross_checks_cleanly() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = BaselineCache::with_cross_check(1);
        let mutants = [
            SEED.replace("return a * b + g;", "return a + b + g;"),
            SEED.replace("p.y = helper(2, 3);", "p.y = helper(3, 2);"),
            SEED.replace("int acc = 0;", "int acc = 1;"),
        ];
        for m in &mutants {
            let r = cache.compile(&c, SEED, m);
            let cold = c.compile(m);
            assert_eq!(r.outcome, cold.outcome);
            assert!(coverage_equal(&r.coverage, &cold.coverage));
        }
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.mismatches(), 0, "cross-check must agree");
        assert_eq!(cache.len(), 1);
        assert!(cache.hit_rate() > 0.99);
    }

    #[test]
    fn capacity_cap_evicts_with_second_chance() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        // Cap of 32 = one entry per shard; every shard holds at most one
        // seed, so a second seed landing in an occupied shard must evict.
        let cache = BaselineCache::new().with_capacity(32);
        let seeds: Vec<String> = (0..40)
            .map(|i| {
                format!("int f{i}(void) {{ return {i}; }}\nint main(void) {{ return f{i}(); }}\n")
            })
            .collect();
        for s in &seeds {
            let _ = cache.baseline(&c, s);
        }
        assert!(
            cache.len() <= 32,
            "cap of 32 exceeded: {} entries",
            cache.len()
        );
        assert!(cache.evictions() > 0, "40 seeds at cap 32 must evict");
        // Evicted seeds rebuild transparently and still compile correctly.
        let mutant = seeds[0].replace("return 0;", "return 1;");
        let r = cache.compile(&c, &seeds[0], &mutant);
        assert_eq!(r.outcome, c.compile(&mutant).outcome);
    }

    #[test]
    fn second_chance_prefers_evicting_cold_entries() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = BaselineCache::new().with_capacity(32);
        // Two seeds crafted to share a shard would need hash control;
        // instead verify the mechanism per-shard: fill one shard's cap,
        // touch the hot entry, then overflow the shard and confirm the
        // hot entry survives.
        let hot = "int hot(void) { return 1; }\nint main(void) { return hot(); }\n".to_string();
        let _ = cache.baseline(&c, &hot);
        // Touch it: its reference bit is now set.
        let _ = cache.baseline(&c, &hot);
        for i in 0..200 {
            let s =
                format!("int f{i}(void) {{ return {i}; }}\nint main(void) {{ return f{i}(); }}\n");
            let _ = cache.baseline(&c, &s);
        }
        assert!(cache.evictions() > 0);
        let before = cache.len();
        // Re-requesting the hot seed must not grow the cache if it
        // survived (it may have been evicted after enough pressure — but
        // with 200 fillers over 32 shards and one touch, a fresh build
        // would bump evictions; either way the cache stays at cap).
        let _ = cache.baseline(&c, &hot);
        assert!(cache.len() <= before.max(32));
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = BaselineCache::new().with_capacity(0);
        for i in 0..40 {
            let s =
                format!("int f{i}(void) {{ return {i}; }}\nint main(void) {{ return f{i}(); }}\n");
            let _ = cache.baseline(&c, &s);
        }
        assert_eq!(cache.len(), 40);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn uncacheable_seed_compiles_cold() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        // A seed that does not even parse has no baseline.
        let seed = "int main(void { return 0; }";
        assert!(Baseline::build(&c, seed).is_none());
        let cache = BaselineCache::new();
        let r = cache.compile(&c, seed, seed);
        let cold = c.compile(seed);
        assert_eq!(r.outcome, cold.outcome);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn options_mismatch_falls_back() {
        let c2 = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let c3 = Compiler::new(Profile::Gcc, CompileOptions::o3());
        let b = Baseline::build(&c2, SEED).expect("cacheable");
        let mutant = SEED.replace("return a * b + g;", "return a + b + g;");
        // A baseline built at -O2 must not serve a -O3 compile.
        assert_equivalent(&c3, &mutant, &b, false);
    }
}
