//! Mutant deduplication in front of [`Compiler::compile`].
//!
//! Mutation-based fuzzers regularly regenerate byte-identical programs — a
//! dud re-emits its parent, popular mutators collapse different parents
//! onto the same mutant — and the compiler is a pure function of
//! `(profile, options, source)`, so recompiling a duplicate can only
//! reproduce an outcome the campaign has already accounted for. A
//! [`DedupCache`] remembers each compiled source's [`Verdict`] so the
//! campaign engine skips the whole pipeline on a repeat.
//!
//! The cache keys entries by the same collision-resistant 128-bit content
//! hash ([`metamut_lang::chash::hash128`]) the query engine keys its slots
//! and the campaign threads through both: one hash per mutant, computed
//! once, used for dedup *and* the incremental-compile slot lookup. Keying
//! by hash instead of the full text drops the per-entry footprint from a
//! whole source to 16 bytes; at a 2^64 birthday bound a false hit is
//! beyond campaign scale. Entries are sharded across several locks so
//! parallel workers rarely contend. One cache serves one
//! `(profile, options)` configuration — campaigns create their own, which
//! makes that invariant structural.

use crate::{CompileResult, Compiler, Outcome};
use metamut_lang::chash::hash128;
use metamut_lang::fxhash::FxHashMap;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// What the campaign needs to remember about a compiled mutant: enough to
/// keep `MutantStats` and feedback accounting bit-for-bit identical when
/// the recompilation is skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Whether the front end accepted the program (the Table 5 numerator).
    pub compiled: bool,
}

impl Verdict {
    /// Derives the verdict recorded for a fresh compile result.
    pub fn of(result: &CompileResult) -> Self {
        Verdict {
            compiled: result.outcome.front_end_accepted(),
        }
    }
}

const SHARD_BITS: usize = 5;
const SHARDS: usize = 1 << SHARD_BITS;

/// A cache slot: either a published verdict or a reservation by the one
/// worker currently compiling this source.
#[derive(Debug, Clone, Copy)]
enum Slot {
    InFlight,
    Done(Verdict),
}

/// What [`DedupCache::claim`] resolved a source to.
#[derive(Debug, Clone, Copy)]
pub enum Claim {
    /// The program was compiled before (or by a concurrent worker whose
    /// publish we waited for); counted as a hit.
    Hit(Verdict),
    /// First sighting — the caller owns this source and must end the
    /// reservation with [`DedupCache::insert`] (after a compile) or
    /// [`DedupCache::abandon`] (if it never reaches the compiler).
    Owner,
}

/// A sharded content-hash → [`Verdict`] cache with hit/miss accounting.
#[derive(Debug)]
pub struct DedupCache {
    shards: Vec<Mutex<FxHashMap<u128, Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for DedupCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DedupCache {
    /// An empty cache.
    pub fn new() -> Self {
        DedupCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, hash: u128) -> &Mutex<FxHashMap<u128, Slot>> {
        &self.shards[(hash >> (128 - SHARD_BITS as u32)) as usize]
    }

    /// Looks up a source, recording a hit or miss. `Some` means the
    /// program was compiled before under this cache's configuration. An
    /// in-flight reservation counts as a miss (the result is not
    /// available yet); racy callers should prefer [`DedupCache::claim`].
    pub fn lookup(&self, src: &str) -> Option<Verdict> {
        self.lookup_hashed(hash128(src.as_bytes()))
    }

    /// [`DedupCache::lookup`] by a precomputed `hash128` of the source —
    /// for callers that already hashed the mutant (the campaign computes
    /// one content hash per candidate and reuses it for the query-engine
    /// slot lookup).
    pub fn lookup_hashed(&self, hash: u128) -> Option<Verdict> {
        let found = match self.shard(hash).lock().get(&hash) {
            Some(Slot::Done(v)) => Some(*v),
            Some(Slot::InFlight) | None => None,
        };
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Resolves a source to a hit or exclusive ownership, so exactly one
    /// worker ever compiles a given source. A `None` entry becomes an
    /// in-flight reservation owned by the caller; a concurrent claim of
    /// the same source waits (yielding) for the owner to [`insert`] its
    /// verdict — then counts an ordinary hit — or to [`abandon`] the
    /// reservation — then retries and may become the next owner. This
    /// makes the accounting exact under contention: every claim is
    /// exactly one hit or one miss, and every miss is exactly one compile
    /// or one abandonment.
    ///
    /// [`insert`]: DedupCache::insert
    /// [`abandon`]: DedupCache::abandon
    pub fn claim(&self, src: &str) -> Claim {
        self.claim_hashed(hash128(src.as_bytes()))
    }

    /// [`DedupCache::claim`] by a precomputed `hash128` of the source.
    pub fn claim_hashed(&self, hash: u128) -> Claim {
        loop {
            {
                let mut shard = self.shard(hash).lock();
                match shard.get(&hash) {
                    Some(Slot::Done(v)) => {
                        let v = *v;
                        drop(shard);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Claim::Hit(v);
                    }
                    Some(Slot::InFlight) => {} // wait for the owner below
                    None => {
                        shard.insert(hash, Slot::InFlight);
                        drop(shard);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        return Claim::Owner;
                    }
                }
            }
            std::thread::yield_now();
        }
    }

    /// Records a fresh compile's verdict, resolving the caller's
    /// [`DedupCache::claim`] reservation (if any).
    ///
    /// The campaign engine calls this only *after* merging the result's
    /// coverage and crash into the shared campaign state, so a concurrent
    /// worker that observes the cache entry can safely skip both.
    pub fn insert(&self, src: &str, verdict: Verdict) {
        self.insert_hashed(hash128(src.as_bytes()), verdict);
    }

    /// [`DedupCache::insert`] by a precomputed `hash128` of the source.
    pub fn insert_hashed(&self, hash: u128, verdict: Verdict) {
        self.shard(hash).lock().insert(hash, Slot::Done(verdict));
    }

    /// Releases a [`DedupCache::claim`] reservation without publishing a
    /// verdict — for sources that never reach the compiler (the campaign's
    /// pre-compile UB gate), so each occurrence is re-gated and accounted.
    pub fn abandon(&self, src: &str) {
        self.abandon_hashed(hash128(src.as_bytes()));
    }

    /// [`DedupCache::abandon`] by a precomputed `hash128` of the source.
    pub fn abandon_hashed(&self, hash: u128) {
        let mut shard = self.shard(hash).lock();
        if matches!(shard.get(&hash), Some(Slot::InFlight)) {
            shard.remove(&hash);
        }
    }

    /// Number of distinct sources with published verdicts (in-flight
    /// reservations are transient and not counted).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .filter(|v| matches!(v, Slot::Done(_)))
                    .count()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits as a fraction of all lookups (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

/// Outcome of a cache-fronted compile: either a fresh pipeline run or a
/// skipped duplicate.
#[derive(Debug)]
pub enum CachedCompile {
    /// First sighting: the full compile result (already recorded in the
    /// cache).
    Fresh(CompileResult),
    /// Duplicate source: recompilation skipped, prior verdict returned.
    Duplicate(Verdict),
}

impl Compiler {
    /// Compiles `src` with a [`DedupCache`] in front: byte-identical
    /// repeats skip the whole pipeline.
    ///
    /// The cache must be dedicated to this compiler's `(profile, options)`
    /// configuration.
    pub fn compile_cached(&self, src: &str, cache: &DedupCache) -> CachedCompile {
        if let Some(verdict) = cache.lookup(src) {
            return CachedCompile::Duplicate(verdict);
        }
        let result = self.compile(src);
        cache.insert(src, Verdict::of(&result));
        CachedCompile::Fresh(result)
    }
}

impl Outcome {
    /// Whether the front end accepted the program: a success, or a crash
    /// beyond the front end (which implies the front end let it through).
    pub fn front_end_accepted(&self) -> bool {
        match self {
            Outcome::Success { .. } => true,
            Outcome::Crash(c) => c.stage != crate::Stage::FrontEnd,
            Outcome::Rejected { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, Profile};

    #[test]
    fn lookup_miss_then_hit() {
        let cache = DedupCache::new();
        assert_eq!(cache.lookup("int x;"), None);
        cache.insert("int x;", Verdict { compiled: true });
        assert_eq!(cache.lookup("int x;"), Some(Verdict { compiled: true }));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn compile_cached_skips_duplicates() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = DedupCache::new();
        let src = "int main(void) { return 3; }";
        let CachedCompile::Fresh(first) = c.compile_cached(src, &cache) else {
            panic!("first compile must be fresh");
        };
        assert!(first.outcome.is_success());
        let CachedCompile::Duplicate(v) = c.compile_cached(src, &cache) else {
            panic!("second compile must dedup");
        };
        assert!(v.compiled);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn verdict_tracks_front_end_acceptance() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let ok = c.compile("int main(void) { return 0; }");
        assert!(Verdict::of(&ok).compiled);
        let bad = c.compile("int main(void) { return undeclared; }");
        assert!(!Verdict::of(&bad).compiled);
        // A mid-pipeline crash still counts as front-end accepted (Table 5):
        // the GCC vectorizer-hang bug fires in the optimizer at -O3.
        let opts = CompileOptions {
            opt_level: 3,
            flags: crate::OptFlags {
                no_tree_vrp: true,
                ..Default::default()
            },
        };
        let crash = Compiler::new(Profile::Gcc, opts).compile(
            "int r; int r_0;\n\
             void f(void) { int n = 0; while (--n) { r_0 += r; r += r; r += r; r += r; r += r; } }",
        );
        assert!(crash.outcome.crash().is_some());
        assert!(Verdict::of(&crash).compiled);
    }

    #[test]
    fn claim_gives_exclusive_ownership_and_exact_accounting() {
        let cache = DedupCache::new();
        // One owner per distinct source, everyone else a hit — even when
        // many threads claim the same sources at once.
        let owners: u64 = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let cache = &cache;
                    scope.spawn(move || {
                        let mut owned = 0u64;
                        for i in 0..100 {
                            let src = format!("int x{};", i % 10);
                            match cache.claim(&src) {
                                Claim::Owner => {
                                    owned += 1;
                                    cache.insert(&src, Verdict { compiled: true });
                                }
                                Claim::Hit(v) => assert!(v.compiled),
                            }
                        }
                        owned
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(owners, 10, "exactly one owner per distinct source");
        assert_eq!(cache.misses(), 10);
        assert_eq!(cache.hits(), 790);
        assert_eq!(cache.len(), 10);
    }

    #[test]
    fn abandoned_claim_reopens_the_source() {
        let cache = DedupCache::new();
        assert!(matches!(cache.claim("int x;"), Claim::Owner));
        cache.abandon("int x;");
        // The reservation is gone: the next claim owns it again, and the
        // abandoned slot never counted as a published verdict.
        assert_eq!(cache.len(), 0);
        assert!(matches!(cache.claim("int x;"), Claim::Owner));
        cache.insert("int x;", Verdict { compiled: false });
        assert!(matches!(cache.claim("int x;"), Claim::Hit(_)));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        let cache = DedupCache::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200 {
                        let src = format!("int x{};", i % 50);
                        if cache.lookup(&src).is_none() {
                            cache.insert(
                                &src,
                                Verdict {
                                    compiled: t % 2 == 0,
                                },
                            );
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.hits() + cache.misses(), 800);
    }
}
