//! Structural program features consumed by the bug oracle and by the
//! front-end coverage instrumentation.
//!
//! Raw-text features are computed even for inputs that fail to lex or parse
//! (byte-level fuzzers live there); AST features require a successful parse.

use metamut_lang::ast as c;
use metamut_lang::fxhash::FxHashSet;
use metamut_lang::visit::{self, Visitor};

/// Features computable from the raw bytes, before any parsing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawFeatures {
    /// Source length in bytes.
    pub source_len: usize,
    /// Maximum nesting depth of round parentheses.
    pub max_paren_depth: usize,
    /// Maximum nesting depth of braces.
    pub max_brace_depth: usize,
    /// Longest identifier-like run.
    pub max_ident_len: usize,
    /// Longest double-quoted run (approximate string-literal length).
    pub max_string_len: usize,
    /// Longest digit run (approximate literal magnitude).
    pub max_digit_run: usize,
}

/// Scans raw program text.
pub fn raw_features(src: &str) -> RawFeatures {
    let mut f = RawFeatures {
        source_len: src.len(),
        ..Default::default()
    };
    let bytes = src.as_bytes();
    let mut paren = 0usize;
    let mut brace = 0usize;
    let mut ident = 0usize;
    let mut digits = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'(' => {
                paren += 1;
                f.max_paren_depth = f.max_paren_depth.max(paren);
            }
            b')' => paren = paren.saturating_sub(1),
            b'{' => {
                brace += 1;
                f.max_brace_depth = f.max_brace_depth.max(brace);
            }
            b'}' => brace = brace.saturating_sub(1),
            b'"' => {
                // Scan to the closing quote.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                f.max_string_len = f.max_string_len.max(j.saturating_sub(start));
                i = j;
            }
            _ => {}
        }
        if b.is_ascii_alphanumeric() || b == b'_' {
            if b.is_ascii_digit() {
                digits += 1;
                f.max_digit_run = f.max_digit_run.max(digits);
            } else {
                digits = 0;
            }
            ident += 1;
            f.max_ident_len = f.max_ident_len.max(ident);
        } else {
            ident = 0;
            digits = 0;
        }
        i += 1;
    }
    f
}

/// Per-function structural features.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnFeatures {
    /// Function name.
    pub name: String,
    /// Whether the return type is written `void`.
    pub void_ret: bool,
    /// Number of parameters.
    pub params: usize,
    /// Number of `return` statements in the body.
    pub returns: usize,
    /// Number of user labels.
    pub labels: usize,
    /// Number of `goto`s.
    pub gotos: usize,
    /// Number of call expressions.
    pub calls: usize,
    /// Number of local declarators.
    pub locals: usize,
}

/// Features computed over a parsed AST (no sema needed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AstFeatures {
    /// Top-level declarations.
    pub decl_count: usize,
    /// Function definitions.
    pub fn_count: usize,
    /// Maximum `case`/`default` labels in one switch.
    pub switch_max_cases: usize,
    /// Maximum conditional-operator nesting depth.
    pub ternary_depth: usize,
    /// Maximum initializer-list nesting depth.
    pub init_list_depth: usize,
    /// Maximum call argument count.
    pub call_max_args: usize,
    /// Maximum parameter count over all functions.
    pub param_max: usize,
    /// Whether a compound literal contains an empty brace list
    /// (the Clang #69213 shape).
    pub compound_lit_empty_brace: bool,
    /// Whether `&` is applied to a `__real__`/`__imag__` of a cast
    /// (the GCC #111819 shape).
    pub addr_of_imag_cast: bool,
    /// Count of `__real__`/`__imag__` uses.
    pub imag_real_uses: usize,
    /// Whether a comma expression appears inside a call argument.
    pub comma_in_call_arg: bool,
    /// Whether a constant division by zero is written.
    pub const_div_by_zero: bool,
    /// Count of volatile-qualified declarators.
    pub volatile_decls: usize,
    /// Whether a compound assignment targets a volatile-qualified
    /// declarator name.
    pub volatile_compound_assign: bool,
    /// Maximum bit-field width literal.
    pub max_bitfield_width: i64,
    /// Maximum expression-tree depth.
    pub max_expr_depth: usize,
    /// Longest chain of stacked unary `-`/`~`/`!` operators.
    pub max_unary_chain: usize,
    /// Occurrences of arithmetic identities `(e + 0)` / `(e * 1)` /
    /// `(e - 0)` / `(0 + e)` with a literal operand.
    pub identity_arith_count: usize,
    /// Comma expressions in the program.
    pub comma_expr_count: usize,
    /// `if (0)`-guarded branches (dead code injected for the optimizer).
    pub dead_if0_count: usize,
    /// Maximum loop-nesting depth.
    pub max_loop_depth: usize,
    /// File-scope typedef declarations.
    pub typedef_count: usize,
    /// Declarations carrying the `static` storage class.
    pub static_count: usize,
    /// Per-function features.
    pub functions: Vec<FnFeatures>,
}

impl AstFeatures {
    /// The features of the named function, if present.
    pub fn function(&self, name: &str) -> Option<&FnFeatures> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// The contribution of one top-level declaration to [`AstFeatures`], plus
/// the volatile-name state that threads between declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct DeclFeatures {
    /// The declaration's own feature partial (`decl_count == 1`).
    pub features: AstFeatures,
    /// Volatile declarator names visible *after* this declaration: the
    /// seed set plus any names this declaration added.
    pub volatile_after: FxHashSet<String>,
}

/// Computes the feature contribution of a single top-level declaration,
/// seeded with the volatile declarator names visible before it.
///
/// Merging per-declaration partials with [`merge_decl_features`] reproduces
/// [`ast_features`] exactly: every depth counter in the visitor returns to
/// zero at declaration boundaries, and the only state that carries across
/// declarations — the volatile-name set — is threaded explicitly here.
pub fn decl_features(d: &c::ExternalDecl, volatile_before: &FxHashSet<String>) -> DeclFeatures {
    let mut typedef_count = 0;
    let mut static_count = 0;
    match d {
        c::ExternalDecl::Typedef(_) => typedef_count += 1,
        c::ExternalDecl::Function(f) if f.storage == c::Storage::Static => static_count += 1,
        c::ExternalDecl::Vars(g) => {
            static_count += g
                .vars
                .iter()
                .filter(|v| v.storage == c::Storage::Static)
                .count();
        }
        _ => {}
    }
    let mut v = FeatureVisitor {
        out: AstFeatures {
            decl_count: 1,
            typedef_count,
            static_count,
            ..Default::default()
        },
        ternary: 0,
        init_depth: 0,
        expr_depth: 0,
        unary_chain: 0,
        loop_depth: 0,
        cur_fn: None,
        volatile_names: volatile_before.clone(),
    };
    v.visit_external_decl(d);
    DeclFeatures {
        features: v.out,
        volatile_after: v.volatile_names,
    }
}

/// Merges per-declaration feature partials (in source order) into the
/// whole-unit [`AstFeatures`]. Counts sum, depths/widths max, shape flags
/// OR, and per-function features concatenate.
pub fn merge_decl_features(parts: &[AstFeatures]) -> AstFeatures {
    let mut out = AstFeatures::default();
    for p in parts {
        out.decl_count += p.decl_count;
        out.fn_count += p.fn_count;
        out.switch_max_cases = out.switch_max_cases.max(p.switch_max_cases);
        out.ternary_depth = out.ternary_depth.max(p.ternary_depth);
        out.init_list_depth = out.init_list_depth.max(p.init_list_depth);
        out.call_max_args = out.call_max_args.max(p.call_max_args);
        out.param_max = out.param_max.max(p.param_max);
        out.compound_lit_empty_brace |= p.compound_lit_empty_brace;
        out.addr_of_imag_cast |= p.addr_of_imag_cast;
        out.imag_real_uses += p.imag_real_uses;
        out.comma_in_call_arg |= p.comma_in_call_arg;
        out.const_div_by_zero |= p.const_div_by_zero;
        out.volatile_decls += p.volatile_decls;
        out.volatile_compound_assign |= p.volatile_compound_assign;
        out.max_bitfield_width = out.max_bitfield_width.max(p.max_bitfield_width);
        out.max_expr_depth = out.max_expr_depth.max(p.max_expr_depth);
        out.max_unary_chain = out.max_unary_chain.max(p.max_unary_chain);
        out.identity_arith_count += p.identity_arith_count;
        out.comma_expr_count += p.comma_expr_count;
        out.dead_if0_count += p.dead_if0_count;
        out.max_loop_depth = out.max_loop_depth.max(p.max_loop_depth);
        out.typedef_count += p.typedef_count;
        out.static_count += p.static_count;
        out.functions.extend(p.functions.iter().cloned());
    }
    out
}

/// Computes AST features.
pub fn ast_features(ast: &c::Ast) -> AstFeatures {
    let mut typedef_count = 0;
    let mut static_count = 0;
    for d in &ast.unit.decls {
        match d {
            c::ExternalDecl::Typedef(_) => typedef_count += 1,
            c::ExternalDecl::Function(f) if f.storage == c::Storage::Static => static_count += 1,
            c::ExternalDecl::Vars(g) => {
                static_count += g
                    .vars
                    .iter()
                    .filter(|v| v.storage == c::Storage::Static)
                    .count();
            }
            _ => {}
        }
    }
    let mut v = FeatureVisitor {
        out: AstFeatures {
            decl_count: ast.unit.decls.len(),
            typedef_count,
            static_count,
            ..Default::default()
        },
        ternary: 0,
        init_depth: 0,
        expr_depth: 0,
        unary_chain: 0,
        loop_depth: 0,
        cur_fn: None,
        volatile_names: Default::default(),
    };
    v.visit_unit(&ast.unit);
    v.out
}

struct FeatureVisitor {
    out: AstFeatures,
    ternary: usize,
    init_depth: usize,
    expr_depth: usize,
    unary_chain: usize,
    loop_depth: usize,
    cur_fn: Option<FnFeatures>,
    volatile_names: metamut_lang::fxhash::FxHashSet<String>,
}

impl Visitor for FeatureVisitor {
    fn visit_function(&mut self, f: &c::FunctionDef) {
        self.out.param_max = self.out.param_max.max(f.params.len());
        if f.is_definition() {
            self.out.fn_count += 1;
            let prev = self.cur_fn.replace(FnFeatures {
                name: f.name.clone(),
                void_ret: f.ret_ty.is_void(),
                params: f.params.len(),
                ..Default::default()
            });
            visit::walk_function(self, f);
            if let Some(cur) = self.cur_fn.take() {
                self.out.functions.push(cur);
            }
            self.cur_fn = prev;
        } else {
            visit::walk_function(self, f);
        }
    }

    fn visit_var_decl(&mut self, v: &c::VarDecl) {
        if let Some(cur) = &mut self.cur_fn {
            cur.locals += 1;
        }
        if let c::TySyn::Base { quals, .. } | c::TySyn::Pointer { quals, .. } = &v.ty {
            if quals.is_volatile {
                self.out.volatile_decls += 1;
                self.volatile_names.insert(v.name.clone());
            }
        }
        visit::walk_var_decl(self, v);
    }

    fn visit_field(&mut self, f: &c::FieldDecl) {
        if let Some(w) = &f.bit_width {
            if let c::ExprKind::IntLit { value, .. } = w.kind {
                self.out.max_bitfield_width = self.out.max_bitfield_width.max(value as i64);
            }
        }
        visit::walk_field(self, f);
    }

    fn visit_stmt(&mut self, s: &c::Stmt) {
        if matches!(
            s.kind,
            c::StmtKind::For { .. } | c::StmtKind::While { .. } | c::StmtKind::DoWhile { .. }
        ) {
            self.loop_depth += 1;
            self.out.max_loop_depth = self.out.max_loop_depth.max(self.loop_depth);
            visit::walk_stmt(self, s);
            self.loop_depth -= 1;
            return;
        }
        match &s.kind {
            c::StmtKind::If { cond, .. } => {
                if matches!(
                    cond.unparenthesized().kind,
                    c::ExprKind::IntLit { value: 0, .. }
                ) {
                    self.out.dead_if0_count += 1;
                }
            }
            c::StmtKind::Switch { body, .. } => {
                let labels = count_switch_labels(body);
                self.out.switch_max_cases = self.out.switch_max_cases.max(labels);
            }
            c::StmtKind::Return(_) => {
                if let Some(cur) = &mut self.cur_fn {
                    cur.returns += 1;
                }
            }
            c::StmtKind::Label { .. } => {
                if let Some(cur) = &mut self.cur_fn {
                    cur.labels += 1;
                }
            }
            c::StmtKind::Goto { .. } => {
                if let Some(cur) = &mut self.cur_fn {
                    cur.gotos += 1;
                }
            }
            _ => {}
        }
        visit::walk_stmt(self, s);
    }

    fn visit_expr(&mut self, e: &c::Expr) {
        self.expr_depth += 1;
        self.out.max_expr_depth = self.out.max_expr_depth.max(self.expr_depth);
        let in_unary = matches!(
            &e.kind,
            c::ExprKind::Unary {
                op: c::UnaryOp::Minus | c::UnaryOp::Not | c::UnaryOp::BitNot,
                ..
            }
        );
        if in_unary {
            self.unary_chain += 1;
            self.out.max_unary_chain = self.out.max_unary_chain.max(self.unary_chain);
        } else if !matches!(e.kind, c::ExprKind::Paren(_)) {
            self.unary_chain = 0;
        }
        self.visit_expr_inner(e);
        self.expr_depth -= 1;
        if in_unary {
            self.unary_chain = self.unary_chain.saturating_sub(1);
        }
    }

    fn visit_initializer(&mut self, i: &c::Initializer) {
        if let c::Initializer::List { .. } = i {
            self.init_depth += 1;
            self.out.init_list_depth = self.out.init_list_depth.max(self.init_depth);
            visit::walk_initializer(self, i);
            self.init_depth -= 1;
            return;
        }
        visit::walk_initializer(self, i);
    }
}

impl FeatureVisitor {
    fn visit_expr_inner(&mut self, e: &c::Expr) {
        match &e.kind {
            c::ExprKind::Comma { .. } => {
                self.out.comma_expr_count += 1;
            }
            c::ExprKind::Binary { op, lhs, rhs } => {
                let lit_zero = |x: &c::Expr| {
                    matches!(
                        x.unparenthesized().kind,
                        c::ExprKind::IntLit { value: 0, .. }
                    )
                };
                let lit_one = |x: &c::Expr| {
                    matches!(
                        x.unparenthesized().kind,
                        c::ExprKind::IntLit { value: 1, .. }
                    )
                };
                let identity = match op {
                    c::BinaryOp::Add => lit_zero(lhs) || lit_zero(rhs),
                    c::BinaryOp::Sub => lit_zero(rhs),
                    c::BinaryOp::Mul => lit_one(lhs) || lit_one(rhs),
                    _ => false,
                };
                if identity {
                    self.out.identity_arith_count += 1;
                }
            }
            _ => {}
        }
        match &e.kind {
            c::ExprKind::Cond { .. } => {
                self.ternary += 1;
                self.out.ternary_depth = self.out.ternary_depth.max(self.ternary);
                visit::walk_expr(self, e);
                self.ternary -= 1;
                return;
            }
            c::ExprKind::Call { args, .. } => {
                if let Some(cur) = &mut self.cur_fn {
                    cur.calls += 1;
                }
                self.out.call_max_args = self.out.call_max_args.max(args.len());
                if args
                    .iter()
                    .any(|a| matches!(a.unparenthesized().kind, c::ExprKind::Comma { .. }))
                {
                    self.out.comma_in_call_arg = true;
                }
            }
            c::ExprKind::CompoundLit { init, .. } => {
                if let c::Initializer::List { items, .. } = init.as_ref() {
                    if items.iter().any(
                        |i| matches!(i, c::Initializer::List { items, .. } if items.is_empty()),
                    ) {
                        self.out.compound_lit_empty_brace = true;
                    }
                }
            }
            c::ExprKind::Unary { op, operand } => {
                if matches!(op, c::UnaryOp::Real | c::UnaryOp::Imag) {
                    self.out.imag_real_uses += 1;
                }
                if *op == c::UnaryOp::AddrOf {
                    if let c::ExprKind::Unary {
                        op: c::UnaryOp::Real | c::UnaryOp::Imag,
                        operand: inner,
                    } = &operand.unparenthesized().kind
                    {
                        if contains_cast(inner) {
                            self.out.addr_of_imag_cast = true;
                        }
                    }
                }
            }
            c::ExprKind::Binary {
                op: c::BinaryOp::Div | c::BinaryOp::Rem,
                rhs,
                ..
            } => {
                if matches!(
                    rhs.unparenthesized().kind,
                    c::ExprKind::IntLit { value: 0, .. }
                ) {
                    self.out.const_div_by_zero = true;
                }
            }
            c::ExprKind::Assign {
                op: Some(_), lhs, ..
            } => {
                if let c::ExprKind::Ident(n) = &lhs.unparenthesized().kind {
                    if self.volatile_names.contains(n) {
                        self.out.volatile_compound_assign = true;
                    }
                }
            }
            _ => {}
        }
        visit::walk_expr(self, e);
    }
}

fn contains_cast(e: &c::Expr) -> bool {
    match &e.kind {
        c::ExprKind::Cast { .. } => true,
        c::ExprKind::Paren(inner) => contains_cast(inner),
        c::ExprKind::Unary { operand, .. } => contains_cast(operand),
        c::ExprKind::Binary { lhs, rhs, .. } => contains_cast(lhs) || contains_cast(rhs),
        _ => false,
    }
}

fn count_switch_labels(s: &c::Stmt) -> usize {
    struct C(usize);
    impl Visitor for C {
        fn visit_stmt(&mut self, s: &c::Stmt) {
            if matches!(
                s.kind,
                c::StmtKind::Case { .. } | c::StmtKind::Default { .. }
            ) {
                self.0 += 1;
            }
            visit::walk_stmt(self, s);
        }
    }
    let mut c = C(0);
    c.visit_stmt(s);
    c.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_lang::parse;

    #[test]
    fn raw_depths() {
        let f = raw_features("((((x)))) { { } } \"hello world\" abcdefghijklmnop 123456");
        assert_eq!(f.max_paren_depth, 4);
        assert_eq!(f.max_brace_depth, 2);
        assert_eq!(f.max_string_len, 11);
        assert_eq!(f.max_ident_len, 16);
        assert_eq!(f.max_digit_run, 6);
    }

    #[test]
    fn raw_handles_garbage() {
        // Must never panic on arbitrary bytes.
        let f = raw_features(")))}}}\"unterminated");
        assert_eq!(f.max_paren_depth, 0);
        assert!(f.max_string_len >= 12);
    }

    #[test]
    fn per_function_features() {
        let src = r#"
void walker(int x[4], int y[4]) {
    helper(x, y);
gt:
    ;
lt:
    ;
}
int normal(int a) { if (a) goto out; return a; out: return 0; }
"#;
        let ast = parse("t.c", src).unwrap();
        let f = ast_features(&ast);
        let walker = f.function("walker").unwrap();
        assert!(walker.void_ret);
        assert_eq!(walker.labels, 2);
        assert_eq!(walker.returns, 0);
        assert_eq!(walker.calls, 1);
        let normal = f.function("normal").unwrap();
        assert_eq!(normal.returns, 2);
        assert_eq!(normal.gotos, 1);
        assert_eq!(normal.labels, 1);
    }

    #[test]
    fn bug_shape_features() {
        let ast = parse(
            "t.c",
            "_Complex double x; long long c; int *bar(void) { return (int *)&__imag__ ((_Complex double *)((char *)&c + 16)); }",
        )
        .unwrap();
        let f = ast_features(&ast);
        assert!(f.addr_of_imag_cast, "{f:?}");
        assert!(f.imag_real_uses >= 1);

        let ast2 = parse("t.c", "foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }").unwrap();
        let f2 = ast_features(&ast2);
        assert!(f2.compound_lit_empty_brace, "{f2:?}");
    }

    #[test]
    fn per_decl_features_merge_to_whole_unit() {
        let src = r#"
typedef int T;
volatile T v;
static int s = 1;
struct B { unsigned w : 12; };
int helper(void) { return v + 0; }
int f(int a) {
    v += 2;
    int x = a / 0;
    g(1, (2, 3));
    while (a) { for (;;) break; }
    switch (a) { case 1: default: break; }
    return a ? -(-a) : helper();
}
"#;
        let ast = parse("t.c", src).unwrap();
        let full = ast_features(&ast);
        let mut volatile = FxHashSet::default();
        let mut parts = Vec::new();
        for d in &ast.unit.decls {
            let df = decl_features(d, &volatile);
            volatile = df.volatile_after;
            parts.push(df.features);
        }
        assert_eq!(merge_decl_features(&parts), full);
    }

    #[test]
    fn misc_features() {
        let src = r#"
volatile int v;
struct B { unsigned w : 30; };
int f(int a) {
    v += 2;
    int x = a / 0;
    g(1, (2, 3));
    switch (a) { case 1: case 2: case 3: default: break; }
    return a ? (a ? 1 : 2) : 3;
}
"#;
        let ast = parse("t.c", src).unwrap();
        let f = ast_features(&ast);
        assert!(f.volatile_compound_assign, "{f:?}");
        assert!(f.const_div_by_zero);
        assert!(f.comma_in_call_arg);
        assert_eq!(f.switch_max_cases, 4);
        assert_eq!(f.ternary_depth, 2);
        assert_eq!(f.max_bitfield_width, 30);
        assert_eq!(f.volatile_decls, 1);
    }
}
