//! The seeded bug oracle: the catalog of planted compiler defects, their
//! triggering predicates, and crash-signature bookkeeping.
//!
//! Each planted bug models a real class of miscompilation-adjacent defect at
//! a realistic pipeline depth, including reconstructions of the paper's
//! four case studies (GCC #111820, GCC #111819, Clang #63762, Clang #69213).
//! A crash is identified by its top two stack frames, exactly like the
//! paper's unique-crash criterion (§5.1).

use crate::coverage::Stage;
use crate::features::{AstFeatures, RawFeatures};
use crate::passes::{OptFlags, OptReport, TripCount};
use serde::Serialize;

/// What the planted defect does when triggered (Table 6's "consequences").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CrashKind {
    /// An internal consistency check fails (85% of the paper's bugs).
    AssertionFailure,
    /// A wild memory access (7%).
    SegmentationFault,
    /// The compiler never terminates (8%).
    Hang,
}

impl CrashKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            CrashKind::AssertionFailure => "Assertion Failure",
            CrashKind::SegmentationFault => "Segmentation Fault",
            CrashKind::Hang => "Hang",
        }
    }
}

/// Which simulated compiler a bug lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Profile {
    /// The GCC-like build.
    Gcc,
    /// The Clang-like build.
    Clang,
}

impl Profile {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Gcc => "gcc-sim",
            Profile::Clang => "clang-sim",
        }
    }
}

/// A crash produced by a triggered bug.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct CrashInfo {
    /// Stable identifier of the planted bug.
    pub bug_id: &'static str,
    /// Consequence class.
    pub kind: CrashKind,
    /// The pipeline stage (compiler component) that crashed.
    pub stage: Stage,
    /// Top two stack frames — the unique-crash signature.
    pub frames: [&'static str; 2],
}

impl CrashInfo {
    /// The unique-crash signature (top two frames), as the paper dedups.
    pub fn signature(&self) -> u64 {
        crate::coverage::feature_hash_str(&format!("{}::{}", self.frames[0], self.frames[1]))
    }
}

impl Serialize for Stage {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.label())
    }
}

/// Everything a bug predicate may look at.
#[derive(Debug, Clone, Copy)]
pub struct BugCtx<'a> {
    /// Raw-text features (always available).
    pub raw: &'a RawFeatures,
    /// AST features (once parsing succeeded).
    pub ast: Option<&'a AstFeatures>,
    /// Optimizer report (once the middle end ran).
    pub opt: Option<&'a OptReport>,
    /// Back-end stats: (spill count, peak pressure).
    pub asm: Option<(usize, usize)>,
    /// `-O` level.
    pub opt_level: u8,
    /// Extra flags.
    pub flags: &'a OptFlags,
}

/// A planted bug.
#[derive(Debug, Clone, Copy)]
pub struct Bug {
    /// Stable id (also the key used in reports).
    pub id: &'static str,
    /// Which simulated compiler carries it.
    pub profile: Profile,
    /// Pipeline stage where it fires.
    pub stage: Stage,
    /// Consequence when it fires.
    pub kind: CrashKind,
    /// Crash signature frames.
    pub frames: [&'static str; 2],
    /// The trigger predicate.
    pub predicate: fn(&BugCtx<'_>) -> bool,
}

impl Bug {
    /// The crash this bug produces.
    pub fn crash(&self) -> CrashInfo {
        CrashInfo {
            bug_id: self.id,
            kind: self.kind,
            stage: self.stage,
            frames: self.frames,
        }
    }
}

macro_rules! bug {
    ($id:literal, $profile:ident, $stage:ident, $kind:ident, [$f0:literal, $f1:literal], $pred:expr) => {
        Bug {
            id: $id,
            profile: Profile::$profile,
            stage: Stage::$stage,
            kind: CrashKind::$kind,
            frames: [$f0, $f1],
            predicate: $pred,
        }
    };
}

/// The full catalog of planted bugs across both profiles.
pub fn catalog() -> &'static [Bug] {
    &CATALOG
}

static CATALOG: [Bug; 41] = [
    // ------------------------------------------------------------------
    // Case-study reconstructions
    // ------------------------------------------------------------------
    // GCC #111820: the loop vectorizer hangs on a loop counting down from
    // zero when value-range pruning is disabled (-O3 -fno-tree-vrp).
    bug!(
        "gcc-111820-vectorizer-hang",
        Gcc,
        Opt,
        Hang,
        ["vect_analyze_loop", "number_of_iterations_exit"],
        |cx| {
            cx.opt_level >= 3
                && cx.flags.no_tree_vrp
                && cx.opt.is_some_and(|o| {
                    o.loops.iter().any(|l| {
                        l.descending
                            && l.starts_at_zero
                            && l.trip == TripCount::Infinite
                            && l.vectorized
                    })
                })
        }
    ),
    // GCC #111819: fold_offsetof assertion on `&__imag (cast)`.
    bug!(
        "gcc-111819-fold-offsetof",
        Gcc,
        IrGen,
        AssertionFailure,
        ["fold_offsetof", "build_unary_op"],
        |cx| cx.ast.is_some_and(|a| a.addr_of_imag_cast)
    ),
    // §5.2 strlen case: self-referential sprintf with the return-value
    // optimization active trips verify_range.
    bug!(
        "gcc-strlen-verify-range",
        Gcc,
        Opt,
        AssertionFailure,
        ["verify_range", "handle_printf_call"],
        |cx| {
            cx.opt_level >= 2
                && cx
                    .opt
                    .is_some_and(|o| o.strlen_reductions.iter().any(|(_, s)| *s))
        }
    ),
    // Clang #63762: a void function whose body is a call followed only by
    // labels, with every return removed (the Ret2V mutant of Figure 5).
    bug!(
        "clang-63762-label-codegen",
        Clang,
        BackEnd,
        AssertionFailure,
        [
            "clang::CodeGen::EmitBranchThroughCleanup",
            "llvm::BasicBlock::eraseFromParent"
        ],
        |cx| {
            cx.ast.is_some_and(|a| {
                a.functions
                    .iter()
                    .any(|f| f.void_ret && f.labels >= 2 && f.returns == 0 && f.calls >= 1)
            })
        }
    ),
    // Clang #69213: scalar compound literal with an empty brace member.
    bug!(
        "clang-69213-scalar-brace",
        Clang,
        FrontEnd,
        SegmentationFault,
        [
            "InitListChecker::CheckScalarType",
            "clang::Sema::ActOnInitList"
        ],
        |cx| cx.ast.is_some_and(|a| a.compound_lit_empty_brace)
    ),
    // ------------------------------------------------------------------
    // Front-end bugs (several reachable from raw bytes, for byte fuzzers)
    // ------------------------------------------------------------------
    bug!(
        "gcc-front-paren-stack",
        Gcc,
        FrontEnd,
        SegmentationFault,
        ["c_parser_expression", "c_parser_postfix_expression"],
        |cx| cx.raw.max_paren_depth > 26
    ),
    bug!(
        "clang-front-paren-stack",
        Clang,
        FrontEnd,
        SegmentationFault,
        [
            "clang::Parser::ParseParenExpression",
            "clang::Parser::ParseCastExpression"
        ],
        |cx| cx.raw.max_paren_depth > 20
    ),
    bug!(
        "gcc-front-ident-overflow",
        Gcc,
        FrontEnd,
        AssertionFailure,
        ["ht_lookup_with_hash", "cpp_interpret_string"],
        |cx| cx.raw.max_ident_len > 48
    ),
    bug!(
        "clang-front-string-overflow",
        Clang,
        FrontEnd,
        AssertionFailure,
        [
            "clang::StringLiteralParser::init",
            "clang::Lexer::LexStringLiteral"
        ],
        |cx| cx.raw.max_string_len > 64
    ),
    bug!(
        "clang-front-literal-width",
        Clang,
        FrontEnd,
        AssertionFailure,
        [
            "llvm::APInt::APInt",
            "clang::NumericLiteralParser::GetIntegerValue"
        ],
        |cx| cx.raw.max_digit_run > 19
    ),
    bug!(
        "gcc-front-brace-depth",
        Gcc,
        FrontEnd,
        SegmentationFault,
        [
            "c_parser_compound_statement",
            "c_parser_statement_after_labels"
        ],
        |cx| cx.raw.max_brace_depth > 14
    ),
    bug!(
        "gcc-front-switch-flood",
        Gcc,
        FrontEnd,
        AssertionFailure,
        ["c_do_switch_warnings", "splay_tree_insert"],
        |cx| cx.ast.is_some_and(|a| a.switch_max_cases > 12)
    ),
    bug!(
        "clang-front-decl-flood",
        Clang,
        FrontEnd,
        Hang,
        ["clang::DeclContext::addDecl", "clang::ASTContext::Allocate"],
        |cx| cx.ast.is_some_and(|a| a.decl_count > 48)
    ),
    bug!(
        "clang-front-bitfield-width",
        Clang,
        FrontEnd,
        AssertionFailure,
        [
            "clang::Sema::VerifyBitField",
            "clang::ASTContext::getTypeSize"
        ],
        |cx| cx.ast.is_some_and(|a| a.max_bitfield_width >= 31)
    ),
    // ------------------------------------------------------------------
    // IR-generation bugs
    // ------------------------------------------------------------------
    bug!(
        "gcc-irgen-ternary-nest",
        Gcc,
        IrGen,
        AssertionFailure,
        ["gimplify_cond_expr", "gimplify_expr"],
        |cx| cx.ast.is_some_and(|a| a.ternary_depth >= 5)
    ),
    bug!(
        "clang-irgen-ternary-nest",
        Clang,
        IrGen,
        AssertionFailure,
        [
            "clang::CodeGen::EmitConditionalOperator",
            "clang::CodeGen::EmitScalarExpr"
        ],
        |cx| cx.ast.is_some_and(|a| a.ternary_depth >= 6)
    ),
    bug!(
        "gcc-irgen-goto-web",
        Gcc,
        IrGen,
        AssertionFailure,
        ["make_edges", "find_taken_edge"],
        |cx| cx
            .ast
            .is_some_and(|a| a.functions.iter().any(|f| f.gotos >= 3 && f.labels >= 3))
    ),
    bug!(
        "clang-irgen-comma-arg",
        Clang,
        IrGen,
        AssertionFailure,
        [
            "clang::CodeGen::EmitCallArgs",
            "clang::CodeGen::EmitAnyExpr"
        ],
        |cx| cx
            .ast
            .is_some_and(|a| a.comma_in_call_arg && a.call_max_args >= 2)
    ),
    bug!(
        "clang-irgen-volatile-compound",
        Clang,
        IrGen,
        AssertionFailure,
        [
            "clang::CodeGen::EmitCompoundAssignLValue",
            "clang::CodeGen::EmitLoadOfLValue"
        ],
        |cx| cx.ast.is_some_and(|a| a.volatile_compound_assign)
    ),
    bug!(
        "gcc-irgen-imag-pair",
        Gcc,
        IrGen,
        SegmentationFault,
        ["gimplify_modify_expr", "get_inner_reference"],
        |cx| cx.ast.is_some_and(|a| a.imag_real_uses >= 2)
    ),
    bug!(
        "clang-irgen-init-depth",
        Clang,
        IrGen,
        AssertionFailure,
        ["InitListExpr::setInit", "clang::CodeGen::EmitAggExpr"],
        |cx| cx.ast.is_some_and(|a| a.init_list_depth >= 3)
    ),
    bug!(
        "gcc-irgen-arg-flood",
        Gcc,
        IrGen,
        AssertionFailure,
        ["gimplify_call_expr", "get_formal_tmp_var"],
        |cx| cx.ast.is_some_and(|a| a.call_max_args >= 7)
    ),
    // ------------------------------------------------------------------
    // Optimizer bugs
    // ------------------------------------------------------------------
    bug!(
        "gcc-opt-divzero-fold",
        Gcc,
        Opt,
        SegmentationFault,
        ["fold_binary_loc", "const_binop"],
        |cx| cx.opt_level >= 1 && cx.ast.is_some_and(|a| a.const_div_by_zero)
    ),
    bug!(
        "clang-opt-unroll-infinite",
        Clang,
        Opt,
        Hang,
        ["llvm::UnrollLoop", "llvm::LoopInfo::getLoopFor"],
        |cx| {
            cx.opt_level >= 3
                && cx.flags.unroll_loops
                && cx
                    .opt
                    .is_some_and(|o| o.loops.iter().any(|l| l.trip == TripCount::Infinite))
        }
    ),
    bug!(
        "gcc-opt-inline-cascade",
        Gcc,
        Opt,
        AssertionFailure,
        ["inline_small_functions", "estimate_edge_growth"],
        |cx| cx.opt_level >= 2 && cx.opt.is_some_and(|o| o.inlined >= 4)
    ),
    bug!(
        "clang-opt-empty-loop",
        Clang,
        Opt,
        Hang,
        ["llvm::LoopDeletion", "llvm::SCEV::isKnownPredicate"],
        |cx| {
            cx.opt_level >= 2
                && cx
                    .opt
                    .is_some_and(|o| o.loops.iter().any(|l| l.stores == 0 && l.body_blocks <= 3))
        }
    ),
    bug!(
        "clang-opt-dce-volatile",
        Clang,
        Opt,
        AssertionFailure,
        ["llvm::isInstructionTriviallyDead", "llvm::Value::use_empty"],
        |cx| cx.opt_level >= 1 && cx.ast.is_some_and(|a| a.volatile_decls >= 3)
    ),
    // ------------------------------------------------------------------
    // Back-end bugs (the rarest: need valid, optimizer-surviving code)
    // ------------------------------------------------------------------
    bug!(
        "gcc-back-spill-storm",
        Gcc,
        BackEnd,
        AssertionFailure,
        ["lra_assign", "assign_by_spills"],
        |cx| cx.asm.is_some_and(|(spills, _)| spills > 10)
    ),
    bug!(
        "gcc-back-jumptable",
        Gcc,
        BackEnd,
        SegmentationFault,
        ["expand_case", "emit_jump_table_data"],
        |cx| cx.asm.is_some() && cx.ast.is_some_and(|a| a.switch_max_cases >= 10)
    ),
    bug!(
        "clang-back-param-regs",
        Clang,
        BackEnd,
        AssertionFailure,
        [
            "llvm::CCState::AnalyzeFormalArguments",
            "llvm::TargetLowering::LowerCall"
        ],
        |cx| cx.asm.is_some() && cx.ast.is_some_and(|a| a.param_max >= 6)
    ),
    bug!(
        "clang-back-pressure",
        Clang,
        BackEnd,
        Hang,
        [
            "llvm::RegAllocGreedy::selectOrSplit",
            "llvm::LiveIntervals::computeLiveInRegUnits"
        ],
        |cx| cx
            .asm
            .is_some_and(|(_, pressure)| pressure >= crate::backend::NUM_REGS + 4)
    ),
    // ------------------------------------------------------------------
    // Deep-pipeline bugs reachable by stacked semantic mutations
    // ------------------------------------------------------------------
    bug!(
        "gcc-opt-neg-chain",
        Gcc,
        Opt,
        AssertionFailure,
        ["fold_unary_loc", "negate_expr_p"],
        |cx| cx.opt_level >= 1 && cx.ast.is_some_and(|a| a.max_unary_chain >= 4)
    ),
    bug!(
        "gcc-irgen-deep-expr",
        Gcc,
        IrGen,
        SegmentationFault,
        ["gimplify_expr", "mostly_copy_tree_r"],
        |cx| cx.ast.is_some_and(|a| a.max_expr_depth >= 16)
    ),
    bug!(
        "gcc-back-return-web",
        Gcc,
        BackEnd,
        AssertionFailure,
        [
            "thread_prologue_and_epilogue_insns",
            "emit_return_into_block"
        ],
        |cx| cx.asm.is_some()
            && cx
                .ast
                .is_some_and(|a| a.functions.iter().any(|f| f.returns >= 8))
    ),
    bug!(
        "gcc-opt-dead-branch",
        Gcc,
        Opt,
        AssertionFailure,
        ["remove_unreachable_nodes", "cgraph_edge::remove"],
        |cx| cx.opt_level >= 2 && cx.ast.is_some_and(|a| a.dead_if0_count >= 2)
    ),
    bug!(
        "clang-opt-identity-chain",
        Clang,
        Opt,
        AssertionFailure,
        [
            "llvm::InstCombiner::visitAdd",
            "llvm::SimplifyAssociativeOrCommutative"
        ],
        |cx| cx.opt_level >= 1 && cx.ast.is_some_and(|a| a.identity_arith_count >= 3)
    ),
    bug!(
        "clang-irgen-comma-chain",
        Clang,
        IrGen,
        AssertionFailure,
        [
            "clang::CodeGen::EmitIgnoredExpr",
            "clang::CodeGen::EmitAnyExprToTemp"
        ],
        |cx| cx.ast.is_some_and(|a| a.comma_expr_count >= 3)
    ),
    bug!(
        "clang-back-goto-dense",
        Clang,
        BackEnd,
        SegmentationFault,
        [
            "llvm::MachineBasicBlock::updateTerminator",
            "llvm::BranchFolder::OptimizeBlock"
        ],
        |cx| {
            cx.asm.is_some()
                && cx
                    .ast
                    .is_some_and(|a| a.functions.iter().any(|f| f.labels >= 3 && f.gotos >= 1))
        }
    ),
    bug!(
        "clang-front-typedef-chain",
        Clang,
        FrontEnd,
        AssertionFailure,
        [
            "clang::Sema::ActOnTypedefDeclarator",
            "clang::ASTContext::getTypedefType"
        ],
        |cx| cx.ast.is_some_and(|a| a.typedef_count >= 3)
    ),
    bug!(
        "gcc-front-static-flood",
        Gcc,
        FrontEnd,
        AssertionFailure,
        ["c_parser_declaration_or_fndef", "pushdecl"],
        |cx| cx.ast.is_some_and(|a| a.static_count >= 6)
    ),
    bug!(
        "clang-opt-loop-nest",
        Clang,
        Opt,
        AssertionFailure,
        ["llvm::LoopSimplify", "llvm::formDedicatedExitBlocks"],
        |cx| cx.opt_level >= 2 && cx.ast.is_some_and(|a| a.max_loop_depth >= 3)
    ),
];

/// Checks all bugs of `profile` whose stage is `stage`; returns the first
/// triggered crash (compilation aborts at the first internal error, like a
/// real compiler run).
pub fn check_stage(profile: Profile, stage: Stage, cx: &BugCtx<'_>) -> Option<CrashInfo> {
    CATALOG
        .iter()
        .filter(|b| b.profile == profile && b.stage == stage)
        .find(|b| (b.predicate)(cx))
        .map(|b| b.crash())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_ctx<'a>(raw: &'a RawFeatures, flags: &'a OptFlags) -> BugCtx<'a> {
        BugCtx {
            raw,
            ast: None,
            opt: None,
            asm: None,
            opt_level: 2,
            flags,
        }
    }

    #[test]
    fn catalog_is_well_formed() {
        let mut ids = std::collections::HashSet::new();
        let mut sigs = std::collections::HashSet::new();
        for b in catalog() {
            assert!(ids.insert(b.id), "duplicate id {}", b.id);
            assert!(
                sigs.insert(b.crash().signature()),
                "duplicate signature {}",
                b.id
            );
        }
        // Both profiles, all stages populated.
        for p in [Profile::Gcc, Profile::Clang] {
            for s in Stage::ALL {
                assert!(
                    catalog().iter().any(|b| b.profile == p && b.stage == s),
                    "no bug for {p:?}/{s:?}"
                );
            }
        }
        // Consequence mix: assertions dominate (Table 6: 85%).
        let assertions = catalog()
            .iter()
            .filter(|b| b.kind == CrashKind::AssertionFailure)
            .count();
        assert!(assertions * 2 > catalog().len());
    }

    #[test]
    fn raw_bug_triggers() {
        let mut raw = RawFeatures::default();
        let flags = OptFlags::default();
        assert!(check_stage(Profile::Gcc, Stage::FrontEnd, &empty_ctx(&raw, &flags)).is_none());
        raw.max_paren_depth = 30;
        let crash = check_stage(Profile::Gcc, Stage::FrontEnd, &empty_ctx(&raw, &flags)).unwrap();
        assert_eq!(crash.bug_id, "gcc-front-paren-stack");
        assert_eq!(crash.kind, CrashKind::SegmentationFault);
        // Clang's threshold is lower.
        raw.max_paren_depth = 24;
        assert!(check_stage(Profile::Gcc, Stage::FrontEnd, &empty_ctx(&raw, &flags)).is_none());
        assert!(check_stage(Profile::Clang, Stage::FrontEnd, &empty_ctx(&raw, &flags)).is_some());
    }

    #[test]
    fn profile_separation() {
        // An AST with the Clang #69213 shape fires only on Clang.
        let raw = RawFeatures::default();
        let ast = AstFeatures {
            compound_lit_empty_brace: true,
            ..Default::default()
        };
        let flags = OptFlags::default();
        let cx = BugCtx {
            raw: &raw,
            ast: Some(&ast),
            opt: None,
            asm: None,
            opt_level: 0,
            flags: &flags,
        };
        assert!(check_stage(Profile::Clang, Stage::FrontEnd, &cx).is_some());
        assert!(check_stage(Profile::Gcc, Stage::FrontEnd, &cx).is_none());
    }

    #[test]
    fn signatures_dedupe() {
        let a = CATALOG[0].crash();
        let b = CATALOG[0].crash();
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), CATALOG[1].crash().signature());
    }
}
