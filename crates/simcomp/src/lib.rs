//! # metamut-simcomp
//!
//! The instrumented compiler under test: a four-stage pipeline (front end →
//! IR generation → optimizer → back end) over the `metamut-lang` C subset,
//! with AFL-style branch-coverage instrumentation ([`coverage`]) and a
//! seeded [`bugs`] oracle that plants assertion failures, segfaults and
//! hangs at realistic pipeline depths.
//!
//! Two build profiles exist — a GCC-like and a Clang-like compiler — with
//! distinct planted-bug sets, mirroring the paper's two fuzzing targets.
//!
//! ```
//! use metamut_simcomp::{Compiler, CompileOptions, Profile, Outcome};
//!
//! let gcc = Compiler::new(Profile::Gcc, CompileOptions::o2());
//! let result = gcc.compile("int main(void) { return 0; }");
//! assert!(matches!(result.outcome, Outcome::Success { .. }));
//! assert!(result.coverage.count() > 0);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod bugs;
pub mod coverage;
pub mod dedup;
pub mod features;
pub mod incremental;
pub mod ir;
pub mod lower;
pub mod passes;
pub mod query;

pub use bugs::{CrashInfo, CrashKind, Profile};
pub use coverage::{AtomicCoverage, CoverageMap, SharedCoverage, Stage};
pub use dedup::{CachedCompile, Claim, DedupCache, Verdict};
pub use incremental::{coverage_equal, Baseline, BaselineCache};
pub use metamut_query::QueryDb;
pub use passes::OptFlags;
pub use query::QueryCache;

use coverage::{feature_hash, feature_hash_display, feature_hash_str};

/// Command-line-equivalent options for one compilation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileOptions {
    /// `-O` level (0–3).
    pub opt_level: u8,
    /// Extra optimization flags.
    pub flags: OptFlags,
}

impl CompileOptions {
    /// `-O0`
    pub fn o0() -> Self {
        CompileOptions::default()
    }

    /// `-O2` (the paper's RQ1 configuration).
    pub fn o2() -> Self {
        CompileOptions {
            opt_level: 2,
            flags: OptFlags {
                strict_aliasing: true,
                ..Default::default()
            },
        }
    }

    /// `-O3`
    pub fn o3() -> Self {
        CompileOptions {
            opt_level: 3,
            flags: OptFlags {
                strict_aliasing: true,
                ..Default::default()
            },
        }
    }

    /// A human-readable flag string for reports.
    pub fn render(&self) -> String {
        let mut s = format!("-O{}", self.opt_level);
        if self.flags.no_tree_vrp {
            s.push_str(" -fno-tree-vrp");
        }
        if self.flags.unroll_loops {
            s.push_str(" -funroll-loops");
        }
        if self.flags.strict_aliasing {
            s.push_str(" -fstrict-aliasing");
        }
        s
    }
}

/// The result classification of one compiler invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Compilation succeeded.
    Success {
        /// Number of emitted virtual instructions.
        asm_len: usize,
        /// Spills inserted by register allocation.
        spills: usize,
    },
    /// The input was rejected by the front end (it "does not compile").
    Rejected {
        /// Number of diagnostics.
        diagnostics: usize,
        /// The first error message.
        first_error: String,
    },
    /// The compiler itself crashed or hung: a bug was triggered.
    Crash(CrashInfo),
}

impl Outcome {
    /// Whether the input compiled cleanly.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success { .. })
    }

    /// The crash, if one occurred.
    pub fn crash(&self) -> Option<&CrashInfo> {
        match self {
            Outcome::Crash(c) => Some(c),
            _ => None,
        }
    }
}

/// The full result of one compilation: outcome plus coverage observations.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// What happened.
    pub outcome: Outcome,
    /// Branch coverage observed during this run.
    pub coverage: CoverageMap,
}

/// An instrumented compiler instance.
#[derive(Debug, Clone)]
pub struct Compiler {
    profile: Profile,
    options: CompileOptions,
}

impl Compiler {
    /// Creates a compiler with the given profile and options.
    pub fn new(profile: Profile, options: CompileOptions) -> Self {
        Compiler { profile, options }
    }

    /// The build profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// The active options.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Replaces the options (used by the macro fuzzer's flag sampling).
    pub fn with_options(&self, options: CompileOptions) -> Compiler {
        Compiler {
            profile: self.profile,
            options,
        }
    }

    /// Compiles `src`, returning the outcome and the coverage it produced.
    ///
    /// Crashes abort the pipeline at the stage whose planted bug fired, so
    /// later stages contribute no coverage — mirroring a real compiler
    /// process dying mid-run.
    ///
    /// With telemetry enabled, each completed stage records its wall time
    /// into the `stage_ms{<Stage>}` histogram (and [`passes::optimize`]
    /// times every individual pass into `pass_ms{<pass>}`).
    pub fn compile(&self, src: &str) -> CompileResult {
        let mut cov = CoverageMap::new();
        let opts = &self.options;
        let t_front = stage_timer();

        // ---------------- Front end ----------------
        let raw = features::raw_features(src);
        // Raw lexical coverage: buckets of structural statistics.
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[1, raw.max_paren_depth.min(64) as u64]),
        );
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[2, raw.max_brace_depth.min(64) as u64]),
        );
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[3, (raw.source_len / 64).min(128) as u64]),
        );
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[4, raw.max_ident_len.min(128) as u64]),
        );
        cov.record(
            Stage::FrontEnd,
            feature_hash(&[5, raw.max_string_len.min(512) as u64 / 8]),
        );

        // Lexer-level coverage: every distinct adjacent token-kind pair is a
        // scanner/parser dispatch edge. Byte-level fuzzers live here.
        match metamut_lang::lexer::lex(src) {
            Ok(tokens) => {
                // The scanner has finitely many dispatch edges: bucket the
                // token-pair space so byte-level fuzzers saturate it, like
                // a real lexer's branch set.
                for w in tokens.windows(2) {
                    let pair = (w[0].kind as u64) * 96 + w[1].kind as u64;
                    cov.record(Stage::FrontEnd, feature_hash(&[20, pair % 331]));
                }
                cov.record(
                    Stage::FrontEnd,
                    feature_hash(&[22, (tokens.len() / 16).min(64) as u64]),
                );
            }
            Err(diags) => {
                if let Some(first) = diags.iter().next() {
                    cov.record(
                        Stage::FrontEnd,
                        feature_hash(&[25, feature_hash_str(&first.message) % 96]),
                    );
                    cov.record(
                        Stage::FrontEnd,
                        feature_hash(&[21, u64::from(first.span.lo) % 31]),
                    );
                }
            }
        }

        let parsed = metamut_lang::parse("<fuzz>", src);
        let ast = match parsed {
            Ok(ast) => {
                // Token/AST shape coverage.
                for d in &ast.unit.decls {
                    cov.record(Stage::FrontEnd, feature_hash(&[6, decl_code(d)]));
                }
                Some(ast)
            }
            Err(diags) => {
                // Error-recovery paths are front-end coverage too: the
                // message spells out the expected/found token pair and the
                // position class, like a parser's distinct error productions.
                if let Some(first) = diags.iter().next() {
                    // Parse errors land on one of finitely many error
                    // productions (message class x coarse position class).
                    let msg_class = feature_hash_str(&first.message) % 160;
                    cov.record(Stage::FrontEnd, feature_hash(&[24, msg_class]));
                }
                cov.record(
                    Stage::FrontEnd,
                    feature_hash(&[7, diags.len().min(32) as u64]),
                );
                None
            }
        };
        let ast_feats = ast.as_ref().map(features::ast_features);

        // Front-end bug check runs on whatever the front end saw, even when
        // the input is ultimately rejected (error recovery crashes!).
        let flags = &opts.flags;
        let cx = bugs::BugCtx {
            raw: &raw,
            ast: ast_feats.as_ref(),
            opt: None,
            asm: None,
            opt_level: opts.opt_level,
            flags,
        };
        if let Some(crash) = bugs::check_stage(self.profile, Stage::FrontEnd, &cx) {
            return CompileResult {
                outcome: Outcome::Crash(crash),
                coverage: cov,
            };
        }

        let Some(ast) = ast else {
            return CompileResult {
                outcome: Outcome::Rejected {
                    diagnostics: 1,
                    first_error: "parse error".into(),
                },
                coverage: cov,
            };
        };

        let sema = match metamut_lang::analyze(&ast) {
            Ok(s) => {
                cov.record(
                    Stage::FrontEnd,
                    feature_hash(&[8, s.records.len().min(32) as u64]),
                );
                cov.record(
                    Stage::FrontEnd,
                    feature_hash(&[9, s.functions.len().min(64) as u64]),
                );
                // Type-diversity coverage.
                for qt in s.expr_types.values() {
                    cov.record(
                        Stage::FrontEnd,
                        feature_hash_display(format_args!("ty:{qt}")),
                    );
                }
                s
            }
            Err(diags) => {
                if let Some(first) = diags.first_error() {
                    cov.record(Stage::FrontEnd, feature_hash_str(&first.message));
                }
                cov.record(
                    Stage::FrontEnd,
                    feature_hash(&[10, diags.len().min(32) as u64]),
                );
                return CompileResult {
                    outcome: Outcome::Rejected {
                        diagnostics: diags.len(),
                        first_error: diags
                            .first_error()
                            .map(|d| d.message.clone())
                            .unwrap_or_default(),
                    },
                    coverage: cov,
                };
            }
        };

        observe_stage(Stage::FrontEnd, t_front);

        // ---------------- IR generation ----------------
        let t_irgen = stage_timer();
        let lowered = lower::lower(&ast, &sema);
        observe_stage(Stage::IrGen, t_irgen);
        for f in &lowered.features {
            cov.record(Stage::IrGen, *f);
        }
        let cx = bugs::BugCtx {
            raw: &raw,
            ast: ast_feats.as_ref(),
            opt: None,
            asm: None,
            opt_level: opts.opt_level,
            flags,
        };
        if let Some(crash) = bugs::check_stage(self.profile, Stage::IrGen, &cx) {
            return CompileResult {
                outcome: Outcome::Crash(crash),
                coverage: cov,
            };
        }

        // ---------------- Optimizer ----------------
        let t_opt = stage_timer();
        let mut module = lowered.module;
        let report = passes::optimize(&mut module, opts.opt_level, flags);
        observe_stage(Stage::Opt, t_opt);
        for f in &report.features {
            cov.record(Stage::Opt, *f);
        }
        for (name, n) in &report.pass_stats {
            cov.record(
                Stage::Opt,
                feature_hash_display(format_args!("{name}:{}", n.min(&16))),
            );
        }
        let cx = bugs::BugCtx {
            raw: &raw,
            ast: ast_feats.as_ref(),
            opt: Some(&report),
            asm: None,
            opt_level: opts.opt_level,
            flags,
        };
        if let Some(crash) = bugs::check_stage(self.profile, Stage::Opt, &cx) {
            return CompileResult {
                outcome: Outcome::Crash(crash),
                coverage: cov,
            };
        }

        // ---------------- Back end ----------------
        let t_back = stage_timer();
        let asm = backend::codegen(&module);
        observe_stage(Stage::BackEnd, t_back);
        for f in &asm.features {
            cov.record(Stage::BackEnd, *f);
        }
        let cx = bugs::BugCtx {
            raw: &raw,
            ast: ast_feats.as_ref(),
            opt: Some(&report),
            asm: Some((asm.spills, asm.peak_pressure)),
            opt_level: opts.opt_level,
            flags,
        };
        if let Some(crash) = bugs::check_stage(self.profile, Stage::BackEnd, &cx) {
            return CompileResult {
                outcome: Outcome::Crash(crash),
                coverage: cov,
            };
        }

        CompileResult {
            outcome: Outcome::Success {
                asm_len: asm.insts.len(),
                spills: asm.spills,
            },
            coverage: cov,
        }
    }
}

/// `Some(now)` when telemetry is on — the guard keeps `Instant::now` off
/// the hot path for untelemetered runs.
fn stage_timer() -> Option<std::time::Instant> {
    metamut_telemetry::handle()
        .enabled()
        .then(std::time::Instant::now)
}

/// Records a completed stage's wall time into `stage_ms{<Stage>}`.
fn observe_stage(stage: Stage, start: Option<std::time::Instant>) {
    if let Some(s) = start {
        metamut_telemetry::handle().observe(
            &metamut_telemetry::labeled("stage_ms", stage.label()),
            s.elapsed().as_secs_f64() * 1e3,
        );
    }
}

fn decl_code(d: &metamut_lang::ast::ExternalDecl) -> u64 {
    use metamut_lang::ast::ExternalDecl as E;
    match d {
        E::Function(f) => 100 + f.params.len().min(16) as u64,
        E::Vars(g) => 200 + g.vars.len().min(8) as u64,
        E::Record(_) => 300,
        E::Enum(_) => 301,
        E::Typedef(_) => 302,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK_SRC: &str =
        "int add(int a, int b) { return a + b; } int main(void) { return add(1, 2); }";

    #[test]
    fn success_produces_coverage() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let r = c.compile(OK_SRC);
        assert!(r.outcome.is_success(), "{:?}", r.outcome);
        assert!(r.coverage.count_stage(Stage::FrontEnd) > 0);
        assert!(r.coverage.count_stage(Stage::IrGen) > 0);
        assert!(r.coverage.count_stage(Stage::Opt) > 0);
        assert!(r.coverage.count_stage(Stage::BackEnd) > 0);
    }

    #[test]
    fn rejection_covers_error_paths_only() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let r = c.compile("int main(void) { return undeclared_var; }");
        assert!(matches!(r.outcome, Outcome::Rejected { .. }));
        assert!(r.coverage.count_stage(Stage::FrontEnd) > 0);
        assert_eq!(r.coverage.count_stage(Stage::IrGen), 0);
        assert_eq!(r.coverage.count_stage(Stage::BackEnd), 0);
    }

    #[test]
    fn o0_skips_optimizer_features() {
        let c0 = Compiler::new(Profile::Gcc, CompileOptions::o0());
        let c2 = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let r0 = c0.compile(OK_SRC);
        let r2 = c2.compile(OK_SRC);
        assert!(r2.coverage.count_stage(Stage::Opt) > r0.coverage.count_stage(Stage::Opt));
    }

    #[test]
    fn gcc_111819_case_study() {
        // The paper's GCC #111819 mutant shape triggers the IR-gen bug with
        // default options.
        let src = r#"
long long combinedVar_1;
int *bar(void) {
    return (int *)&__imag__ (*(_Complex double *)((char *)&combinedVar_1 + 16));
}
"#;
        let gcc = Compiler::new(Profile::Gcc, CompileOptions::o0());
        let r = gcc.compile(src);
        let crash = r.outcome.crash().expect("GCC must crash");
        assert_eq!(crash.bug_id, "gcc-111819-fold-offsetof");
        assert_eq!(crash.stage, Stage::IrGen);
        // Clang compiles the same input fine.
        let clang = Compiler::new(Profile::Clang, CompileOptions::o0());
        let r2 = clang.compile(src);
        assert!(r2.outcome.crash().is_none(), "{:?}", r2.outcome);
    }

    #[test]
    fn gcc_111820_case_study() {
        let src = r#"
int r;
int r_0;
void f(void) {
    int n = 0;
    while (--n) {
        r_0 += r;
        r += r; r += r; r += r; r += r; r += r;
    }
}
"#;
        let opts = CompileOptions {
            opt_level: 3,
            flags: OptFlags {
                no_tree_vrp: true,
                ..Default::default()
            },
        };
        let gcc = Compiler::new(Profile::Gcc, opts.clone());
        let r = gcc.compile(src);
        let crash = r.outcome.crash().expect("vectorizer must hang");
        assert_eq!(crash.bug_id, "gcc-111820-vectorizer-hang");
        assert_eq!(crash.kind, CrashKind::Hang);
        // Without -fno-tree-vrp the loop is pruned and nothing fires.
        let gcc_default = Compiler::new(Profile::Gcc, CompileOptions::o3());
        assert!(gcc_default.compile(src).outcome.crash().is_none());
    }

    #[test]
    fn clang_63762_case_study() {
        // Ret2V applied to the jump-heavy seed: void function, calls, two
        // labels, no returns.
        let src = r#"
void helper(int *x, int *y) { }
void foo(int x[64], int y[64]) {
    helper(x, y);
gt:
    ;
lt:
    ;
}
int main(void) { return 0; }
"#;
        let clang = Compiler::new(Profile::Clang, CompileOptions::o2());
        let r = clang.compile(src);
        let crash = r.outcome.crash().expect("clang must crash");
        assert_eq!(crash.bug_id, "clang-63762-label-codegen");
        assert_eq!(crash.stage, Stage::BackEnd);
        let gcc = Compiler::new(Profile::Gcc, CompileOptions::o2());
        assert!(gcc.compile(src).outcome.crash().is_none());
    }

    #[test]
    fn clang_69213_case_study() {
        let src = "foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }";
        let clang = Compiler::new(Profile::Clang, CompileOptions::o0());
        let r = clang.compile(src);
        let crash = r.outcome.crash().expect("clang must crash");
        assert_eq!(crash.bug_id, "clang-69213-scalar-brace");
        // GCC rejects the program instead of crashing.
        let gcc = Compiler::new(Profile::Gcc, CompileOptions::o0());
        let rg = gcc.compile(src);
        assert!(matches!(rg.outcome, Outcome::Rejected { .. }));
    }

    #[test]
    fn strlen_case_study() {
        let src = r#"
char buffer[32];
int test4(void) { return sprintf(buffer, "%s", buffer); }
int main(void) { memset(buffer, 'A', 32); if (test4() != 3) abort(); return 0; }
"#;
        let gcc = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let r = gcc.compile(src);
        let crash = r.outcome.crash().expect("strlen opt must crash");
        assert_eq!(crash.bug_id, "gcc-strlen-verify-range");
        // At -O0 the optimization never runs.
        let gcc0 = Compiler::new(Profile::Gcc, CompileOptions::o0());
        assert!(gcc0.compile(src).outcome.is_success());
    }

    #[test]
    fn raw_byte_crash_for_byte_fuzzers() {
        let garbage = format!("int x = {}1;", "(".repeat(50));
        let clang = Compiler::new(Profile::Clang, CompileOptions::o0());
        let r = clang.compile(&garbage);
        assert!(r.outcome.crash().is_some(), "{:?}", r.outcome);
    }

    #[test]
    fn coverage_grows_with_diversity() {
        let c = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let mut acc = CoverageMap::new();
        let r1 = c.compile(OK_SRC);
        acc.merge(&r1.coverage);
        let after_first = acc.count();
        let r2 = c.compile(
            "double mul(double x) { return x * 3.5; } int main(void) { return (int)mul(2.0); }",
        );
        acc.merge(&r2.coverage);
        assert!(acc.count() > after_first);
        // Recompiling the same source adds nothing.
        let r3 = c.compile(OK_SRC);
        let before = acc.count();
        acc.merge(&r3.coverage);
        assert_eq!(acc.count(), before);
    }

    #[test]
    fn options_render() {
        assert_eq!(CompileOptions::o0().render(), "-O0");
        let o = CompileOptions {
            opt_level: 3,
            flags: OptFlags {
                no_tree_vrp: true,
                unroll_loops: true,
                strict_aliasing: false,
            },
        };
        assert_eq!(o.render(), "-O3 -fno-tree-vrp -funroll-loops");
    }
}
