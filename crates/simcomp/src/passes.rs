//! The optimization pipeline: constant folding, dead-code elimination,
//! CFG simplification, inlining, a sprintf→strlen strength reduction, and
//! loop analysis with a model "vectorizer" — the passes whose real-world
//! counterparts the paper's bugs live in (GCC #111820's loop vectorizer,
//! the strlen optimization of §5.2's crash case, …).

use crate::coverage::feature_hash;
use crate::ir::*;
use metamut_lang::fxhash::{FxHashMap, FxHashSet};

/// Optimization flags beyond the level (macro-fuzzer enhancement #1 samples
/// these).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptFlags {
    /// `-fno-tree-vrp`: disables value-range pruning in loop analysis.
    pub no_tree_vrp: bool,
    /// `-funroll-loops`: more aggressive unrolling decisions.
    pub unroll_loops: bool,
    /// `-fstrict-aliasing` (default at O2 in real compilers).
    pub strict_aliasing: bool,
}

/// A loop discovered by loop analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Function containing the loop.
    pub function: String,
    /// Header block.
    pub header: BlockId,
    /// Blocks in the loop body (approximate natural-loop membership).
    pub body_blocks: usize,
    /// Estimated trip count class.
    pub trip: TripCount,
    /// Number of store instructions in the body.
    pub stores: usize,
    /// Whether the model vectorizer chose to vectorize it.
    pub vectorized: bool,
    /// Whether the induction variable steps downward.
    pub descending: bool,
    /// Whether the induction variable starts at zero.
    pub starts_at_zero: bool,
}

/// Trip-count estimate classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripCount {
    /// Statically known and small.
    Constant(i64),
    /// Bounded but unknown.
    Unknown,
    /// The analysis concluded the loop never terminates normally.
    Infinite,
}

/// Report of one optimization run.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// Coverage features observed by the passes.
    pub features: Vec<u64>,
    /// (pass name, number of changes) in execution order.
    pub pass_stats: Vec<(&'static str, usize)>,
    /// Loops discovered by loop analysis.
    pub loops: Vec<LoopInfo>,
    /// Calls strength-reduced by the sprintf→strlen pass, as
    /// (function, self_referential, const_buffer-ish) observations.
    pub strlen_reductions: Vec<(String, bool)>,
    /// Functions inlined away.
    pub inlined: usize,
}

impl OptReport {
    fn feat(&mut self, parts: &[u64]) {
        self.features.push(feature_hash(parts));
    }
}

/// Runs `f`, recording its wall time into the `pass_ms{<name>}` histogram
/// when telemetry is on (no `Instant::now` otherwise).
fn timed_pass<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let start = metamut_telemetry::handle()
        .enabled()
        .then(std::time::Instant::now);
    let out = f();
    if let Some(s) = start {
        metamut_telemetry::handle().observe(
            &metamut_telemetry::labeled("pass_ms", name),
            s.elapsed().as_secs_f64() * 1e3,
        );
    }
    out
}

/// Runs the pipeline at the given `-O` level.
///
/// With telemetry enabled, each pass's wall time is recorded into a
/// `pass_ms{<pass>}` histogram keyed by the same names as `pass_stats`.
pub fn optimize(module: &mut Module, opt_level: u8, flags: &OptFlags) -> OptReport {
    let mut report = OptReport::default();
    if opt_level == 0 {
        return report;
    }
    let folded = timed_pass("const-fold", || const_fold(module, &mut report));
    report.pass_stats.push(("const-fold", folded));
    let dce_removed = timed_pass("dce", || dead_code_elim(module, &mut report));
    report.pass_stats.push(("dce", dce_removed));
    if opt_level >= 2 {
        let merged = timed_pass("simplify-cfg", || simplify_cfg(module, &mut report));
        report.pass_stats.push(("simplify-cfg", merged));
        let inlined = timed_pass("inline", || inline_trivial(module, &mut report));
        report.pass_stats.push(("inline", inlined));
        report.inlined = inlined;
        let reduced = timed_pass("strlen-opt", || strlen_reduce(module, &mut report));
        report.pass_stats.push(("strlen-opt", reduced));
        // Fold and clean again after inlining.
        let folded2 = timed_pass("const-fold-2", || const_fold(module, &mut report));
        report.pass_stats.push(("const-fold-2", folded2));
        let dce2 = timed_pass("dce-2", || dead_code_elim(module, &mut report));
        report.pass_stats.push(("dce-2", dce2));
    }
    // Loop analysis runs at O2+; the vectorizer only at O3 (matching the
    // GCC bug's -O3 trigger).
    if opt_level >= 2 {
        timed_pass("loop-analysis", || {
            loop_analysis(module, opt_level, flags, &mut report)
        });
        report
            .pass_stats
            .push(("loop-analysis", report.loops.len()));
    }
    report
}

// ----------------------------------------------------------------------
// Constant folding
// ----------------------------------------------------------------------

fn fold_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    use BinOp::*;
    Some(match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        Shl => a.wrapping_shl((b & 63) as u32),
        Shr => a.wrapping_shr((b & 63) as u32),
        And => a & b,
        Xor => a ^ b,
        Or => a | b,
        CmpLt => i64::from(a < b),
        CmpLe => i64::from(a <= b),
        CmpGt => i64::from(a > b),
        CmpGe => i64::from(a >= b),
        CmpEq => i64::from(a == b),
        CmpNe => i64::from(a != b),
    })
}

/// Folds constant expressions and propagates known temps; returns the number
/// of instructions folded.
pub fn const_fold(module: &mut Module, report: &mut OptReport) -> usize {
    let mut folded = 0;
    for f in &mut module.functions {
        folded += const_fold_fn(f, report);
    }
    folded
}

/// Per-function constant folding — the unit of work the incremental
/// compiler replays for a single changed definition.
pub(crate) fn const_fold_fn(f: &mut IrFunction, report: &mut OptReport) -> usize {
    let mut folded = 0;
    {
        let mut known: FxHashMap<Temp, Value> = FxHashMap::default();
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                // Substitute known temps into operands first.
                for v in inst.uses_mut() {
                    if let Value::Temp(t) = v {
                        if let Some(k) = known.get(t) {
                            *v = k.clone();
                        }
                    }
                }
                match inst {
                    Inst::Bin { dst, op, a, b } => {
                        if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
                            if let Some(r) = fold_bin(*op, x, y) {
                                known.insert(*dst, Value::Int(r));
                                folded += 1;
                                report.feat(&[100, op.code(), (r == 0) as u64]);
                            }
                        }
                    }
                    Inst::Un { dst, op, a } => {
                        if let Some(x) = a.as_int() {
                            let r = match op {
                                UnOp::Neg => Some(x.wrapping_neg()),
                                UnOp::Not => Some(!x),
                                UnOp::LogNot => Some(i64::from(x == 0)),
                                UnOp::IntCast => Some(x),
                                UnOp::FloatCast => None,
                            };
                            if let Some(r) = r {
                                known.insert(*dst, Value::Int(r));
                                folded += 1;
                                report.feat(&[101, *op as u64]);
                            }
                        }
                    }
                    _ => {}
                }
            }
            // Fold branch conditions.
            if let Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } = &mut b.term
            {
                if let Value::Temp(t) = cond {
                    if let Some(k) = known.get(t) {
                        *cond = k.clone();
                    }
                }
                if let Some(c) = cond.as_int() {
                    let target = if c != 0 { *then_bb } else { *else_bb };
                    b.term = Terminator::Jump(target);
                    folded += 1;
                    report.feat(&[102, (c != 0) as u64]);
                }
            }
            if let Terminator::Return(Some(v)) = &mut b.term {
                if let Value::Temp(t) = v {
                    if let Some(k) = known.get(t) {
                        *v = k.clone();
                    }
                }
            }
            if let Terminator::Switch { value, .. } = &mut b.term {
                if let Value::Temp(t) = value {
                    if let Some(k) = known.get(t) {
                        *value = k.clone();
                    }
                }
            }
            // Constant switch dispatch.
            if let Terminator::Switch {
                value,
                cases,
                default,
            } = &b.term
            {
                if let Some(v) = value.as_int() {
                    let target = cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    b.term = Terminator::Jump(target);
                    folded += 1;
                    report.feat(&[103]);
                }
            }
        }
    }
    folded
}

// ----------------------------------------------------------------------
// Dead code elimination
// ----------------------------------------------------------------------

/// Removes unused pure instructions and unreachable blocks; returns the
/// number of instructions removed.
pub fn dead_code_elim(module: &mut Module, report: &mut OptReport) -> usize {
    let mut removed = 0;
    for f in &mut module.functions {
        removed += dead_code_elim_fn(f, report);
    }
    removed
}

/// Per-function DCE. The `[111]` feature carries the per-function removal
/// count, so replaying one function reproduces its cold features exactly.
pub(crate) fn dead_code_elim_fn(f: &mut IrFunction, report: &mut OptReport) -> usize {
    let mut removed = 0;
    {
        // Unreachable blocks become empty shells (keeping ids stable).
        let reach = f.reachable();
        for (idx, r) in reach.iter().enumerate() {
            let already_cleared = f.blocks[idx].insts.is_empty()
                && matches!(f.blocks[idx].term, Terminator::Unreachable);
            if !r && !already_cleared {
                removed += f.blocks[idx].insts.len();
                f.blocks[idx].insts.clear();
                f.blocks[idx].term = Terminator::Unreachable;
                report.feat(&[110]);
            }
        }
        // Fixpoint removal of unused pure defs.
        loop {
            let mut used: FxHashSet<Temp> = FxHashSet::default();
            for b in &f.blocks {
                for i in &b.insts {
                    for v in i.uses() {
                        if let Value::Temp(t) = v {
                            used.insert(*t);
                        }
                    }
                }
                match &b.term {
                    Terminator::Branch {
                        cond: Value::Temp(t),
                        ..
                    } => {
                        used.insert(*t);
                    }
                    Terminator::Return(Some(Value::Temp(t))) => {
                        used.insert(*t);
                    }
                    Terminator::Switch {
                        value: Value::Temp(t),
                        ..
                    } => {
                        used.insert(*t);
                    }
                    _ => {}
                }
            }
            let mut changed = false;
            for b in &mut f.blocks {
                let before = b.insts.len();
                b.insts.retain(|i| {
                    i.has_side_effects() || i.def().map(|d| used.contains(&d)).unwrap_or(true)
                });
                let delta = before - b.insts.len();
                if delta > 0 {
                    removed += delta;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if removed > 0 {
            report.feat(&[111, removed.min(16) as u64]);
        }
    }
    removed
}

// ----------------------------------------------------------------------
// CFG simplification
// ----------------------------------------------------------------------

/// Threads jumps through empty forwarding blocks and collapses
/// same-target branches; returns the number of rewrites.
pub fn simplify_cfg(module: &mut Module, report: &mut OptReport) -> usize {
    let mut changes = 0;
    for f in &mut module.functions {
        changes += simplify_cfg_fn(f, report);
    }
    changes
}

/// Per-function CFG simplification with a per-function `[121]` change count.
pub(crate) fn simplify_cfg_fn(f: &mut IrFunction, report: &mut OptReport) -> usize {
    let mut changes = 0;
    {
        // Forwarding map: empty block with a Jump terminator.
        let mut forward: FxHashMap<BlockId, BlockId> = FxHashMap::default();
        for b in &f.blocks {
            if b.insts.is_empty() {
                if let Terminator::Jump(t) = b.term {
                    if t != b.id {
                        forward.insert(b.id, t);
                    }
                }
            }
        }
        let resolve = |mut b: BlockId| {
            let mut hops = 0;
            while let Some(&n) = forward.get(&b) {
                b = n;
                hops += 1;
                if hops > 64 {
                    break; // cycle of empty blocks (infinite loop shell)
                }
            }
            b
        };
        for b in &mut f.blocks {
            match &mut b.term {
                Terminator::Jump(t) => {
                    let r = resolve(*t);
                    if r != *t {
                        *t = r;
                        changes += 1;
                    }
                }
                Terminator::Branch {
                    then_bb,
                    else_bb,
                    cond,
                } => {
                    let rt = resolve(*then_bb);
                    let re = resolve(*else_bb);
                    if rt != *then_bb || re != *else_bb {
                        changes += 1;
                    }
                    *then_bb = rt;
                    *else_bb = re;
                    if then_bb == else_bb {
                        let target = *then_bb;
                        let _ = cond;
                        b.term = Terminator::Jump(target);
                        changes += 1;
                        report.feat(&[120]);
                    }
                }
                Terminator::Switch { cases, default, .. } => {
                    for (_, t) in cases.iter_mut() {
                        let r = resolve(*t);
                        if r != *t {
                            *t = r;
                            changes += 1;
                        }
                    }
                    let r = resolve(*default);
                    if r != *default {
                        *default = r;
                        changes += 1;
                    }
                }
                _ => {}
            }
        }
        if changes > 0 {
            report.feat(&[121, changes.min(16) as u64]);
        }
    }
    changes
}

// ----------------------------------------------------------------------
// Trivial inlining
// ----------------------------------------------------------------------

/// Inlines calls to single-block, parameterless, non-recursive functions by
/// splicing their instructions; returns the number of inlined call sites.
pub fn inline_trivial(module: &mut Module, report: &mut OptReport) -> usize {
    // Identify trivial callees first.
    let trivial = trivial_bodies(module);
    let mut inlined = 0;
    for f in &mut module.functions {
        inlined += inline_trivial_fn(f, &trivial, report);
    }
    inlined
}

/// The trivial-callee map the inliner consults: every function whose body
/// qualifies under [`trivial_body_of`], keyed by name.
pub(crate) fn trivial_bodies(module: &Module) -> FxHashMap<String, (Vec<Inst>, Option<Value>)> {
    let mut trivial: FxHashMap<String, (Vec<Inst>, Option<Value>)> = FxHashMap::default();
    for f in &module.functions {
        if let Some(body) = trivial_body_of(f) {
            trivial.insert(f.name.clone(), body);
        }
    }
    trivial
}

/// Whether `f` is a trivial inline candidate: parameterless, exactly one
/// reachable block of at most four instructions, non-recursive, ending in a
/// plain return. Returns the spliceable body and return value when it is.
pub(crate) fn trivial_body_of(f: &IrFunction) -> Option<(Vec<Inst>, Option<Value>)> {
    if !f.params.is_empty() {
        return None;
    }
    // Exactly one *reachable* block (lowering appends dead shells).
    let reach = f.reachable();
    let reachable_count = reach.iter().filter(|r| **r).count();
    if reachable_count != 1 {
        return None;
    }
    let b = &f.blocks[0];
    if b.insts.len() > 4 {
        return None;
    }
    let recursive = b
        .insts
        .iter()
        .any(|i| matches!(i, Inst::Call { callee, .. } if *callee == f.name));
    if recursive {
        return None;
    }
    let ret = match &b.term {
        Terminator::Return(v) => v.clone(),
        _ => return None,
    };
    Some((b.insts.clone(), ret))
}

/// Splices trivial callee bodies into one function's call sites.
pub(crate) fn inline_trivial_fn(
    f: &mut IrFunction,
    trivial: &FxHashMap<String, (Vec<Inst>, Option<Value>)>,
    report: &mut OptReport,
) -> usize {
    let mut inlined = 0;
    {
        let base_temp = f.temp_count;
        let mut extra_temps = 0u32;
        for b in &mut f.blocks {
            let mut new_insts = Vec::with_capacity(b.insts.len());
            for inst in b.insts.drain(..) {
                match &inst {
                    Inst::Call { dst, callee, args }
                        if args.is_empty() && trivial.contains_key(callee) =>
                    {
                        let (body, ret) = &trivial[callee];
                        // Renumber callee temps into a fresh range.
                        let mut map: FxHashMap<Temp, Temp> = FxHashMap::default();
                        for bi in body {
                            let mut ni = bi.clone();
                            if let Some(d) = bi.def() {
                                let nt = Temp(base_temp + extra_temps);
                                extra_temps += 1;
                                map.insert(d, nt);
                                match &mut ni {
                                    Inst::Bin { dst, .. }
                                    | Inst::Un { dst, .. }
                                    | Inst::Load { dst, .. }
                                    | Inst::LoadIdx { dst, .. }
                                    | Inst::AddrOf { dst, .. }
                                    | Inst::LoadPtr { dst, .. } => *dst = nt,
                                    Inst::Call { dst, .. } => *dst = Some(nt),
                                    _ => {}
                                }
                            }
                            for u in ni.uses_mut() {
                                if let Value::Temp(t) = u {
                                    if let Some(nt) = map.get(t) {
                                        *u = Value::Temp(*nt);
                                    }
                                }
                            }
                            new_insts.push(ni);
                        }
                        // Bind the call result.
                        if let Some(d) = dst {
                            let rv = match ret {
                                Some(Value::Temp(t)) => map
                                    .get(t)
                                    .map(|nt| Value::Temp(*nt))
                                    .unwrap_or(Value::Undef),
                                Some(v) => v.clone(),
                                None => Value::Undef,
                            };
                            new_insts.push(Inst::Un {
                                dst: *d,
                                op: UnOp::IntCast,
                                a: rv,
                            });
                        }
                        inlined += 1;
                        report.feat(&[130, body.len() as u64]);
                    }
                    _ => new_insts.push(inst),
                }
            }
            b.insts = new_insts;
        }
        f.temp_count = base_temp + extra_temps;
    }
    inlined
}

// ----------------------------------------------------------------------
// sprintf → strlen strength reduction (the §5.2 crash-case pass)
// ----------------------------------------------------------------------

/// Models GCC's sprintf return-value optimization: `sprintf(dst, "%s", s)`
/// has its result replaced by `strlen(s)`. Records whether the copy is
/// self-referential (the shape that crashed GCC's verify_range).
pub fn strlen_reduce(module: &mut Module, report: &mut OptReport) -> usize {
    let mut reduced = 0;
    for f in &mut module.functions {
        reduced += strlen_reduce_fn(f, report);
    }
    reduced
}

/// Per-function sprintf→strlen strength reduction; observations land in
/// `report.strlen_reductions` in call-site order within the function.
pub(crate) fn strlen_reduce_fn(f: &mut IrFunction, report: &mut OptReport) -> usize {
    let mut reduced = 0;
    let mut observations = Vec::new();
    {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                let Inst::Call { dst, callee, args } = inst else {
                    continue;
                };
                if callee != "sprintf" || args.len() != 3 || dst.is_none() {
                    continue;
                }
                let Value::Str(fmt) = &args[1] else { continue };
                if fmt != "%s" {
                    continue;
                }
                let self_ref = args[0] == args[2];
                observations.push((f.name.clone(), self_ref));
                let src = args[2].clone();
                *inst = Inst::Call {
                    dst: *dst,
                    callee: "strlen".to_string(),
                    args: vec![src],
                };
                reduced += 1;
            }
        }
    }
    for (func, self_ref) in observations {
        report.feat(&[140, u64::from(self_ref)]);
        report.strlen_reductions.push((func, self_ref));
    }
    reduced
}

// ----------------------------------------------------------------------
// Loop analysis and the model vectorizer
// ----------------------------------------------------------------------

/// Discovers loops via back edges, estimates trip counts from the induction
/// pattern, and decides vectorization (at O3). Mirrors the pass where GCC
/// bug #111820 lives: a loop counting down from zero has its iteration count
/// miscomputed unless value-range pruning (`tree-vrp`) intervenes.
pub fn loop_analysis(module: &Module, opt_level: u8, flags: &OptFlags, report: &mut OptReport) {
    for f in &module.functions {
        loop_analysis_fn(f, opt_level, flags, report);
    }
}

/// Loop discovery and the model vectorizer for a single function.
pub(crate) fn loop_analysis_fn(
    f: &IrFunction,
    opt_level: u8,
    flags: &OptFlags,
    report: &mut OptReport,
) {
    {
        let preds = f.predecessors();
        for b in &f.blocks {
            // Back edge heuristic: successor with a smaller id that can reach
            // us (structured lowering gives headers smaller ids than latches).
            for s in b.term.successors() {
                if s.0 >= b.id.0 {
                    continue;
                }
                let header = s;
                if !preds.get(&b.id).map(|p| !p.is_empty()).unwrap_or(false) {
                    continue;
                }
                let body_blocks = (b.id.0 - header.0) as usize + 1;
                let mut stores = 0;
                let mut descending = false;
                let mut starts_at_zero = false;
                let mut bounded = false;
                for blk in &f.blocks[header.0 as usize..=b.id.0 as usize] {
                    for i in &blk.insts {
                        match i {
                            Inst::Store { .. } | Inst::StoreIdx { .. } | Inst::StorePtr { .. } => {
                                stores += 1
                            }
                            Inst::Bin {
                                op: BinOp::Sub,
                                b: Value::Int(1),
                                ..
                            } => descending = true,
                            Inst::Bin {
                                op,
                                b: Value::Int(_),
                                ..
                            } if op.is_comparison() => bounded = true,
                            _ => {}
                        }
                    }
                }
                // Induction start: a store of constant 0 to some slot right
                // before the header, approximated by scanning header preds.
                for p in preds.get(&header).into_iter().flatten() {
                    if p.0 > header.0 {
                        continue; // the latch
                    }
                    for i in &f.blocks[p.0 as usize].insts {
                        if let Inst::Store {
                            value: Value::Int(0),
                            ..
                        } = i
                        {
                            starts_at_zero = true;
                        }
                    }
                }
                // Counting down from zero: 0, -1, -2, ... — "infinite"
                // unless range analysis proves otherwise.
                let trip = if descending && starts_at_zero && !bounded {
                    TripCount::Infinite
                } else {
                    TripCount::Unknown
                };
                let vectorized = opt_level >= 3
                    && stores >= 4
                    && (flags.unroll_loops || !matches!(trip, TripCount::Constant(_)));
                report.feat(&[
                    150,
                    body_blocks.min(8) as u64,
                    stores.min(16) as u64,
                    u64::from(descending),
                    u64::from(vectorized),
                ]);
                report.loops.push(LoopInfo {
                    function: f.name.clone(),
                    header,
                    body_blocks,
                    trip,
                    stores,
                    vectorized,
                    descending,
                    starts_at_zero,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use metamut_lang::compile;

    fn build(src: &str) -> Module {
        let (ast, sema) = compile(src).expect("source compiles");
        lower(&ast, &sema).module
    }

    #[test]
    fn const_fold_folds_arith_and_branches() {
        let mut m = build("int f(void) { int x = 2 * 3 + 1; if (1) return x; return 0; }");
        let mut r = OptReport::default();
        let folded = const_fold(&mut m, &mut r);
        assert!(folded >= 2, "folded {folded}");
        // The branch on constant 1 became a jump.
        let f = m.function("f").unwrap();
        let const_branches = f
            .blocks
            .iter()
            .filter(|b| matches!(&b.term, Terminator::Branch { cond, .. } if cond.is_const()))
            .count();
        assert_eq!(const_branches, 0);
    }

    #[test]
    fn dce_removes_dead_math() {
        let mut m = build("int f(int a) { int unused = a * 42; return a; }");
        let mut r = OptReport::default();
        let f0 = m.function("f").unwrap().inst_count();
        // The store to `unused` has side effects in our model, but the dead
        // multiply feeding nothing after const-prop is removable once the
        // store is the only use. Fold first, then check DCE runs cleanly.
        const_fold(&mut m, &mut r);
        let removed = dead_code_elim(&mut m, &mut r);
        let f1 = m.function("f").unwrap().inst_count();
        assert!(f1 <= f0);
        let _ = removed;
    }

    #[test]
    fn dce_clears_unreachable_blocks() {
        let mut m = build("int f(void) { return 1; if (2) return 3; return 4; }");
        let mut r = OptReport::default();
        const_fold(&mut m, &mut r);
        dead_code_elim(&mut m, &mut r);
        let f = m.function("f").unwrap();
        let reach = f.reachable();
        for (i, blk) in f.blocks.iter().enumerate() {
            if !reach[i] {
                assert!(blk.insts.is_empty(), "unreachable block not cleared");
            }
        }
    }

    #[test]
    fn simplify_threads_jumps() {
        let mut m = build("int f(int a) { if (a) { } else { } return a; }");
        let mut r = OptReport::default();
        let changes = simplify_cfg(&mut m, &mut r);
        assert!(changes > 0);
        // The empty-branch if now jumps straight to the join.
        let f = m.function("f").unwrap();
        let same_target_branches = f
            .blocks
            .iter()
            .filter(|b| matches!(&b.term, Terminator::Branch { then_bb, else_bb, .. } if then_bb == else_bb))
            .count();
        assert_eq!(same_target_branches, 0);
    }

    #[test]
    fn inline_splices_trivial_callee() {
        let mut m = build(
            "int g_val = 3; int get(void) { return g_val; } int f(void) { return get() + get(); }",
        );
        let mut r = OptReport::default();
        let inlined = inline_trivial(&mut m, &mut r);
        assert_eq!(inlined, 2);
        let f = m.function("f").unwrap();
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 0, "calls remain after inlining");
    }

    #[test]
    fn strlen_reduction_detects_self_sprintf() {
        let mut m =
            build("char buffer[32]; int t(void) { return sprintf(buffer, \"%s\", buffer); }");
        let mut r = OptReport::default();
        let n = strlen_reduce(&mut m, &mut r);
        assert_eq!(n, 1);
        assert_eq!(r.strlen_reductions.len(), 1);
        assert!(r.strlen_reductions[0].1, "self-reference not detected");
        let f = m.function("t").unwrap();
        let strlen_calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Call { callee, .. } if callee == "strlen"))
            .count();
        assert_eq!(strlen_calls, 1);
    }

    #[test]
    fn loop_analysis_finds_descending_zero_loop() {
        // The GCC #111820 shape: n starts at 0, while (--n) with self-adds.
        let src = r#"
int r; int r_0;
void f(void) {
    int n = 0;
    while (--n) {
        r_0 += r;
        r += r; r += r; r += r; r += r; r += r;
    }
}
"#;
        let mut m = build(src);
        let mut r = OptReport::default();
        loop_analysis(
            &m,
            3,
            &OptFlags {
                no_tree_vrp: true,
                ..Default::default()
            },
            &mut r,
        );
        let l = r
            .loops
            .iter()
            .find(|l| l.function == "f")
            .expect("loop found");
        assert!(l.descending, "{l:?}");
        assert!(l.starts_at_zero, "{l:?}");
        assert_eq!(l.trip, TripCount::Infinite, "{l:?}");
        assert!(l.stores >= 4, "{l:?}");
        assert!(l.vectorized, "{l:?}");
        let _ = &mut m;
    }

    #[test]
    fn full_pipeline_runs_per_level() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }";
        for level in 0..=3u8 {
            let mut m = build(src);
            let report = optimize(&mut m, level, &OptFlags::default());
            if level == 0 {
                assert!(report.pass_stats.is_empty());
            } else {
                assert!(!report.pass_stats.is_empty());
            }
            if level >= 2 {
                assert!(!report.loops.is_empty(), "level {level} found no loops");
            }
        }
    }
}
