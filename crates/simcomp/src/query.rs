//! Query-based incremental compilation: the pipeline as memoized queries.
//!
//! This is the generalization of [`crate::incremental`]'s hand-rolled
//! `Baseline` cache. Each seed program gets a *slot* on a shared
//! [`QueryDb`]; the pipeline stages become derived queries keyed per
//! top-level declaration chunk:
//!
//! ```text
//! chunk(slot, k)    input: the chunk's source text, fingerprinted by its
//!                   whitespace/comment-invariant token hash
//! parse(slot, k)    mini-parse of the chunk under the seed's typedef set
//! sema(slot, k)     check_decl against the seed's boundary snapshot
//! vol(slot, k)      volatile-name set before declaration k (projection of
//!                   feat(slot, k-1) — the cross-declaration feature chain)
//! feat(slot, k)     the declaration's AstFeatures partial
//! lower(slot, k)    per-declaration IR (seed-final signature tables)
//! opt_a(slot, k)    pre-inlining optimizer passes + trivial-body entry
//! trivial(slot)     module-wide trivial-inline map (joins all opt_a)
//! opt(slot, k)      inlining-and-later passes against trivial(slot)
//! codegen(slot, k)  per-function assembly artifacts
//! ```
//!
//! A mutant editing k declarations flips exactly k `chunk` inputs; the
//! red-green walk recomputes the dirty per-declaration slices and whatever
//! they invalidate, and early cutoff stops propagation where recomputed
//! fingerprints match (typically `vol` and `trivial`, which is what makes a
//! body edit O(edited decls) instead of O(all decls)). Unlike the PR 4
//! guard chain, volatile-set or trivial-map changes don't force a cold
//! compile — the affected queries just recompute.
//!
//! Correctness is anchored exactly like `Baseline`: at slot creation the
//! whole seed is pushed through the queries and the stitched result must be
//! bit-identical to the seed's cold compile (outcome + coverage), else the
//! slot is marked dud and every compile for that seed stays cold. Mutants
//! re-guard the dirty declarations (lone function definition, environment
//! fingerprint preserved) and an every-Nth cold cross-check stays available
//! via [`QueryCache::with_cross_check`].

use crate::coverage::feature_hash_display;
use crate::incremental::{
    coverage_equal, opt_stage_a, opt_stage_b, DeclArtifacts, FnArtifacts, INLINE_IDX,
};
use crate::ir::{Inst, IrFunction, Value};
use crate::passes::{LoopInfo, OptReport};
use crate::{features, lower, passes, CompileOptions, CompileResult, Compiler};
use metamut_lang::fxhash::{FxHashMap, FxHashSet};
use metamut_lang::sema::{FuncSig, RecordInfo};
use metamut_lang::token::Token;
use metamut_lang::{ast as c, check_decl, Ast, SemaResult, SemaSnapshot};
use metamut_query::{fingerprint_of, DynValue, KindId, QueryDb};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Member index used for slot-wide (not per-declaration) queries.
const SLOT_WIDE: u64 = u64::MAX;

/// Streams formatted output straight into the workspace hasher — the
/// allocation-free equivalent of fingerprinting a `format!` string. Query
/// fingerprints run on every recompute, so they stay off the heap.
struct FpWriter(metamut_lang::fxhash::FxHasher);

impl std::fmt::Write for FpWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        std::hash::Hasher::write(&mut self.0, s.as_bytes());
        Ok(())
    }
}

/// Fingerprints the formatted `args` without allocating.
fn fp_args(args: std::fmt::Arguments<'_>) -> u64 {
    use std::fmt::Write as _;
    let mut w = FpWriter(metamut_lang::fxhash::FxHasher::default());
    let _ = w.write_fmt(args);
    std::hash::Hasher::finish(&w.0)
}

/// Guard-bail label for telemetry (`query_fallbacks{...}`).
const FRONT: &str = "front-end";

// ----------------------------------------------------------------------
// Query value types
// ----------------------------------------------------------------------

/// `parse(slot, k)`: the chunk mini-parsed in isolation. `ast` is `None`
/// when the chunk fails to parse or parses to more than one declaration.
struct ParseArt {
    ast: Option<Ast>,
    /// Front-end declaration-shape coverage code (tag 6).
    code6: u64,
    /// Whether the chunk is exactly one function *definition* — the only
    /// declaration kind whose edits leave the rest of the slot valid.
    fn_def: bool,
    fp: u64,
}

/// `sema(slot, k)`: the declaration checked against the seed's boundary
/// snapshot. `None` when parsing or checking failed.
struct SemaArt {
    ok: Option<SemaOk>,
}

struct SemaOk {
    sema: SemaResult,
    /// Fingerprint of the environment *after* this declaration; mutants
    /// must preserve it or later declarations' cached sema is stale.
    after_fp: u64,
    /// Type-diversity coverage features of this declaration.
    ty_feats: Vec<u64>,
}

/// `vol(slot, k)`: sorted volatile declarator names visible before
/// declaration `k`. Its fingerprint is where the cross-declaration feature
/// chain early-cuts: a body edit that leaves the set unchanged stops here.
struct VolArt {
    names: Vec<String>,
}

/// `feat(slot, k)`: the declaration's [`features::AstFeatures`] partial
/// plus the volatile set it exports to the next declaration.
struct FeatArt {
    features: features::AstFeatures,
    /// Sorted, so the fingerprint is iteration-order independent.
    volatile_after: Vec<String>,
}

/// `lower(slot, k)`: per-declaration IR generation.
struct LowerArt {
    features: Vec<u64>,
    func: Option<IrFunction>,
    fp: u64,
}

/// `opt_a(slot, k)`: the pre-inlining optimizer stage on one function.
struct OptAArt {
    func: Option<IrFunction>,
    counts: Vec<usize>,
    features: Vec<u64>,
    trivial: Option<(Vec<Inst>, Option<Value>)>,
    fp: u64,
}

/// `trivial(slot)`: the module-wide trivial-inline map, joined from every
/// declaration's `opt_a`. Recomputes whenever any function's pre-inlining
/// state changes, but early-cuts when the *map* is unchanged — the common
/// case for body edits, keeping every other function's `opt` green.
struct TrivialArt {
    map: FxHashMap<String, (Vec<Inst>, Option<Value>)>,
}

/// `opt(slot, k)`: the full optimizer output for one function.
struct OptArt {
    func: Option<IrFunction>,
    counts: Vec<usize>,
    features: Vec<u64>,
    loops: Vec<LoopInfo>,
    strlen: Vec<(String, bool)>,
    inlined: usize,
    fp: u64,
}

/// `codegen(slot, k)`: per-function back-end artifacts.
struct CodegenArt {
    features: Vec<u64>,
    len: usize,
    spills: usize,
    peak: usize,
    fp: u64,
}

// ----------------------------------------------------------------------
// Slots
// ----------------------------------------------------------------------

/// Everything the queries need to know about one cached seed program:
/// the semantic environment at every declaration boundary, the final
/// whole-program tables lowering consults, and the seed's own result.
pub(crate) struct SlotState {
    id: u64,
    options: CompileOptions,
    chunk_hashes: Vec<u64>,
    snapshots: Vec<SemaSnapshot>,
    fingerprints: Vec<u64>,
    final_functions: FxHashMap<String, FuncSig>,
    final_records: FxHashMap<String, RecordInfo>,
    final_enum_consts: FxHashMap<String, i64>,
    tag8: u64,
    tag9: u64,
    /// Which seed declarations are function definitions (the only kind a
    /// mutant may edit on the fast path).
    fn_decl: Vec<bool>,
    seed_result: CompileResult,
    cold_ms: f64,
    last_used: AtomicU64,
    /// Serializes compiles against this slot: a compile flips the slot's
    /// chunk inputs to its mutant, so two mutants of one seed must not
    /// interleave. Different seeds proceed in parallel.
    lock: Mutex<()>,
}

/// A cached seed entry: ready for incremental compiles, or a remembered
/// failure (the seed's decomposition did not validate).
enum SlotHandle {
    Dud(AtomicU64),
    Ready(Arc<SlotState>),
}

type Registry = Arc<Mutex<FxHashMap<u64, Arc<SlotState>>>>;

/// The registered query kinds.
#[derive(Clone, Copy)]
struct Kinds {
    chunk: KindId,
    parse: KindId,
    sema: KindId,
    feat: KindId,
    lower: KindId,
    opt: KindId,
    codegen: KindId,
}

/// Per-database compiler query state, shared by every [`QueryCache`]
/// layered over one [`QueryDb`] (campaign workers, the reduction oracle):
/// the registered kinds, the slot registry, and the cache counters.
pub(crate) struct SimcompQueries {
    kinds: Kinds,
    registry: Registry,
    by_key: Mutex<FxHashMap<String, SlotHandle>>,
    slot_seq: AtomicU64,
    use_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    mismatches: AtomicU64,
    compiles: AtomicU64,
    slot_evictions: AtomicU64,
}

fn slot_of(registry: &Registry, db: &QueryDb, key: metamut_query::Key) -> (Arc<SlotState>, usize) {
    let (sid, k) = db.key_parts(key);
    let slot = registry
        .lock()
        .get(&sid)
        .cloned()
        .expect("query ran for a retired slot");
    (slot, k as usize)
}

#[allow(clippy::too_many_lines)]
fn register_kinds(db: &QueryDb, registry: &Registry) -> Kinds {
    let chunk = db.register_input("chunk");

    let reg = Arc::clone(registry);
    let parse = db.register_query("parse", move |db, key| {
        let (slot, k) = slot_of(&reg, db, key);
        let text = db.get::<String>(chunk, key);
        let typedefs = slot.snapshots[k].typedef_names();
        let ast = metamut_lang::parse_with_typedefs("<query>", &text, &typedefs)
            .ok()
            .filter(|ast| ast.unit.decls.len() == 1);
        let (code6, fn_def) = ast.as_ref().map_or((0, false), |ast| {
            let d = &ast.unit.decls[0];
            (
                crate::decl_code(d),
                matches!(d, c::ExternalDecl::Function(f) if f.is_definition()),
            )
        });
        // Parsing is deterministic in the text, so the text hash is an
        // exact fingerprint. The chunk input's own token-hash fingerprint
        // already cuts whitespace/comment-only edits one level earlier.
        let fp = fingerprint_of(&*text);
        (
            Arc::new(ParseArt {
                ast,
                code6,
                fn_def,
                fp,
            }) as DynValue,
            fp,
        )
    });

    let reg = Arc::clone(registry);
    let sema = db.register_query("sema", move |db, key| {
        let (slot, k) = slot_of(&reg, db, key);
        let p = db.get::<ParseArt>(parse, key);
        let ok = p.ast.as_ref().and_then(|ast| {
            check_decl(&slot.snapshots[k], ast, 0).ok().map(|dc| {
                let ty_feats = dc
                    .sema
                    .expr_types
                    .values()
                    .map(|qt| feature_hash_display(format_args!("ty:{qt}")))
                    .collect();
                SemaOk {
                    after_fp: dc.after.fingerprint(),
                    ty_feats,
                    sema: dc.sema,
                }
            })
        });
        // check_decl is a pure function of the parse (the snapshot is
        // fixed per slot), so the parse fingerprint is exact here too.
        (Arc::new(SemaArt { ok }) as DynValue, p.fp)
    });

    // vol(k) projects feat(k-1)'s exported volatile set; feat(k) consumes
    // vol(k). The two kinds are mutually recursive across declaration
    // indices, so they share their ids through a cell filled below.
    let feat_cell: Arc<std::sync::OnceLock<KindId>> = Arc::new(std::sync::OnceLock::new());

    let reg = Arc::clone(registry);
    let feat_for_vol = Arc::clone(&feat_cell);
    let vol = db.register_query("volatile", move |db, key| {
        let (slot, k) = slot_of(&reg, db, key);
        let names = if k == 0 {
            Vec::new()
        } else {
            let feat = *feat_for_vol.get().expect("feat kind registered");
            let prev = db.intern2(slot.id, k as u64 - 1);
            db.get::<FeatArt>(feat, prev).volatile_after.clone()
        };
        let fp = fingerprint_of(&names);
        (Arc::new(VolArt { names }) as DynValue, fp)
    });

    let reg = Arc::clone(registry);
    let feat = db.register_query("features", move |db, key| {
        let (_slot, _k) = slot_of(&reg, db, key);
        let p = db.get::<ParseArt>(parse, key);
        let v = db.get::<VolArt>(vol, key);
        let (features, volatile_after) = match p.ast.as_ref() {
            Some(ast) => {
                let before: FxHashSet<String> = v.names.iter().cloned().collect();
                let df = features::decl_features(&ast.unit.decls[0], &before);
                let mut after: Vec<String> = df.volatile_after.into_iter().collect();
                after.sort_unstable();
                (df.features, after)
            }
            // Unparseable chunks never reach a stitch; pass the set along.
            None => (features::AstFeatures::default(), v.names.clone()),
        };
        let fp = fp_args(format_args!("{features:?}|{volatile_after:?}"));
        (
            Arc::new(FeatArt {
                features,
                volatile_after,
            }) as DynValue,
            fp,
        )
    });
    feat_cell.set(feat).expect("feat kind set once");

    let reg = Arc::clone(registry);
    let lower = db.register_query("lower", move |db, key| {
        let (slot, _k) = slot_of(&reg, db, key);
        let p = db.get::<ParseArt>(parse, key);
        let s = db.get::<SemaArt>(sema, key);
        let (features, func) = match (p.ast.as_ref(), s.ok.as_ref()) {
            (Some(ast), Some(ok)) => {
                // Lowering consults only the final whole-program tables for
                // cross-declaration facts; the environment-fingerprint
                // guard proves they are still the seed's.
                let hybrid = SemaResult {
                    functions: slot.final_functions.clone(),
                    records: slot.final_records.clone(),
                    enum_consts: slot.final_enum_consts.clone(),
                    ..ok.sema.clone()
                };
                let ld = lower::lower_decl(&ast.unit.decls[0], &hybrid);
                (ld.features, ld.function)
            }
            _ => (Vec::new(), None),
        };
        // Lowering is deterministic in the parse (the slot's final tables
        // are fixed), so the fingerprint derives from the parse fingerprint
        // instead of hashing the produced IR. Early cutoff at this node
        // cannot fire anyway: the memo only recomputes when the parse
        // fingerprint changed, and then this fingerprint changes with it.
        let fp = fingerprint_of(&("lower", p.fp));
        (Arc::new(LowerArt { features, func, fp }) as DynValue, fp)
    });

    let reg = Arc::clone(registry);
    let opt_a = db.register_query("opt-pre", move |db, key| {
        let (slot, _k) = slot_of(&reg, db, key);
        let lw = db.get::<LowerArt>(lower, key);
        let opt_level = slot.options.opt_level;
        let art = match lw.func.clone() {
            Some(mut f) => {
                let mut report = OptReport::default();
                let mut counts = Vec::new();
                opt_stage_a(&mut f, opt_level, &mut report, &mut counts);
                let trivial = if opt_level >= 2 {
                    passes::trivial_body_of(&f)
                } else {
                    None
                };
                // Deterministic in the lowered IR, so derive the
                // fingerprint from the input fingerprint instead of
                // Debug-streaming the rewritten function.
                let fp = fingerprint_of(&("opt_a", lw.fp));
                OptAArt {
                    func: Some(f),
                    counts,
                    features: report.features,
                    trivial,
                    fp,
                }
            }
            None => OptAArt {
                func: None,
                counts: Vec::new(),
                features: Vec::new(),
                trivial: None,
                fp: lw.fp,
            },
        };
        let fp = art.fp;
        (Arc::new(art) as DynValue, fp)
    });

    let reg = Arc::clone(registry);
    let trivial = db.register_query("trivial", move |db, key| {
        let (slot, _) = slot_of(&reg, db, key);
        let mut map: FxHashMap<String, (Vec<Inst>, Option<Value>)> = FxHashMap::default();
        if slot.options.opt_level >= 2 {
            for k in 0..slot.chunk_hashes.len() {
                let a = db.get::<OptAArt>(opt_a, db.intern2(slot.id, k as u64));
                if let (Some(f), Some(body)) = (a.func.as_ref(), a.trivial.clone()) {
                    map.insert(f.name.clone(), body);
                }
            }
        }
        let mut names: Vec<&String> = map.keys().collect();
        names.sort_unstable();
        let fp = {
            use std::fmt::Write as _;
            let mut w = FpWriter(metamut_lang::fxhash::FxHasher::default());
            for n in names {
                let _ = write!(w, "{n}={:?};", map[n]);
            }
            std::hash::Hasher::finish(&w.0)
        };
        (Arc::new(TrivialArt { map }) as DynValue, fp)
    });

    let reg = Arc::clone(registry);
    let opt = db.register_query("opt", move |db, key| {
        let (slot, _k) = slot_of(&reg, db, key);
        let a = db.get::<OptAArt>(opt_a, key);
        let opt_level = slot.options.opt_level;
        let art = match a.func.clone() {
            Some(mut f) => {
                let (tv_dyn, tv_fp) = db.fetch(trivial, db.intern2(slot.id, SLOT_WIDE));
                let tv = tv_dyn
                    .downcast::<TrivialArt>()
                    .expect("trivial artifact type");
                let mut report = OptReport {
                    features: a.features.clone(),
                    ..OptReport::default()
                };
                let mut counts = a.counts.clone();
                opt_stage_b(
                    &mut f,
                    &tv.map,
                    opt_level,
                    &slot.options.flags,
                    &mut report,
                    &mut counts,
                );
                let inlined = if opt_level >= 2 {
                    counts[INLINE_IDX]
                } else {
                    0
                };
                // Deterministic in (pre-pass IR, trivial-body table), so
                // combine those two fingerprints rather than hashing the
                // optimized function's Debug stream.
                let fp = fingerprint_of(&("opt", a.fp, tv_fp));
                OptArt {
                    func: Some(f),
                    counts,
                    features: report.features,
                    loops: report.loops,
                    strlen: report.strlen_reductions,
                    inlined,
                    fp,
                }
            }
            None => OptArt {
                func: None,
                counts: Vec::new(),
                features: Vec::new(),
                loops: Vec::new(),
                strlen: Vec::new(),
                inlined: 0,
                fp: a.fp,
            },
        };
        let fp = art.fp;
        (Arc::new(art) as DynValue, fp)
    });

    let reg = Arc::clone(registry);
    let codegen = db.register_query("codegen", move |db, key| {
        let (_slot, _k) = slot_of(&reg, db, key);
        let o = db.get::<OptArt>(opt, key);
        let art = match o.func.as_ref() {
            Some(f) => {
                let asm = crate::backend::codegen_one(f);
                let fp = fingerprint_of(&(
                    &asm.features,
                    asm.insts.len(),
                    asm.spills,
                    asm.peak_pressure,
                ));
                CodegenArt {
                    features: asm.features,
                    len: asm.insts.len(),
                    spills: asm.spills,
                    peak: asm.peak_pressure,
                    fp,
                }
            }
            None => CodegenArt {
                features: Vec::new(),
                len: 0,
                spills: 0,
                peak: 0,
                fp: o.fp,
            },
        };
        let fp = art.fp;
        (Arc::new(art) as DynValue, fp)
    });

    let _ = (vol, opt_a, trivial);
    Kinds {
        chunk,
        parse,
        sema,
        feat,
        lower,
        opt,
        codegen,
    }
}

impl SimcompQueries {
    fn new(db: &QueryDb) -> SimcompQueries {
        let registry: Registry = Arc::new(Mutex::new(FxHashMap::default()));
        let kinds = register_kinds(db, &registry);
        SimcompQueries {
            kinds,
            registry,
            by_key: Mutex::new(FxHashMap::default()),
            slot_seq: AtomicU64::new(0),
            use_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            slot_evictions: AtomicU64::new(0),
        }
    }
}

// ----------------------------------------------------------------------
// QueryCache
// ----------------------------------------------------------------------

/// The campaign-facing entry point of query-based incremental compilation:
/// a seed → slot cache over a shared [`QueryDb`].
///
/// Drop-in successor of [`crate::BaselineCache`] with the same counters and
/// `compile(compiler, seed, mutant)` contract, plus: mutants may edit *any*
/// number of function-definition declarations (each recompiles only its
/// dirty query slices), all workers share one memo table, and eviction is
/// LRU over seed slots (retiring a slot drops its memos from the database).
///
/// Cloning the cache is cheap and shares everything — state lives on the
/// database, so independently constructed caches over the same `QueryDb`
/// also share slots and memos.
#[derive(Clone)]
pub struct QueryCache {
    db: Arc<QueryDb>,
    state: Arc<SimcompQueries>,
    cross_check_every: usize,
    /// Seed-slot cap (`usize::MAX` = unbounded).
    cap: usize,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("slots", &self.len())
            .field("db", &self.db)
            .finish()
    }
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new(Arc::new(QueryDb::new()))
    }
}

impl QueryCache {
    /// A cache over `db`, registering the compiler's query kinds on first
    /// use of that database.
    pub fn new(db: Arc<QueryDb>) -> QueryCache {
        let state = {
            let db_ref: &QueryDb = &db;
            db.extension(|| SimcompQueries::new(db_ref))
        };
        QueryCache {
            db,
            state,
            cross_check_every: 0,
            cap: usize::MAX,
        }
    }

    /// Recompile every `every`-th fast-path result cold and compare
    /// bit-for-bit (`0` disables). A mismatch bumps
    /// [`QueryCache::mismatches`] (and the `query_mismatches` telemetry
    /// counter) and returns the cold result — correctness first.
    #[must_use]
    pub fn with_cross_check(mut self, every: usize) -> QueryCache {
        self.cross_check_every = every;
        self
    }

    /// Caps the cache at `cap` seed slots (`0` = unbounded), evicting the
    /// least-recently-used slot — and its memoized queries — when full.
    #[must_use]
    pub fn with_capacity(mut self, cap: usize) -> QueryCache {
        self.cap = if cap == 0 { usize::MAX } else { cap };
        self
    }

    /// The shared database (for layering other components — e.g. the UB
    /// gate — onto the same memo store).
    pub fn db(&self) -> &Arc<QueryDb> {
        &self.db
    }

    fn stamp(&self) -> u64 {
        self.state.use_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Compiles `mutant` as an edit of `seed`: through the query engine
    /// when the seed has a validated slot and every dirty declaration
    /// passes the guards, cold otherwise. Bit-identical to
    /// [`Compiler::compile`] either way.
    pub fn compile(&self, compiler: &Compiler, seed: &str, mutant: &str) -> CompileResult {
        let Some(slot) = self.slot(compiler, seed) else {
            self.state.misses.fetch_add(1, Ordering::Relaxed);
            return compiler.compile(mutant);
        };
        // One mutant at a time per slot: a compile repoints the slot's
        // chunk inputs at its own mutant text.
        let _serialize = slot.lock.lock();
        if mutant == seed {
            self.state.hits.fetch_add(1, Ordering::Relaxed);
            return slot.seed_result.clone();
        }
        let handle = metamut_telemetry::handle();
        let t0 = handle.enabled().then(std::time::Instant::now);
        match self.try_query(compiler, &slot, mutant) {
            Ok(result) => {
                self.state.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = t0 {
                    let spent = t.elapsed().as_secs_f64() * 1e3;
                    handle.observe("query_saved_ms", (slot.cold_ms - spent).max(0.0));
                }
                let n = self.state.compiles.fetch_add(1, Ordering::Relaxed);
                if self.cross_check_every > 0 && n.is_multiple_of(self.cross_check_every as u64) {
                    let cold = compiler.compile(mutant);
                    if result.outcome != cold.outcome
                        || !coverage_equal(&result.coverage, &cold.coverage)
                    {
                        self.state.mismatches.fetch_add(1, Ordering::Relaxed);
                        metamut_telemetry::handle().counter_add("query_mismatches", 1);
                        return cold;
                    }
                }
                result
            }
            Err(label) => {
                self.state.misses.fetch_add(1, Ordering::Relaxed);
                if handle.enabled() {
                    handle.counter_add(&metamut_telemetry::labeled("query_fallbacks", label), 1);
                }
                compiler.compile(mutant)
            }
        }
    }

    /// The guarded query-engine path. `Err` carries the stage label at
    /// which the guards bailed.
    fn try_query(
        &self,
        compiler: &Compiler,
        slot: &Arc<SlotState>,
        mutant: &str,
    ) -> Result<CompileResult, &'static str> {
        let Some((tokens, chunks)) = metamut_lang::split_source(mutant) else {
            return Err(FRONT);
        };
        if chunks.len() != slot.chunk_hashes.len() {
            return Err(FRONT);
        }
        let hashes: Vec<u64> = chunks.iter().map(|ch| ch.hash).collect();
        let dirty = metamut_query::dirty_set(&slot.chunk_hashes, &hashes).expect("lengths checked");
        // Only function-definition edits keep the rest of the slot valid:
        // globals, typedefs, records and enum constants all change what
        // later declarations see.
        for &k in &dirty {
            if !slot.fn_decl[k] {
                return Err(FRONT);
            }
        }
        let kinds = self.state.kinds;
        for (k, ch) in chunks.iter().enumerate() {
            self.db.set_input(
                kinds.chunk,
                self.db.intern2(slot.id, k as u64),
                Arc::new(ch.text(mutant).to_string()),
                ch.hash,
            );
        }
        for &k in &dirty {
            let key = self.db.intern2(slot.id, k as u64);
            let p = self.db.get::<ParseArt>(kinds.parse, key);
            if !p.fn_def {
                return Err(FRONT);
            }
            let s = self.db.get::<SemaArt>(kinds.sema, key);
            let Some(ok) = s.ok.as_ref() else {
                return Err(FRONT);
            };
            // The edit must leave the environment later declarations
            // observe untouched, or their cached sema is stale.
            if ok.after_fp != slot.fingerprints[k + 1] {
                return Err(FRONT);
            }
        }
        self.stitch_from_queries(compiler, slot, mutant, &tokens)
    }

    /// Demands every per-declaration artifact from the engine and replays
    /// the cold pipeline's coverage/bug-check order over them.
    fn stitch_from_queries(
        &self,
        compiler: &Compiler,
        slot: &Arc<SlotState>,
        src: &str,
        tokens: &[Token],
    ) -> Result<CompileResult, &'static str> {
        let db = &self.db;
        let kinds = self.state.kinds;
        let mut arts = Vec::with_capacity(slot.chunk_hashes.len());
        for k in 0..slot.chunk_hashes.len() {
            let key = db.intern2(slot.id, k as u64);
            let p = db.get::<ParseArt>(kinds.parse, key);
            if p.ast.is_none() {
                return Err(FRONT);
            }
            let s = db.get::<SemaArt>(kinds.sema, key);
            let Some(ok) = s.ok.as_ref() else {
                return Err(FRONT);
            };
            let ft = db.get::<FeatArt>(kinds.feat, key);
            let lw = db.get::<LowerArt>(kinds.lower, key);
            let func = if lw.func.is_some() {
                let o = db.get::<OptArt>(kinds.opt, key);
                let cg = db.get::<CodegenArt>(kinds.codegen, key);
                Some(FnArtifacts {
                    opt_features: o.features.clone(),
                    counts: o.counts.clone(),
                    loops: o.loops.clone(),
                    strlen: o.strlen.clone(),
                    inlined: o.inlined,
                    asm_features: cg.features.clone(),
                    asm_len: cg.len,
                    asm_spills: cg.spills,
                    asm_peak: cg.peak,
                })
            } else {
                None
            };
            arts.push(DeclArtifacts {
                code6: p.code6,
                ty_feats: ok.ty_feats.clone(),
                feats: ft.features.clone(),
                // The stitch replay never reads the volatile sets — they
                // live in the vol/feat queries now.
                volatile_before: FxHashSet::default(),
                volatile_after: FxHashSet::default(),
                lower_features: lw.features.clone(),
                func,
            });
        }
        let refs: Vec<&DeclArtifacts> = arts.iter().collect();
        Ok(compiler.stitch(src, tokens, slot.tag8, slot.tag9, &refs))
    }

    /// Returns the ready slot for `seed`, building and validating it on
    /// first sight; `None` = uncacheable seed (always compiles cold).
    fn slot(&self, compiler: &Compiler, seed: &str) -> Option<Arc<SlotState>> {
        let key = format!(
            "{:?}|{}|{seed}",
            compiler.profile(),
            compiler.options().render()
        );
        let stamp = self.stamp();
        {
            let map = self.state.by_key.lock();
            if let Some(handle) = map.get(&key) {
                return match handle {
                    SlotHandle::Dud(used) => {
                        used.store(stamp, Ordering::Relaxed);
                        None
                    }
                    SlotHandle::Ready(slot) => {
                        slot.last_used.store(stamp, Ordering::Relaxed);
                        Some(Arc::clone(slot))
                    }
                };
            }
        }
        // Build outside the lock: slot construction runs the whole cold
        // pipeline plus the end-to-end validation below.
        let built = self.build_slot(compiler, seed);
        let mut map = self.state.by_key.lock();
        if let Some(existing) = map.get(&key) {
            // A racing build won; retire ours wholesale.
            if let Some(slot) = &built {
                self.state.registry.lock().remove(&slot.id);
                self.db.evict_group(slot.id);
            }
            return match existing {
                SlotHandle::Dud(_) => None,
                SlotHandle::Ready(slot) => Some(Arc::clone(slot)),
            };
        }
        self.evict_for_room(&mut map);
        map.insert(
            key,
            match &built {
                Some(slot) => SlotHandle::Ready(Arc::clone(slot)),
                None => SlotHandle::Dud(AtomicU64::new(stamp)),
            },
        );
        built
    }

    /// LRU slot eviction: drops the least-recently-used entries (and their
    /// memoized queries) until the cache is under its cap.
    fn evict_for_room(&self, map: &mut FxHashMap<String, SlotHandle>) {
        while map.len() >= self.cap {
            let victim = map
                .iter()
                .min_by_key(|(_, h)| match h {
                    SlotHandle::Dud(used) => used.load(Ordering::Relaxed),
                    SlotHandle::Ready(slot) => slot.last_used.load(Ordering::Relaxed),
                })
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { return };
            if let Some(SlotHandle::Ready(slot)) = map.remove(&victim) {
                self.state.registry.lock().remove(&slot.id);
                self.db.evict_group(slot.id);
            }
            self.state.slot_evictions.fetch_add(1, Ordering::Relaxed);
            metamut_telemetry::handle().counter_add("query_slot_evictions", 1);
        }
    }

    /// Builds a slot for `seed` and validates it end-to-end: the seed
    /// pushed through the queries and stitched must be bit-identical to
    /// its cold compile. `None` means mutants of this seed always compile
    /// cold — never that they compile wrong.
    fn build_slot(&self, compiler: &Compiler, seed: &str) -> Option<Arc<SlotState>> {
        let t0 = std::time::Instant::now();
        let seed_result = compiler.compile(seed);
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

        let (tokens, chunks) = metamut_lang::split_source(seed)?;
        let ast = metamut_lang::parse("<seed>", seed).ok()?;
        if chunks.len() != ast.unit.decls.len() {
            return None;
        }
        for (ch, d) in chunks.iter().zip(&ast.unit.decls) {
            let ds = d.span();
            if !(ch.span.lo <= ds.lo && ds.hi <= ch.span.hi) {
                return None;
            }
        }
        let inc = metamut_lang::analyze_decls(&ast).ok()?;
        let full = metamut_lang::analyze(&ast).ok()?;
        let fn_decl = ast
            .unit
            .decls
            .iter()
            .map(|d| matches!(d, c::ExternalDecl::Function(f) if f.is_definition()))
            .collect();
        let tag8 = full.records.len().min(32) as u64;
        let tag9 = full.functions.len().min(64) as u64;
        let slot = Arc::new(SlotState {
            id: self.state.slot_seq.fetch_add(1, Ordering::Relaxed) + 1,
            options: compiler.options().clone(),
            chunk_hashes: chunks.iter().map(|ch| ch.hash).collect(),
            fingerprints: inc
                .snapshots
                .iter()
                .map(SemaSnapshot::fingerprint)
                .collect(),
            snapshots: inc.snapshots,
            final_functions: full.functions,
            final_records: full.records,
            final_enum_consts: full.enum_consts,
            tag8,
            tag9,
            fn_decl,
            seed_result,
            cold_ms,
            last_used: AtomicU64::new(self.stamp()),
            lock: Mutex::new(()),
        });
        self.state
            .registry
            .lock()
            .insert(slot.id, Arc::clone(&slot));

        // Prime the slot: push the seed's own chunks and demand the whole
        // stitched compile. Bit-equality with the cold result validates
        // the entire per-declaration decomposition at once (the analogue
        // of Baseline::build's stage-by-stage self-checks).
        let kinds = self.state.kinds;
        for (k, ch) in chunks.iter().enumerate() {
            self.db.set_input(
                kinds.chunk,
                self.db.intern2(slot.id, k as u64),
                Arc::new(ch.text(seed).to_string()),
                ch.hash,
            );
        }
        let consistent = (0..chunks.len()).all(|k| {
            let s = self
                .db
                .get::<SemaArt>(kinds.sema, self.db.intern2(slot.id, k as u64));
            s.ok.as_ref()
                .is_some_and(|ok| ok.after_fp == slot.fingerprints[k + 1])
        });
        let validated = consistent
            && match self.stitch_from_queries(compiler, &slot, seed, &tokens) {
                Ok(stitched) => {
                    stitched.outcome == slot.seed_result.outcome
                        && coverage_equal(&stitched.coverage, &slot.seed_result.coverage)
                }
                Err(_) => false,
            };
        if !validated {
            self.state.registry.lock().remove(&slot.id);
            self.db.evict_group(slot.id);
            return None;
        }
        Some(slot)
    }

    /// Fast-path compiles served by the query engine.
    pub fn hits(&self) -> u64 {
        self.state.hits.load(Ordering::Relaxed)
    }

    /// Cold-fallback compiles (including uncacheable seeds).
    pub fn misses(&self) -> u64 {
        self.state.misses.load(Ordering::Relaxed)
    }

    /// Cross-check disagreements observed (should stay zero).
    pub fn mismatches(&self) -> u64 {
        self.state.mismatches.load(Ordering::Relaxed)
    }

    /// Seed slots retired by the capacity cap.
    pub fn evictions(&self) -> u64 {
        self.state.slot_evictions.load(Ordering::Relaxed)
    }

    /// Fast-path rate over all compiles served so far.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }

    /// Number of cached seed entries (including uncacheable markers).
    pub fn len(&self) -> usize {
        self.state.by_key.lock().len()
    }

    /// Whether no seed has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Outcome, Profile};

    const SEED: &str = r#"
typedef int T;
int g = 3;
volatile int vg;
struct P { int x; int y; };
static int helper(int a) { return a + g; }
int fold(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc + helper(i);
    }
    return acc;
}
int weigh(struct P p) {
    int s = p.x + p.y;
    if (s > 10) { s = s - vg; }
    return s;
}
int main() {
    struct P p;
    p.x = 4;
    p.y = 9;
    T t = fold(5);
    return t + weigh(p);
}
"#;

    fn configurations() -> Vec<Compiler> {
        let mut v = Vec::new();
        for profile in [Profile::Gcc, Profile::Clang] {
            for options in [
                CompileOptions::o0(),
                CompileOptions::o2(),
                CompileOptions::o3(),
            ] {
                v.push(Compiler::new(profile, options.clone()));
            }
        }
        v
    }

    fn assert_equivalent(compiler: &Compiler, cache: &QueryCache, mutant: &str) {
        let cold = compiler.compile(mutant);
        let inc = cache.compile(compiler, SEED, mutant);
        assert_eq!(
            inc.outcome,
            cold.outcome,
            "outcome diverged under {:?} {}",
            compiler.profile(),
            compiler.options().render()
        );
        assert!(
            coverage_equal(&inc.coverage, &cold.coverage),
            "coverage diverged under {:?} {}",
            compiler.profile(),
            compiler.options().render()
        );
    }

    #[test]
    fn single_function_edit_takes_the_fast_path_everywhere() {
        let mutant = SEED.replace("acc = acc + helper(i);", "acc = acc + helper(i) + 1;");
        for compiler in configurations() {
            let cache = QueryCache::default();
            assert_equivalent(&compiler, &cache, &mutant);
            assert_eq!(cache.hits(), 1, "expected the query fast path");
            assert_eq!(cache.misses(), 0);
        }
    }

    #[test]
    fn multi_declaration_edits_take_the_fast_path() {
        // Three function bodies edited at once — beyond the PR 4 cache.
        let mutant = SEED
            .replace("return a + g;", "return a + g + 2;")
            .replace("acc = acc + helper(i);", "acc = acc + helper(i) - 1;")
            .replace("s = s - vg;", "s = s - vg + 3;");
        for compiler in configurations() {
            let cache = QueryCache::default();
            assert_equivalent(&compiler, &cache, &mutant);
            assert_eq!(cache.hits(), 1, "expected the query fast path");
        }
    }

    #[test]
    fn volatile_set_changes_recompute_instead_of_bailing() {
        // Adding a volatile local changes the cross-declaration volatile
        // chain — the PR 4 guard chain bails here; the engine recomputes
        // the downstream feature queries and stays on the fast path.
        let mutant = SEED.replace(
            "int acc = 0;",
            "volatile int shadow = 1; int acc = 0 * shadow;",
        );
        for compiler in configurations() {
            let cache = QueryCache::default();
            assert_equivalent(&compiler, &cache, &mutant);
            assert_eq!(cache.hits(), 1, "expected the query fast path");
        }
    }

    #[test]
    fn early_cutoff_fires_on_body_edits() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let db = Arc::new(QueryDb::new());
        let cache = QueryCache::new(Arc::clone(&db));
        let mutant = SEED.replace("p.x = 4;", "p.x = 5;");
        assert_equivalent(&compiler, &cache, &mutant);
        // The edited body's features/trivial entries recompute but
        // fingerprint identically, so the volatile chain and the other
        // functions' opt/codegen queries stay green.
        assert!(
            db.early_cutoffs() > 0,
            "a body edit should early-cut the invalidation wave"
        );
    }

    #[test]
    fn signature_changes_fall_back_cold() {
        let mutant = SEED.replace("static int helper(int a)", "static long helper(long a)");
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        assert_equivalent(&compiler, &cache, &mutant);
        assert_eq!(cache.hits(), 0);
        assert!(cache.misses() > 0);
    }

    #[test]
    fn non_function_edits_fall_back_cold() {
        let mutant = SEED.replace("int g = 3;", "int g = 4;");
        let compiler = Compiler::new(Profile::Clang, CompileOptions::o3());
        let cache = QueryCache::default();
        assert_equivalent(&compiler, &cache, &mutant);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn declaration_count_changes_fall_back_cold() {
        let mutant = format!("{SEED}\nint extra(void) {{ return 1; }}\n");
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        assert_equivalent(&compiler, &cache, &mutant);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn seed_identical_mutants_reuse_the_seed_result() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        let first = cache.compile(&compiler, SEED, SEED);
        assert_eq!(first.outcome, compiler.compile(SEED).outcome);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn editing_then_reverting_stays_consistent() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        let mutant = SEED.replace("return acc;", "return acc + 7;");
        assert_equivalent(&compiler, &cache, &mutant);
        // Flipping the chunk back to the seed text must reproduce the
        // seed's own artifacts, not the mutant's.
        let reverted = cache.compile(&compiler, SEED, SEED);
        assert_eq!(reverted.outcome, compiler.compile(SEED).outcome);
        assert_equivalent(&compiler, &cache, &mutant);
    }

    #[test]
    fn unparseable_seeds_are_remembered_as_duds() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        let seed = "int broken( { return 0; }";
        let mutant = "int broken( { return 1; }";
        let cold = compiler.compile(mutant);
        let inc = cache.compile(&compiler, seed, mutant);
        assert_eq!(inc.outcome, cold.outcome);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1, "the dud seed is cached as uncacheable");
    }

    #[test]
    fn capacity_cap_evicts_lru_slots_and_their_memos() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let db = Arc::new(QueryDb::new());
        let cache = QueryCache::new(Arc::clone(&db)).with_capacity(1);
        let seed_b = SEED.replace("int g = 3;", "int g = 30;");
        let mutant_a = SEED.replace("p.x = 4;", "p.x = 6;");
        let mutant_b = seed_b.replace("p.x = 4;", "p.x = 6;");
        assert_equivalent(&compiler, &cache, &mutant_a);
        let memos_one_slot = db.len();
        // A second seed must evict the first slot and its memos.
        let cold = compiler.compile(&mutant_b);
        let inc = cache.compile(&compiler, &seed_b, &mutant_b);
        assert_eq!(inc.outcome, cold.outcome);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 1);
        assert!(
            db.len() <= memos_one_slot,
            "evicting a slot must drop its memos from the database"
        );
    }

    #[test]
    fn cross_check_stays_clean() {
        let compiler = Compiler::new(Profile::Clang, CompileOptions::o3());
        let cache = QueryCache::default().with_cross_check(1);
        for (i, edit) in [
            ("p.x = 4;", "p.x = 14;"),
            ("return s;", "return s * 2;"),
            ("T t = fold(5);", "T t = fold(6);"),
        ]
        .iter()
        .enumerate()
        {
            let mutant = SEED.replace(edit.0, edit.1);
            assert_equivalent(&compiler, &cache, &mutant);
            assert_eq!(cache.hits(), i as u64 + 1);
        }
        assert_eq!(cache.mismatches(), 0);
    }

    #[test]
    fn caches_layered_over_one_db_share_slots() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let db = Arc::new(QueryDb::new());
        let a = QueryCache::new(Arc::clone(&db));
        let b = QueryCache::new(Arc::clone(&db));
        let mutant = SEED.replace("p.y = 9;", "p.y = 19;");
        assert_equivalent(&compiler, &a, &mutant);
        // The second cache sees the slot the first one built.
        assert_eq!(b.len(), 1);
        let recomputes = db.recomputes();
        let inc = b.compile(&compiler, SEED, &mutant);
        assert_eq!(inc.outcome, compiler.compile(&mutant).outcome);
        assert!(
            db.recomputes() <= recomputes + 2,
            "the shared slot should serve the repeat compile green"
        );
    }

    #[test]
    fn crashing_mutants_reproduce_cold_crashes() {
        // Deep ternary nesting trips the Clang front-end bug across opt
        // levels; the stitched replay must reproduce the crash signature
        // and the coverage truncation point.
        let mutant = SEED.replace(
            "int s = p.x + p.y;",
            "int s = (p.x > 0 ? (p.y > 0 ? (p.x > 1 ? (p.y > 1 ? (p.x > 2 ? (p.y > 2 ? (p.x > 3 ? (p.y > 3 ? (p.x > 4 ? (p.y > 4 ? (p.x > 5 ? (p.y > 5 ? (p.x > 6 ? (p.y > 6 ? 1 : 2) : 3) : 4) : 5) : 6) : 7) : 8) : 9) : 10) : 11) : 12) : 13) : 14) : p.y);",
        );
        for compiler in configurations() {
            let cache = QueryCache::default();
            let cold = compiler.compile(&mutant);
            let inc = cache.compile(&compiler, SEED, &mutant);
            assert_eq!(inc.outcome, cold.outcome);
            assert!(coverage_equal(&inc.coverage, &cold.coverage));
            if let (Outcome::Crash(a), Outcome::Crash(b)) = (&inc.outcome, &cold.outcome) {
                assert_eq!(a.signature(), b.signature());
            }
        }
    }
}
