//! Content-addressed incremental compilation: the pipeline as shared,
//! input-addressed memos.
//!
//! PR 7 keyed the per-declaration pipeline by *slot-relative* indices
//! (`(seed slot, declaration k)`), so a declaration appearing
//! byte-identically in two seeds — or two tenants of the serve daemon —
//! was compiled twice. This revision re-keys every deterministic stage by
//! *content*: the memo key is a collision-resistant 128-bit hash of
//! exactly the inputs the stage can observe, so the key IS the input and
//! the memo can never go stale. No red-green validation, no dependency
//! tracking, no input flipping — [`QueryDb::memo_once`] is the whole
//! engine for these stages:
//!
//! ```text
//! parse    H(chunk token hash, typedefs ∩ idents)         mini-parse
//! sema     H(parse key, env-before fingerprint128)        check_decl
//! feat     H(parse key, volatile-before ∩ idents)         AstFeatures partial
//! lower    H(sema key, fn/enum-const facts ∩ idents)      per-decl IR
//! opt-pre  H(lower key, opt level)                        pre-inline passes
//! opt      H(opt-pre key, options, trivial map ∩ idents)  inline-and-later
//! codegen  H(opt key)                                     per-fn assembly
//! ```
//!
//! Each digest is *restricted to the chunk's identifier spellings*: a
//! stage observes the surrounding program only through name lookups
//! (typedef membership, function signatures, enum constants, the
//! volatile set, trivial-inline bodies), so context changes that don't
//! touch a declaration's names leave its keys — and memos — intact.
//! Record layouts are reachable only through types complete at the
//! declaration's own boundary, which the sema-stage environment
//! fingerprint covers. The compile profile is deliberately absent: every
//! stage artifact is profile-independent (profile-specific bug checks
//! live in the stitch replay), so Gcc and Clang share memos too.
//!
//! A compile is a *chain walk*: split the program into chunks, then walk
//! the declarations in order, deriving each boundary's environment
//! (snapshot, fingerprint, typedef set, volatile set, trivial map) from
//! the previous declaration's memos. Seeds sharing a prefix of identical
//! declarations share identical environment chains, so their memos
//! coincide — across mutants of one seed, across seeds of a campaign,
//! across the reducer's candidate stream, across tenants of the serve
//! daemon's shared [`QueryDb`], and even across compile profiles. Each
//! memo records the *origin* (slot or program) that computed it; a hit
//! from a different origin is a cross-seed hit (`query_cross_seed_hits`
//! telemetry, the `xs` status-line field).
//!
//! Seed slots survive only as a thin overlay: the seed's own result (for
//! hash-identical mutants), its interned chunk texts, the validated
//! chunk count that lets count-preserving mutants skip the whole-program
//! re-parse, and the seed's own captured walk ([`SeedChain`]) — for a
//! mutant chunk byte-identical to the seed's under provably identical
//! chain state, the walk reuses the seed's memo handles directly, paying
//! neither key derivation nor database traffic. Everything semantic
//! lives in the shared content memos; the captured walk only shortcuts
//! fetches that would return the very same artifacts.
//! Because a content key needs no pre-built slot, [`QueryCache::compile_program`]
//! serves slotless one-shot compiles (`metamut compile`, the macro
//! fuzzer, reduction candidates that change the declaration count) from
//! the same memo pool, with full per-program validation (whole-program
//! parse, chunk/declaration alignment, merged-features self-check).
//!
//! Correctness is held to the PR 7 bar: slot builds must stitch
//! bit-identically to the seed's cold compile, dirty declarations must
//! mini-parse to exactly one declaration and re-check cleanly, slotless
//! compiles re-validate the whole decomposition per program, and an
//! every-Nth cold cross-check stays available via
//! [`QueryCache::with_cross_check`].

use crate::coverage::feature_hash_display;
use crate::incremental::{
    coverage_equal, opt_stage_a, opt_stage_b, DeclArtifacts, FnArtifacts, INLINE_IDX,
};
use crate::ir::{Inst, IrFunction, Value};
use crate::passes::{LoopInfo, OptReport};
use crate::{features, lower, passes, CompileResult, Compiler};
use metamut_lang::chash::{hash128, Sip128};
use metamut_lang::declsplit::ident_spellings;
use metamut_lang::fxhash::{FxHashMap, FxHashSet};
use metamut_lang::token::Token;
use metamut_lang::{check_decl, Ast, DeclChunk, SemaResult, SemaSnapshot, TextInterner};
use metamut_query::{DynValue, KindId, QueryDb};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Guard-bail label for telemetry (`query_fallbacks{...}`).
const FRONT: &str = "front-end";

/// Estimated shared content memos per live seed slot, used to derive the
/// database-wide memo cap from the slot cap (roughly seven stages times a
/// campaign seed's declaration count).
const MEMOS_PER_SLOT: usize = 128;

// ----------------------------------------------------------------------
// Stage artifacts
// ----------------------------------------------------------------------
//
// Every artifact carries the `origin` (slot id or slotless program id)
// that first computed it; a memo hit whose origin differs from the
// current compile's is a cross-seed hit.

/// `parse`: the chunk mini-parsed under the typedef set visible at its
/// boundary. `ast` is `None` when the chunk fails to parse or parses to
/// more than one declaration.
struct CParse {
    ast: Option<Ast>,
    /// Front-end declaration-shape coverage code (tag 6).
    code6: u64,
    origin: u64,
}

/// `sema`: the declaration checked against its boundary snapshot. The
/// memo stores everything the chain walk needs to cross the boundary in
/// O(1): the after-snapshot, its 128-bit fingerprint, and the typedef
/// set the next chunk's parse key is built from.
struct CSema {
    ok: Option<CSemaOk>,
    origin: u64,
}

struct CSemaOk {
    sema: SemaResult,
    after: Arc<SemaSnapshot>,
    after_fp: u128,
    after_typedefs: Arc<FxHashSet<String>>,
    /// Type-diversity coverage features of this declaration.
    ty_feats: Vec<u64>,
}

/// `feat`: the declaration's [`features::AstFeatures`] partial plus the
/// volatile declarator names it *adds* (sorted). The after-set is
/// `before ∪ exports` — reconstructed by the walk, never stored, so the
/// memo stays valid under any before-set that agrees on the chunk's
/// identifiers.
struct CFeat {
    features: features::AstFeatures,
    exports: Vec<String>,
    origin: u64,
}

/// `lower`: per-declaration IR generation against the final environment
/// facts reachable through the chunk's identifiers.
struct CLower {
    features: Vec<u64>,
    func: Option<IrFunction>,
    origin: u64,
}

/// `opt-pre`: the pre-inlining optimizer stage on one function, plus the
/// function's own trivial-inline body (if any) for the module-wide join.
struct COptA {
    func: Option<IrFunction>,
    counts: Vec<usize>,
    features: Vec<u64>,
    #[allow(clippy::type_complexity)]
    trivial: Option<(String, (Vec<Inst>, Option<Value>))>,
    origin: u64,
}

/// `opt`: the full optimizer output for one function.
struct COpt {
    func: Option<IrFunction>,
    counts: Vec<usize>,
    features: Vec<u64>,
    loops: Vec<LoopInfo>,
    strlen: Vec<(String, bool)>,
    inlined: usize,
    origin: u64,
}

/// `codegen`: per-function back-end artifacts.
struct CCodegen {
    features: Vec<u64>,
    len: usize,
    spills: usize,
    peak: usize,
    origin: u64,
}

// ----------------------------------------------------------------------
// Keys
// ----------------------------------------------------------------------

/// Folds a 128-bit content key into the engine's interned `(u64, u64)`
/// key space. Bit 63 of the first component is forced so content groups
/// can never collide with the small sequential group ids other database
/// users (the UB gate, engine tests) retire via `evict_group`.
fn ckey(db: &QueryDb, k: u128) -> metamut_query::Key {
    db.intern2(((k >> 64) as u64) | (1 << 63), k as u64)
}

/// Derives a stage key: a domain-separation tag plus the parent key.
fn stage_key(tag: &str, parent: u128) -> Sip128 {
    let mut h = Sip128::default();
    h.write_str(tag);
    h.write_u128(parent);
    h
}

/// Digest of `set`-membership over the chunk's sorted identifiers —
/// the typedef and volatile-set restriction digests.
fn membership_digest(h: &mut Sip128, idents: &[&str], set: &FxHashSet<String>) {
    for id in idents {
        if set.contains(*id) {
            h.write_str(id);
        }
    }
}

// ----------------------------------------------------------------------
// Slots
// ----------------------------------------------------------------------

/// The thin per-seed overlay over the shared content memos: everything
/// that is genuinely *per seed* rather than per declaration.
pub(crate) struct SlotState {
    /// Origin id for cross-seed accounting.
    id: u64,
    /// Content hash of the full seed text (hash-compare fast path for
    /// seed-identical mutants).
    seed_hash: u128,
    /// Validated chunk count: mutants preserving it skip the slotless
    /// path's whole-program re-parse.
    chunk_count: usize,
    /// The seed's chunk texts, interned process-wide — seeds of one
    /// family (and the reducer's shrinking witnesses) share most
    /// declarations, so their slots share this storage. The chain walk
    /// byte-compares mutant chunks against these to find reusable ones.
    texts: Vec<Arc<str>>,
    /// The seed's own walk, captured at slot build: memo handles plus
    /// chain state per chunk.
    chain: SeedChain,
    seed_result: CompileResult,
    cold_ms: f64,
    last_used: AtomicU64,
}

/// The seed's validated chain walk, captured at slot build. A mutant
/// chunk byte-identical to the seed's — under chain state the guards
/// below prove identical — reuses these handles directly: no key
/// derivation, no database traffic, no artifact clone. This is the hot
/// path of a campaign (one edited declaration, the rest untouched); the
/// shared content memos remain the slow-but-shared path for everything
/// else.
struct SeedChain {
    chunks: Vec<SeedChunk>,
    /// Environment fingerprint after the last declaration: when a
    /// mutant's walk ends on the same fingerprint, the final
    /// environment — which the lower and opt keys observe — is the
    /// seed's, so back-half handles are reusable too.
    finals_fp: u128,
}

/// One chunk of the captured seed walk. Every handle here is exactly
/// what the content-memo fetch would return for the same keys.
struct SeedChunk {
    /// Environment fingerprint at this chunk's boundary; a mutant walk
    /// re-syncs onto the seed chain whenever its running fingerprint
    /// matches (body-only edits re-sync at the very next declaration).
    env_fp_before: u128,
    parse_key: u128,
    sema_key: u128,
    parse: Arc<CParse>,
    sema: Arc<CSema>,
    feat: Arc<CFeat>,
    lower: Arc<CLower>,
    opt_a: Option<(u128, Arc<COptA>)>,
    /// The fully assembled per-declaration artifacts, ready for the
    /// stitch replay.
    art: DeclArtifacts,
}

/// A cached seed entry: ready for incremental compiles, or a remembered
/// failure (the seed's decomposition did not validate).
enum SlotHandle {
    Dud(AtomicU64),
    Ready(Arc<SlotState>),
}

/// The registered stage kinds (names feed the `query_hits{...}` /
/// `query_recomputes{...}` telemetry families).
#[derive(Clone, Copy)]
struct Kinds {
    parse: KindId,
    sema: KindId,
    feat: KindId,
    lower: KindId,
    opt_a: KindId,
    opt: KindId,
    codegen: KindId,
}

/// Per-database compiler query state, shared by every [`QueryCache`]
/// layered over one [`QueryDb`] (campaign workers, the reduction oracle,
/// every daemon tenant): the stage kinds, the slot table, the chunk-text
/// interner, and the cache counters.
pub(crate) struct SimcompQueries {
    kinds: Kinds,
    by_key: Mutex<FxHashMap<u128, SlotHandle>>,
    interner: TextInterner,
    initial_snapshot: Arc<SemaSnapshot>,
    initial_fp: u128,
    empty_names: Arc<FxHashSet<String>>,
    origin_seq: AtomicU64,
    use_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    mismatches: AtomicU64,
    compiles: AtomicU64,
    slot_evictions: AtomicU64,
    cross_seed: AtomicU64,
}

impl SimcompQueries {
    fn new(db: &QueryDb) -> SimcompQueries {
        let initial = SemaSnapshot::initial();
        let initial_fp = initial.fingerprint128();
        SimcompQueries {
            kinds: Kinds {
                parse: db.register_input("parse"),
                sema: db.register_input("sema"),
                feat: db.register_input("features"),
                lower: db.register_input("lower"),
                opt_a: db.register_input("opt-pre"),
                opt: db.register_input("opt"),
                codegen: db.register_input("codegen"),
            },
            by_key: Mutex::new(FxHashMap::default()),
            interner: TextInterner::new(),
            initial_snapshot: Arc::new(initial),
            initial_fp,
            empty_names: Arc::new(FxHashSet::default()),
            origin_seq: AtomicU64::new(0),
            use_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            slot_evictions: AtomicU64::new(0),
            cross_seed: AtomicU64::new(0),
        }
    }

    /// Fetches (or computes) one stage memo and attributes cross-seed
    /// hits: a hit whose stored origin differs from this compile's was
    /// produced by another seed, tenant, or slotless program.
    #[allow(clippy::too_many_arguments)]
    fn fetch<T: Send + Sync + 'static>(
        &self,
        db: &QueryDb,
        kind: KindId,
        label: &'static str,
        key: u128,
        origin: u64,
        origin_of: impl Fn(&T) -> u64,
        compute: impl FnOnce() -> T,
    ) -> Arc<T> {
        let (v, hit) = db.memo_once(kind, ckey(db, key), || Arc::new(compute()) as DynValue);
        let Ok(art) = v.downcast::<T>() else {
            unreachable!("stage artifact type clash")
        };
        if hit && origin_of(&art) != origin {
            self.cross_seed.fetch_add(1, Ordering::Relaxed);
            let tele = metamut_telemetry::handle();
            if tele.enabled() {
                tele.counter_add(
                    &metamut_telemetry::labeled("query_cross_seed_hits", label),
                    1,
                );
            }
        }
        art
    }
}

// ----------------------------------------------------------------------
// QueryCache
// ----------------------------------------------------------------------

/// The campaign-facing entry point of content-addressed incremental
/// compilation: a seed → slot overlay plus slotless one-shot compiles
/// over a shared [`QueryDb`].
///
/// Same `compile(compiler, seed, mutant)` contract and counters as its
/// slot-keyed predecessor, plus: memo hits flow across seeds, tenants
/// and profiles (the keys are content, not slot indices); *any* edit
/// kind stays on the engine (environment-changing edits recompute
/// downstream declarations instead of falling cold); declaration-count
/// changes take the slotless path; and
/// [`QueryCache::compile_program`] compiles programs with no seed at
/// all from the same memo pool.
///
/// Cloning the cache is cheap and shares everything — state lives on the
/// database, so independently constructed caches over the same `QueryDb`
/// also share slots and memos.
#[derive(Clone)]
pub struct QueryCache {
    db: Arc<QueryDb>,
    state: Arc<SimcompQueries>,
    cross_check_every: usize,
    /// Seed-slot cap (`usize::MAX` = unbounded).
    cap: usize,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("slots", &self.len())
            .field("db", &self.db)
            .finish()
    }
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new(Arc::new(QueryDb::new()))
    }
}

impl QueryCache {
    /// A cache over `db`, registering the compiler's stage kinds on first
    /// use of that database.
    pub fn new(db: Arc<QueryDb>) -> QueryCache {
        let state = {
            let db_ref: &QueryDb = &db;
            db.extension(|| SimcompQueries::new(db_ref))
        };
        QueryCache {
            db,
            state,
            cross_check_every: 0,
            cap: usize::MAX,
        }
    }

    /// Recompile every `every`-th fast-path result cold and compare
    /// bit-for-bit (`0` disables). A mismatch bumps
    /// [`QueryCache::mismatches`] (and the `query_mismatches` telemetry
    /// counter) and returns the cold result — correctness first.
    #[must_use]
    pub fn with_cross_check(mut self, every: usize) -> QueryCache {
        self.cross_check_every = every;
        self
    }

    /// Caps the cache at `cap` seed slots (`0` = unbounded). Retiring a
    /// slot drops its overlay; the shared content memos it referenced
    /// stay for other seeds, bounded separately by an LRU sweep sized at
    /// `cap ×` [`MEMOS_PER_SLOT`].
    #[must_use]
    pub fn with_capacity(mut self, cap: usize) -> QueryCache {
        self.cap = if cap == 0 { usize::MAX } else { cap };
        self
    }

    /// The shared database (for layering other components — e.g. the UB
    /// gate — onto the same memo store).
    pub fn db(&self) -> &Arc<QueryDb> {
        &self.db
    }

    fn stamp(&self) -> u64 {
        self.state.use_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Compiles `mutant` as an edit of `seed`, hashing the mutant here.
    /// Campaign callers that already hashed the mutant (for dedup) should
    /// use [`QueryCache::compile_hashed`] and hash once.
    pub fn compile(&self, compiler: &Compiler, seed: &str, mutant: &str) -> CompileResult {
        self.compile_hashed(compiler, seed, mutant, hash128(mutant.as_bytes()))
    }

    /// Compiles `mutant` as an edit of `seed`: through the shared content
    /// memos when the seed has a validated slot and the chain guards
    /// hold, cold otherwise. Bit-identical to [`Compiler::compile`]
    /// either way. `mutant_hash` must be `chash::hash128` of the mutant
    /// bytes — the campaign computes it once per candidate and threads it
    /// through both the dedup cache and this lookup.
    pub fn compile_hashed(
        &self,
        compiler: &Compiler,
        seed: &str,
        mutant: &str,
        mutant_hash: u128,
    ) -> CompileResult {
        let Some(slot) = self.slot(compiler, seed) else {
            self.state.misses.fetch_add(1, Ordering::Relaxed);
            return compiler.compile(mutant);
        };
        if mutant_hash == slot.seed_hash {
            self.state.hits.fetch_add(1, Ordering::Relaxed);
            return slot.seed_result.clone();
        }
        let handle = metamut_telemetry::handle();
        let t0 = handle.enabled().then(std::time::Instant::now);
        let chained = match metamut_lang::split_source(mutant) {
            // A count-preserving mutant is anchored by the slot's
            // validated decomposition (unchanged chunks are
            // token-identical to validated ones; changed chunks must
            // mini-parse to exactly one declaration); anything else is a
            // structural edit and takes the fully validated slotless
            // walk. Both serve from the same memos.
            Some((tokens, chunks)) if chunks.len() == slot.chunk_count => self
                .chain_walk(
                    compiler,
                    mutant,
                    &tokens,
                    &chunks,
                    slot.id,
                    false,
                    Some(&slot),
                    false,
                )
                .map(|(result, _)| result),
            Some((tokens, chunks)) => {
                self.run_chain(compiler, mutant, &tokens, &chunks, slot.id, true)
            }
            None => Err(FRONT),
        };
        match chained {
            Ok(result) => {
                self.state.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = t0 {
                    let spent = t.elapsed().as_secs_f64() * 1e3;
                    handle.observe("query_saved_ms", (slot.cold_ms - spent).max(0.0));
                }
                self.cross_checked(compiler, mutant, result)
            }
            Err(label) => {
                self.state.misses.fetch_add(1, Ordering::Relaxed);
                if handle.enabled() {
                    handle.counter_add(&metamut_telemetry::labeled("query_fallbacks", label), 1);
                }
                compiler.compile(mutant)
            }
        }
    }

    /// Compiles a program with no seed at all — `metamut compile`, the
    /// macro fuzzer, reduction candidates that changed the declaration
    /// count. Content keys need no pre-built slot, so warm memos (from
    /// campaigns, other programs, or earlier invocations on the shared
    /// database) serve immediately; the result is bit-identical to
    /// [`Compiler::compile`] (cold fallback on any guard failure, same
    /// every-Nth cross-check as the seeded path).
    pub fn compile_program(&self, compiler: &Compiler, src: &str) -> CompileResult {
        // A stable per-content origin: recompiling the same program is
        // a self-hit, not a cross-seed hit. Bit 62 keeps the id range
        // disjoint from the sequential slot ids.
        let origin = (hash128(src.as_bytes()) as u64) | (1 << 62);
        let chained = match metamut_lang::split_source(src) {
            Some((tokens, chunks)) => self.run_chain(compiler, src, &tokens, &chunks, origin, true),
            None => Err(FRONT),
        };
        match chained {
            Ok(result) => {
                self.state.hits.fetch_add(1, Ordering::Relaxed);
                self.cross_checked(compiler, src, result)
            }
            Err(label) => {
                self.state.misses.fetch_add(1, Ordering::Relaxed);
                let handle = metamut_telemetry::handle();
                if handle.enabled() {
                    handle.counter_add(&metamut_telemetry::labeled("query_fallbacks", label), 1);
                }
                compiler.compile(src)
            }
        }
    }

    /// Applies the every-Nth cold cross-check to a fast-path result.
    fn cross_checked(
        &self,
        compiler: &Compiler,
        src: &str,
        result: CompileResult,
    ) -> CompileResult {
        let n = self.state.compiles.fetch_add(1, Ordering::Relaxed);
        if self.cross_check_every > 0 && n.is_multiple_of(self.cross_check_every as u64) {
            let cold = compiler.compile(src);
            if result.outcome != cold.outcome || !coverage_equal(&result.coverage, &cold.coverage) {
                self.state.mismatches.fetch_add(1, Ordering::Relaxed);
                metamut_telemetry::handle().counter_add("query_mismatches", 1);
                return cold;
            }
        }
        result
    }

    /// The content-addressed chain walk: derives every stage of every
    /// declaration from the shared memos, then replays the cold
    /// pipeline's coverage/bug-check order over the artifacts.
    ///
    /// With `validate` set (slot builds, slotless compiles, structural
    /// mutants) the decomposition itself is re-proven per program:
    /// whole-program parse, chunk/declaration count and span alignment,
    /// and the merged per-declaration features must equal the
    /// whole-program features. Count-preserving mutants of a validated
    /// slot skip those checks — their unchanged chunks are
    /// token-identical to validated ones, and their changed chunks are
    /// still required to mini-parse to exactly one declaration and
    /// re-check cleanly (the PR 4/PR 7 composition guarantee).
    ///
    /// `Err` carries the stage label at which the walk bailed; the
    /// caller compiles cold.
    fn run_chain(
        &self,
        compiler: &Compiler,
        src: &str,
        tokens: &[Token],
        chunks: &[DeclChunk],
        origin: u64,
        validate: bool,
    ) -> Result<CompileResult, &'static str> {
        self.chain_walk(compiler, src, tokens, chunks, origin, validate, None, false)
            .map(|(result, _)| result)
    }

    /// The full walk. `anchor` (count-preserving mutants of a validated
    /// slot) enables seed-chain reuse: chunks byte-identical to the
    /// seed's, met under chain state the sync guards prove identical,
    /// take their handles from the captured [`SeedChain`] instead of the
    /// database. `capture` (slot builds) returns the walk itself for the
    /// slot to keep. Reuse is sound because each guard implies key
    /// equality: same text + same environment fingerprint ⇒ same parse
    /// and sema keys; same volatile exports along the way ⇒ same feat
    /// keys; same final fingerprint ⇒ same lower keys; same
    /// trivial-inline contributions ⇒ same opt keys.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn chain_walk(
        &self,
        compiler: &Compiler,
        src: &str,
        tokens: &[Token],
        chunks: &[DeclChunk],
        origin: u64,
        validate: bool,
        anchor: Option<&SlotState>,
        capture: bool,
    ) -> Result<(CompileResult, Option<SeedChain>), &'static str> {
        let n = chunks.len();
        if n == 0 {
            return Err(FRONT);
        }
        let whole = if validate {
            let Ok(ast) = metamut_lang::parse("<content>", src) else {
                return Err(FRONT);
            };
            if ast.unit.decls.len() != n {
                return Err(FRONT);
            }
            for (ch, d) in chunks.iter().zip(&ast.unit.decls) {
                let ds = d.span();
                if !(ch.span.lo <= ds.lo && ds.hi <= ch.span.hi) {
                    return Err(FRONT);
                }
            }
            Some(ast)
        } else {
            None
        };

        let st = &*self.state;
        let db = &*self.db;
        let kinds = st.kinds;
        // Identifier spellings, computed lazily: chunks served from the
        // seed chain never need them.
        let mut idents: Vec<Option<Vec<&str>>> = vec![None; n];
        macro_rules! ids {
            ($k:expr) => {{
                if idents[$k].is_none() {
                    let ch = &chunks[$k];
                    idents[$k] = Some(ident_spellings(src, &tokens[ch.start..ch.end]));
                }
                idents[$k].as_deref().expect("just filled")
            }};
        }

        // ------------------------------------------------------------
        // Pass 1: parse + sema, walking the environment chain. Each
        // boundary's snapshot / fingerprint / typedef set comes from the
        // previous declaration's sema memo, so a shared prefix of
        // declarations shares the whole chain.
        // ------------------------------------------------------------
        let mut snap = Arc::clone(&st.initial_snapshot);
        let mut env_fp = st.initial_fp;
        let mut typedefs = Arc::clone(&st.empty_names);
        let mut parses: Vec<Arc<CParse>> = Vec::with_capacity(n);
        let mut semas: Vec<Arc<CSema>> = Vec::with_capacity(n);
        let mut parse_keys: Vec<u128> = Vec::with_capacity(n);
        let mut sema_keys: Vec<u128> = Vec::with_capacity(n);
        let mut fp_before: Vec<u128> = Vec::with_capacity(n);
        let mut reused1 = vec![false; n];
        for (k, ch) in chunks.iter().enumerate() {
            fp_before.push(env_fp);
            if let Some(slot) = anchor {
                let sc = &slot.chain.chunks[k];
                if env_fp == sc.env_fp_before && ch.text(src) == &*slot.texts[k] {
                    // Byte-identical chunk at a boundary with the seed's
                    // fingerprint: every key this chunk derives equals
                    // the seed's, so the captured handles ARE the memos.
                    let ok = sc.sema.ok.as_ref().expect("validated at slot build");
                    snap = Arc::clone(&ok.after);
                    env_fp = ok.after_fp;
                    typedefs = Arc::clone(&ok.after_typedefs);
                    parses.push(Arc::clone(&sc.parse));
                    semas.push(Arc::clone(&sc.sema));
                    parse_keys.push(sc.parse_key);
                    sema_keys.push(sc.sema_key);
                    reused1[k] = true;
                    continue;
                }
            }
            let parse_key = {
                let mut h = stage_key("parse", ch.hash);
                membership_digest(&mut h, ids!(k), &typedefs);
                h.finish128()
            };
            let text = ch.text(src);
            let tds = Arc::clone(&typedefs);
            let p = st.fetch(
                db,
                kinds.parse,
                "parse",
                parse_key,
                origin,
                |a: &CParse| a.origin,
                move || {
                    let ast = metamut_lang::parse_with_typedefs("<query>", text, &tds)
                        .ok()
                        .filter(|ast| ast.unit.decls.len() == 1);
                    let code6 = ast
                        .as_ref()
                        .map_or(0, |ast| crate::decl_code(&ast.unit.decls[0]));
                    CParse { ast, code6, origin }
                },
            );
            if p.ast.is_none() {
                return Err(FRONT);
            }
            let sema_key = {
                let mut h = stage_key("sema", parse_key);
                h.write_u128(env_fp);
                h.finish128()
            };
            let p2 = Arc::clone(&p);
            let snap2 = Arc::clone(&snap);
            let s = st.fetch(
                db,
                kinds.sema,
                "sema",
                sema_key,
                origin,
                |a: &CSema| a.origin,
                move || {
                    let ok = p2.ast.as_ref().and_then(|ast| {
                        check_decl(&snap2, ast, 0).ok().map(|dc| {
                            let ty_feats = dc
                                .sema
                                .expr_types
                                .values()
                                .map(|qt| feature_hash_display(format_args!("ty:{qt}")))
                                .collect();
                            CSemaOk {
                                after_fp: dc.after.fingerprint128(),
                                after_typedefs: Arc::new(dc.after.typedef_names()),
                                after: Arc::new(dc.after),
                                ty_feats,
                                sema: dc.sema,
                            }
                        })
                    });
                    CSema { ok, origin }
                },
            );
            let Some(ok) = s.ok.as_ref() else {
                return Err("sema");
            };
            snap = Arc::clone(&ok.after);
            env_fp = ok.after_fp;
            typedefs = Arc::clone(&ok.after_typedefs);
            parses.push(p);
            parse_keys.push(parse_key);
            sema_keys.push(sema_key);
            semas.push(s);
        }
        // The environment after the last declaration is the whole
        // program's final state: lowering's signature tables and the
        // module-shape coverage tags derive from it.
        let finals = snap;
        let finals_fp = env_fp;
        let tag8 = finals.records().len().min(32) as u64;
        let tag9 = finals.functions().len().min(64) as u64;
        // Matching final fingerprints ⇒ the final environment (which the
        // lower and opt keys observe) is the seed's, so back-half handles
        // of in-sync chunks are reusable.
        let finals_synced = anchor.is_some_and(|slot| finals_fp == slot.chain.finals_fp);

        // ------------------------------------------------------------
        // Pass 2: features (volatile chain), lowering, pre-inline opt.
        // ------------------------------------------------------------
        let opt_level = compiler.options().opt_level;
        let mut vol_before: FxHashSet<String> = FxHashSet::default();
        let mut vol_synced = anchor.is_some();
        let mut feats: Vec<Arc<CFeat>> = Vec::with_capacity(n);
        let mut lowers: Vec<Arc<CLower>> = Vec::with_capacity(n);
        let mut opt_as: Vec<Option<(u128, Arc<COptA>)>> = Vec::with_capacity(n);
        let mut reused2 = vec![false; n];
        for k in 0..n {
            if let Some(slot) = anchor {
                // Reuse needs the volatile set so far to equal the
                // seed's (⇒ same feat key) and the final environment to
                // be the seed's (⇒ same lower key).
                if reused1[k] && vol_synced && finals_synced {
                    let sc = &slot.chain.chunks[k];
                    for e in &sc.feat.exports {
                        vol_before.insert(e.clone());
                    }
                    feats.push(Arc::clone(&sc.feat));
                    lowers.push(Arc::clone(&sc.lower));
                    opt_as.push(sc.opt_a.clone());
                    reused2[k] = true;
                    continue;
                }
            }
            let feat_key = {
                let mut h = stage_key("feat", parse_keys[k]);
                membership_digest(&mut h, ids!(k), &vol_before);
                h.finish128()
            };
            let p = &parses[k];
            let f = st.fetch(
                db,
                kinds.feat,
                "features",
                feat_key,
                origin,
                |a: &CFeat| a.origin,
                || {
                    let ast = p.ast.as_ref().expect("parse checked in pass 1");
                    let df = features::decl_features(&ast.unit.decls[0], &vol_before);
                    let mut exports: Vec<String> = df
                        .volatile_after
                        .iter()
                        .filter(|v| !vol_before.contains(*v))
                        .cloned()
                        .collect();
                    exports.sort_unstable();
                    CFeat {
                        features: df.features,
                        exports,
                        origin,
                    }
                },
            );
            let lower_key = {
                let mut h = stage_key("lower", sema_keys[k]);
                h.write_u128(finals.lower_env_digest(ids!(k)));
                h.finish128()
            };
            let ok = semas[k].ok.as_ref().expect("sema checked in pass 1");
            let finals2 = Arc::clone(&finals);
            let p2 = Arc::clone(p);
            let lw = st.fetch(
                db,
                kinds.lower,
                "lower",
                lower_key,
                origin,
                |a: &CLower| a.origin,
                move || {
                    let ast = p2.ast.as_ref().expect("parse checked in pass 1");
                    // Lowering consults only final whole-program tables for
                    // cross-declaration facts; the key's restricted digest
                    // covers every name it can look up.
                    let hybrid = SemaResult {
                        functions: finals2.functions().clone(),
                        records: finals2.records().clone(),
                        enum_consts: finals2.enum_consts().clone(),
                        ..ok.sema.clone()
                    };
                    let ld = lower::lower_decl(&ast.unit.decls[0], &hybrid);
                    CLower {
                        features: ld.features,
                        func: ld.function,
                        origin,
                    }
                },
            );
            let oa = if lw.func.is_some() {
                let opt_a_key = {
                    let mut h = stage_key("opt_a", lower_key);
                    h.write(&[opt_level]);
                    h.finish128()
                };
                let lw2 = Arc::clone(&lw);
                let a = st.fetch(
                    db,
                    kinds.opt_a,
                    "opt-pre",
                    opt_a_key,
                    origin,
                    |a: &COptA| a.origin,
                    move || {
                        let mut f = lw2.func.clone().expect("function checked");
                        let mut report = OptReport::default();
                        let mut counts = Vec::new();
                        opt_stage_a(&mut f, opt_level, &mut report, &mut counts);
                        let trivial = if opt_level >= 2 {
                            passes::trivial_body_of(&f).map(|body| (f.name.clone(), body))
                        } else {
                            None
                        };
                        COptA {
                            func: Some(f),
                            counts,
                            features: report.features,
                            trivial,
                            origin,
                        }
                    },
                );
                Some((opt_a_key, a))
            } else {
                None
            };
            for e in &f.exports {
                vol_before.insert(e.clone());
            }
            if let Some(slot) = anchor {
                // An edited chunk keeps the volatile chain in sync iff it
                // exports exactly what the seed's chunk did.
                vol_synced = vol_synced && f.exports == slot.chain.chunks[k].feat.exports;
            }
            feats.push(f);
            lowers.push(lw);
            opt_as.push(oa);
        }

        if let Some(ast) = &whole {
            // The merged per-declaration partials must reproduce the
            // whole-program features exactly — the self-check that
            // anchors the decomposition when there is no validated slot.
            let parts: Vec<features::AstFeatures> =
                feats.iter().map(|f| f.features.clone()).collect();
            if features::merge_decl_features(&parts) != features::ast_features(ast) {
                return Err("features");
            }
        }

        // Module-wide trivial-inline join (plain code, not a memo: the
        // map is a cheap projection of the opt-pre memos).
        let mut trivial: FxHashMap<String, (Vec<Inst>, Option<Value>)> = FxHashMap::default();
        if opt_level >= 2 {
            for oa in opt_as.iter().flatten() {
                if let Some((name, body)) = &oa.1.trivial {
                    trivial.insert(name.clone(), body.clone());
                }
            }
        }
        // The opt keys observe the trivial map: back-half reuse further
        // needs every edited chunk's trivial contribution to equal the
        // seed's (reused chunks contribute the seed's entries verbatim).
        let trivial_synced = finals_synced
            && anchor.is_some_and(|slot| {
                (0..n).all(|k| {
                    reused2[k] || {
                        let ours = opt_as[k].as_ref().and_then(|(_, a)| a.trivial.as_ref());
                        let seeds = slot.chain.chunks[k]
                            .opt_a
                            .as_ref()
                            .and_then(|(_, a)| a.trivial.as_ref());
                        ours == seeds
                    }
                })
            });

        // ------------------------------------------------------------
        // Pass 3: inline-and-later passes + codegen, then stitch.
        // ------------------------------------------------------------
        let options_render = compiler.options().render();
        let mut owned: Vec<Option<DeclArtifacts>> = Vec::with_capacity(n);
        for k in 0..n {
            if reused2[k] && trivial_synced {
                // The seed's assembled artifacts are bit-identical to
                // what the fetches below would produce.
                owned.push(None);
                continue;
            }
            let func = if let Some((opt_a_key, a)) = &opt_as[k] {
                let opt_key = {
                    let mut h = stage_key("opt", *opt_a_key);
                    h.write_str(&options_render);
                    for id in ids!(k) {
                        if let Some(body) = trivial.get(*id) {
                            h.write_str(id);
                            h.write_str(&format!("{body:?}"));
                        }
                    }
                    h.finish128()
                };
                let a2 = Arc::clone(a);
                let flags = compiler.options().flags.clone();
                let trivial_ref = &trivial;
                let o = st.fetch(
                    db,
                    kinds.opt,
                    "opt",
                    opt_key,
                    origin,
                    |a: &COpt| a.origin,
                    move || {
                        let mut f = a2.func.clone().expect("function checked");
                        let mut report = OptReport {
                            features: a2.features.clone(),
                            ..OptReport::default()
                        };
                        let mut counts = a2.counts.clone();
                        opt_stage_b(
                            &mut f,
                            trivial_ref,
                            opt_level,
                            &flags,
                            &mut report,
                            &mut counts,
                        );
                        let inlined = if opt_level >= 2 {
                            counts[INLINE_IDX]
                        } else {
                            0
                        };
                        COpt {
                            func: Some(f),
                            counts,
                            features: report.features,
                            loops: report.loops,
                            strlen: report.strlen_reductions,
                            inlined,
                            origin,
                        }
                    },
                );
                let codegen_key = stage_key("codegen", opt_key).finish128();
                let o2 = Arc::clone(&o);
                let cg = st.fetch(
                    db,
                    kinds.codegen,
                    "codegen",
                    codegen_key,
                    origin,
                    |a: &CCodegen| a.origin,
                    move || {
                        let f = o2.func.as_ref().expect("function checked");
                        let asm = crate::backend::codegen_one(f);
                        CCodegen {
                            features: asm.features,
                            len: asm.insts.len(),
                            spills: asm.spills,
                            peak: asm.peak_pressure,
                            origin,
                        }
                    },
                );
                Some(FnArtifacts {
                    opt_features: o.features.clone(),
                    counts: o.counts.clone(),
                    loops: o.loops.clone(),
                    strlen: o.strlen.clone(),
                    inlined: o.inlined,
                    asm_features: cg.features.clone(),
                    asm_len: cg.len,
                    asm_spills: cg.spills,
                    asm_peak: cg.peak,
                })
            } else {
                None
            };
            let ok = semas[k].ok.as_ref().expect("sema checked in pass 1");
            owned.push(Some(DeclArtifacts {
                code6: parses[k].code6,
                ty_feats: ok.ty_feats.clone(),
                feats: feats[k].features.clone(),
                // The stitch replay never reads the volatile sets — the
                // chain walk threads them through the feat memos.
                volatile_before: FxHashSet::default(),
                volatile_after: FxHashSet::default(),
                lower_features: lowers[k].features.clone(),
                func,
            }));
        }
        let refs: Vec<&DeclArtifacts> = owned
            .iter()
            .enumerate()
            .map(|(k, o)| match o {
                Some(art) => art,
                None => &anchor.expect("reuse implies an anchor").chain.chunks[k].art,
            })
            .collect();
        let result = compiler.stitch(src, tokens, tag8, tag9, &refs);
        drop(refs);
        let chain = capture.then(|| SeedChain {
            finals_fp,
            chunks: (0..n)
                .map(|k| SeedChunk {
                    env_fp_before: fp_before[k],
                    parse_key: parse_keys[k],
                    sema_key: sema_keys[k],
                    parse: Arc::clone(&parses[k]),
                    sema: Arc::clone(&semas[k]),
                    feat: Arc::clone(&feats[k]),
                    lower: Arc::clone(&lowers[k]),
                    opt_a: opt_as[k].clone(),
                    // The capture path never reuses, so every chunk owns
                    // its artifacts.
                    art: owned[k].take().expect("capture computes every chunk"),
                })
                .collect(),
        });
        Ok((result, chain))
    }

    /// Returns the ready slot for `seed`, building and validating it on
    /// first sight; `None` = uncacheable seed (always compiles cold).
    fn slot(&self, compiler: &Compiler, seed: &str) -> Option<Arc<SlotState>> {
        let key = {
            // (profile, options, seed-content) — hashed, never formatted
            // into a seed-sized string.
            let mut h = Sip128::default();
            h.write_str(&format!("{:?}", compiler.profile()));
            h.write_str(&compiler.options().render());
            h.write(seed.as_bytes());
            h.finish128()
        };
        let stamp = self.stamp();
        {
            let map = self.state.by_key.lock();
            if let Some(handle) = map.get(&key) {
                return match handle {
                    SlotHandle::Dud(used) => {
                        used.store(stamp, Ordering::Relaxed);
                        None
                    }
                    SlotHandle::Ready(slot) => {
                        slot.last_used.store(stamp, Ordering::Relaxed);
                        Some(Arc::clone(slot))
                    }
                };
            }
        }
        // Build outside the lock: slot construction runs the whole cold
        // pipeline plus the end-to-end validation below.
        let built = self.build_slot(compiler, seed);
        let mut map = self.state.by_key.lock();
        if let Some(existing) = map.get(&key) {
            // A racing build won; ours only warmed the shared memos.
            return match existing {
                SlotHandle::Dud(_) => None,
                SlotHandle::Ready(slot) => Some(Arc::clone(slot)),
            };
        }
        self.evict_for_room(&mut map);
        map.insert(
            key,
            match &built {
                Some(slot) => SlotHandle::Ready(Arc::clone(slot)),
                None => SlotHandle::Dud(AtomicU64::new(stamp)),
            },
        );
        built
    }

    /// LRU slot eviction: drops the least-recently-used overlays until
    /// the cache is under its cap, then bounds the shared content memos.
    /// Unlike the slot-keyed engine, retiring a slot does *not* drop the
    /// memos it referenced — another seed with the same declarations
    /// still hits them; the database-wide LRU sweep is what bounds
    /// memory.
    fn evict_for_room(&self, map: &mut FxHashMap<u128, SlotHandle>) {
        let mut evicted = false;
        while map.len() >= self.cap {
            let victim = map
                .iter()
                .min_by_key(|(_, h)| match h {
                    SlotHandle::Dud(used) => used.load(Ordering::Relaxed),
                    SlotHandle::Ready(slot) => slot.last_used.load(Ordering::Relaxed),
                })
                .map(|(k, _)| *k);
            let Some(victim) = victim else { return };
            map.remove(&victim);
            evicted = true;
            self.state.slot_evictions.fetch_add(1, Ordering::Relaxed);
            metamut_telemetry::handle().counter_add("query_slot_evictions", 1);
        }
        if evicted && self.cap != usize::MAX {
            self.db.enforce_cap(self.cap.saturating_mul(MEMOS_PER_SLOT));
        }
    }

    /// Builds a slot for `seed` and validates it end-to-end: the seed
    /// pushed through the fully validated chain walk must stitch
    /// bit-identically to its cold compile. `None` means mutants of this
    /// seed always compile cold — never that they compile wrong. The
    /// build itself warms the shared memos, so even a seed compiled once
    /// pays forward to every later program sharing its declarations.
    fn build_slot(&self, compiler: &Compiler, seed: &str) -> Option<Arc<SlotState>> {
        let t0 = std::time::Instant::now();
        let seed_result = compiler.compile(seed);
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

        let (tokens, chunks) = metamut_lang::split_source(seed)?;
        let id = self.state.origin_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let (stitched, chain) = self
            .chain_walk(compiler, seed, &tokens, &chunks, id, true, None, true)
            .ok()?;
        if stitched.outcome != seed_result.outcome
            || !coverage_equal(&stitched.coverage, &seed_result.coverage)
        {
            return None;
        }
        Some(Arc::new(SlotState {
            id,
            seed_hash: hash128(seed.as_bytes()),
            chunk_count: chunks.len(),
            texts: chunks
                .iter()
                .map(|ch| self.state.interner.intern(ch.text(seed)))
                .collect(),
            chain: chain.expect("capture was requested"),
            seed_result,
            cold_ms,
            last_used: AtomicU64::new(self.stamp()),
        }))
    }

    /// Fast-path compiles served by the content memos.
    pub fn hits(&self) -> u64 {
        self.state.hits.load(Ordering::Relaxed)
    }

    /// Cold-fallback compiles (including uncacheable seeds).
    pub fn misses(&self) -> u64 {
        self.state.misses.load(Ordering::Relaxed)
    }

    /// Cross-check disagreements observed (should stay zero).
    pub fn mismatches(&self) -> u64 {
        self.state.mismatches.load(Ordering::Relaxed)
    }

    /// Seed slots retired by the capacity cap.
    pub fn evictions(&self) -> u64 {
        self.state.slot_evictions.load(Ordering::Relaxed)
    }

    /// Stage memo hits served from a different origin (another seed,
    /// tenant, profile, or slotless program) than the compile that
    /// produced them — the cross-seed sharing this engine exists for.
    pub fn cross_seed_hits(&self) -> u64 {
        self.state.cross_seed.load(Ordering::Relaxed)
    }

    /// Distinct declaration texts interned across every slot on this
    /// database — seeds of one family share most of them.
    pub fn interned_texts(&self) -> usize {
        self.state.interner.len()
    }

    /// Total declaration-text bytes the live slots keep referenced.
    /// Because chunk texts are interned, seeds of one family (and the
    /// reducer's shrinking candidate stream) share storage: this sum can
    /// exceed the interner's actual footprint many times over.
    pub fn retained_text_bytes(&self) -> usize {
        self.state
            .by_key
            .lock()
            .values()
            .map(|h| match h {
                SlotHandle::Dud(_) => 0,
                SlotHandle::Ready(slot) => slot.texts.iter().map(|t| t.len()).sum(),
            })
            .sum()
    }

    /// Fast-path rate over all compiles served so far.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }

    /// Number of cached seed entries (including uncacheable markers).
    pub fn len(&self) -> usize {
        self.state.by_key.lock().len()
    }

    /// Whether no seed has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total chunk-text bytes a slot keeps alive (test/diagnostic hook
    /// for the interner's sharing).
    #[cfg(test)]
    fn slot_text_bytes(&self, compiler: &Compiler, seed: &str) -> Option<usize> {
        self.slot(compiler, seed)
            .map(|s| s.texts.iter().map(|t| t.len()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, Outcome, Profile};

    const SEED: &str = r#"
typedef int T;
int g = 3;
volatile int vg;
struct P { int x; int y; };
static int helper(int a) { return a + g; }
int fold(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc + helper(i);
    }
    return acc;
}
int weigh(struct P p) {
    int s = p.x + p.y;
    if (s > 10) { s = s - vg; }
    return s;
}
int main() {
    struct P p;
    p.x = 4;
    p.y = 9;
    T t = fold(5);
    return t + weigh(p);
}
"#;

    fn configurations() -> Vec<Compiler> {
        let mut v = Vec::new();
        for profile in [Profile::Gcc, Profile::Clang] {
            for options in [
                CompileOptions::o0(),
                CompileOptions::o2(),
                CompileOptions::o3(),
            ] {
                v.push(Compiler::new(profile, options.clone()));
            }
        }
        v
    }

    fn assert_equivalent_to(compiler: &Compiler, cache: &QueryCache, seed: &str, mutant: &str) {
        let cold = compiler.compile(mutant);
        let inc = cache.compile(compiler, seed, mutant);
        assert_eq!(
            inc.outcome,
            cold.outcome,
            "outcome diverged under {:?} {}",
            compiler.profile(),
            compiler.options().render()
        );
        assert!(
            coverage_equal(&inc.coverage, &cold.coverage),
            "coverage diverged under {:?} {}",
            compiler.profile(),
            compiler.options().render()
        );
    }

    fn assert_equivalent(compiler: &Compiler, cache: &QueryCache, mutant: &str) {
        assert_equivalent_to(compiler, cache, SEED, mutant);
    }

    #[test]
    fn single_function_edit_takes_the_fast_path_everywhere() {
        let mutant = SEED.replace("acc = acc + helper(i);", "acc = acc + helper(i) + 1;");
        for compiler in configurations() {
            let cache = QueryCache::default();
            assert_equivalent(&compiler, &cache, &mutant);
            assert_eq!(cache.hits(), 1, "expected the query fast path");
            assert_eq!(cache.misses(), 0);
        }
    }

    #[test]
    fn multi_declaration_edits_take_the_fast_path() {
        let mutant = SEED
            .replace("return a + g;", "return a + g + 2;")
            .replace("acc = acc + helper(i);", "acc = acc + helper(i) - 1;")
            .replace("s = s - vg;", "s = s - vg + 3;");
        for compiler in configurations() {
            let cache = QueryCache::default();
            assert_equivalent(&compiler, &cache, &mutant);
            assert_eq!(cache.hits(), 1, "expected the query fast path");
        }
    }

    #[test]
    fn volatile_set_changes_recompute_instead_of_bailing() {
        let mutant = SEED.replace(
            "int acc = 0;",
            "volatile int shadow = 1; int acc = 0 * shadow;",
        );
        for compiler in configurations() {
            let cache = QueryCache::default();
            assert_equivalent(&compiler, &cache, &mutant);
            assert_eq!(cache.hits(), 1, "expected the query fast path");
        }
    }

    #[test]
    fn signature_changes_recompute_downstream_instead_of_bailing() {
        // The slot-keyed engine bailed cold on environment-changing
        // edits; content keys just produce new downstream keys and
        // recompute exactly the affected declarations.
        let mutant = SEED.replace("static int helper(int a)", "static long helper(long a)");
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        assert_equivalent(&compiler, &cache, &mutant);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn non_function_edits_stay_on_the_engine() {
        let mutant = SEED.replace("int g = 3;", "int g = 4;");
        let compiler = Compiler::new(Profile::Clang, CompileOptions::o3());
        let cache = QueryCache::default();
        assert_equivalent(&compiler, &cache, &mutant);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn declaration_count_changes_take_the_slotless_walk() {
        let mutant = format!("{SEED}\nint extra(void) {{ return 1; }}\n");
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        assert_equivalent(&compiler, &cache, &mutant);
        assert_eq!(cache.hits(), 1, "structural edits ride the slotless path");
    }

    #[test]
    fn invalid_mutants_fall_back_cold() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        for bad in [
            SEED.replace("return acc;", "return acc +;"),
            SEED.replace("return acc;", "return undeclared_name;"),
        ] {
            assert_equivalent(&compiler, &cache, &bad);
        }
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn identical_declarations_hit_across_seeds() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        let mutant_a = SEED.replace("p.x = 4;", "p.x = 5;");
        assert_equivalent(&compiler, &cache, &mutant_a);
        assert_eq!(cache.cross_seed_hits(), 0, "one seed: nothing to share");
        // Seed B shares every declaration except main; building its slot
        // (and compiling its mutants) must serve the shared prefix from
        // seed A's memos.
        let seed_b = SEED.replace("return t + weigh(p);", "return t * weigh(p);");
        let mutant_b = seed_b.replace("p.x = 4;", "p.x = 5;");
        assert_equivalent_to(&compiler, &cache, &seed_b, &mutant_b);
        assert!(
            cache.cross_seed_hits() > 0,
            "shared declarations must hit across seeds"
        );
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.mismatches(), 0);
    }

    #[test]
    fn profiles_share_stage_memos() {
        // Stage artifacts are profile-independent (profile-specific bug
        // checks live in the stitch replay), so a Clang compile rides
        // the memos a Gcc compile produced.
        let db = Arc::new(QueryDb::new());
        let cache = QueryCache::new(Arc::clone(&db));
        let mutant = SEED.replace("p.y = 9;", "p.y = 19;");
        let gcc = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let clang = Compiler::new(Profile::Clang, CompileOptions::o2());
        assert_equivalent(&gcc, &cache, &mutant);
        let before = cache.cross_seed_hits();
        assert_equivalent(&clang, &cache, &mutant);
        assert!(
            cache.cross_seed_hits() > before,
            "the Clang slot must reuse the Gcc slot's stage memos"
        );
    }

    #[test]
    fn compile_program_rides_warm_memos_without_a_slot() {
        let db = Arc::new(QueryDb::new());
        let cache = QueryCache::new(Arc::clone(&db));
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cold = compiler.compile(SEED);
        let first = cache.compile_program(&compiler, SEED);
        assert_eq!(first.outcome, cold.outcome);
        assert!(coverage_equal(&first.coverage, &cold.coverage));
        // The second compile of the same program is pure memo hits.
        let recomputes = db.recomputes();
        let second = cache.compile_program(&compiler, SEED);
        assert_eq!(second.outcome, cold.outcome);
        assert_eq!(
            db.recomputes(),
            recomputes,
            "a repeat slotless compile must not recompute any stage"
        );
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn compile_program_shares_front_stages_across_options() {
        // parse/sema/feat/lower are options-independent; only opt and
        // codegen re-key when the options change — the macro fuzzer's
        // per-iteration option sampling shares the whole front end.
        let db = Arc::new(QueryDb::new());
        let cache = QueryCache::new(Arc::clone(&db));
        let o2 = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let o3 = Compiler::new(Profile::Gcc, CompileOptions::o3());
        let r2 = cache.compile_program(&o2, SEED);
        assert_eq!(r2.outcome, o2.compile(SEED).outcome);
        let hits_before = db.hits();
        let r3 = cache.compile_program(&o3, SEED);
        assert_eq!(r3.outcome, o3.compile(SEED).outcome);
        // 8 declarations × at least parse+sema+feat+lower shared.
        assert!(
            db.hits() >= hits_before + 4 * 8,
            "front stages must be shared across option variants"
        );
    }

    #[test]
    fn compile_program_falls_back_cold_on_invalid_programs() {
        let cache = QueryCache::default();
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let bad = "int broken( { return 0; }";
        let cold = compiler.compile(bad);
        let inc = cache.compile_program(&compiler, bad);
        assert_eq!(inc.outcome, cold.outcome);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn seed_identical_mutants_reuse_the_seed_result() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        let first = cache.compile(&compiler, SEED, SEED);
        assert_eq!(first.outcome, compiler.compile(SEED).outcome);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn editing_then_reverting_stays_consistent() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        let mutant = SEED.replace("return acc;", "return acc + 7;");
        assert_equivalent(&compiler, &cache, &mutant);
        let reverted = cache.compile(&compiler, SEED, SEED);
        assert_eq!(reverted.outcome, compiler.compile(SEED).outcome);
        assert_equivalent(&compiler, &cache, &mutant);
    }

    #[test]
    fn unparseable_seeds_are_remembered_as_duds() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        let seed = "int broken( { return 0; }";
        let mutant = "int broken( { return 1; }";
        let cold = compiler.compile(mutant);
        let inc = cache.compile(&compiler, seed, mutant);
        assert_eq!(inc.outcome, cold.outcome);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1, "the dud seed is cached as uncacheable");
    }

    #[test]
    fn capacity_cap_retires_slots_but_keeps_shared_memos_warm() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let db = Arc::new(QueryDb::new());
        let cache = QueryCache::new(Arc::clone(&db)).with_capacity(1);
        let seed_b = SEED.replace("int g = 3;", "int g = 30;");
        let mutant_a = SEED.replace("p.x = 4;", "p.x = 6;");
        let mutant_b = seed_b.replace("p.x = 4;", "p.x = 6;");
        assert_equivalent(&compiler, &cache, &mutant_a);
        // A second seed evicts the first slot overlay...
        assert_equivalent_to(&compiler, &cache, &seed_b, &mutant_b);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 1);
        // ...but the shared content memos survive: rebuilding seed A's
        // slot serves its declarations from the memos seed A itself
        // warmed (now cross-origin, since the rebuilt slot is a new
        // origin).
        let before = cache.cross_seed_hits();
        assert_equivalent(&compiler, &cache, &mutant_a);
        assert!(
            cache.cross_seed_hits() > before,
            "evicting a slot must not evict the shared content memos"
        );
        assert_eq!(cache.mismatches(), 0);
    }

    #[test]
    fn slots_share_interned_declaration_text() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let cache = QueryCache::default();
        let seed_b = SEED.replace("return t + weigh(p);", "return t * weigh(p);");
        let a_bytes = cache
            .slot_text_bytes(&compiler, SEED)
            .expect("seed A slot builds");
        let interned_after_a = cache.interned_texts();
        let b_bytes = cache
            .slot_text_bytes(&compiler, &seed_b)
            .expect("seed B slot builds");
        // Seed B re-uses every interned chunk but its divergent main.
        assert!(b_bytes > 0 && a_bytes > 0);
        assert_eq!(
            cache.interned_texts(),
            interned_after_a + 1,
            "only the divergent declaration adds interner storage"
        );
    }

    #[test]
    fn cross_check_stays_clean() {
        let compiler = Compiler::new(Profile::Clang, CompileOptions::o3());
        let cache = QueryCache::default().with_cross_check(1);
        for (i, edit) in [
            ("p.x = 4;", "p.x = 14;"),
            ("return s;", "return s * 2;"),
            ("T t = fold(5);", "T t = fold(6);"),
        ]
        .iter()
        .enumerate()
        {
            let mutant = SEED.replace(edit.0, edit.1);
            assert_equivalent(&compiler, &cache, &mutant);
            assert_eq!(cache.hits(), i as u64 + 1);
        }
        assert_eq!(cache.mismatches(), 0);
    }

    #[test]
    fn caches_layered_over_one_db_share_slots() {
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());
        let db = Arc::new(QueryDb::new());
        let a = QueryCache::new(Arc::clone(&db));
        let b = QueryCache::new(Arc::clone(&db));
        let mutant = SEED.replace("p.y = 9;", "p.y = 19;");
        assert_equivalent(&compiler, &a, &mutant);
        assert_eq!(b.len(), 1);
        let recomputes = db.recomputes();
        let inc = b.compile(&compiler, SEED, &mutant);
        assert_eq!(inc.outcome, compiler.compile(&mutant).outcome);
        assert_eq!(
            db.recomputes(),
            recomputes,
            "the shared memos serve the repeat compile without recomputing"
        );
    }

    #[test]
    fn crashing_mutants_reproduce_cold_crashes() {
        let mutant = SEED.replace(
            "int s = p.x + p.y;",
            "int s = (p.x > 0 ? (p.y > 0 ? (p.x > 1 ? (p.y > 1 ? (p.x > 2 ? (p.y > 2 ? (p.x > 3 ? (p.y > 3 ? (p.x > 4 ? (p.y > 4 ? (p.x > 5 ? (p.y > 5 ? (p.x > 6 ? (p.y > 6 ? 1 : 2) : 3) : 4) : 5) : 6) : 7) : 8) : 9) : 10) : 11) : 12) : 13) : 14) : p.y);",
        );
        for compiler in configurations() {
            let cache = QueryCache::default();
            let cold = compiler.compile(&mutant);
            let inc = cache.compile(&compiler, SEED, &mutant);
            assert_eq!(inc.outcome, cold.outcome);
            assert!(coverage_equal(&inc.coverage, &cold.coverage));
            if let (Outcome::Crash(a), Outcome::Crash(b)) = (&inc.outcome, &cold.outcome) {
                assert_eq!(a.signature(), b.signature());
            }
        }
    }
}
